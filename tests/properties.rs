//! Repo-level property tests: random topologies, random workloads,
//! random fault patterns — the paper's invariants must hold everywhere.

use ddpm::prelude::*;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::mesh(&[a, b])),
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::torus(&[a, b])),
        (2usize..=7).prop_map(Topology::hypercube),
        (2u16..=4, 2u16..=4, 2u16..=4).prop_map(|(a, b, c)| Topology::torus(&[a, b, c])),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The central theorem of the paper, end to end: for any topology,
    /// any router, any fault pattern that still lets packets through,
    /// and any (src, dst) mix, every delivered packet's marking field
    /// identifies its true injector.
    #[test]
    fn delivered_packets_always_identify_their_injector(
        topo in arb_topology(),
        seed in any::<u64>(),
        fault_rate in 0.0f64..0.08,
        n_packets in 20u64..120,
    ) {
        let scheme = DdpmScheme::new(&topo).unwrap();
        let map = AddrMap::for_topology(&topo);
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = FaultSet::random(&topo, fault_rate, || {
            use rand::Rng;
            rng.gen::<f64>()
        });
        let router = Router::fully_adaptive_for(&topo);
        let mut factory = PacketFactory::new(map.clone());
        let mut sim = Simulation::new(
            &topo, &faults, router, SelectionPolicy::Random, &scheme,
            SimConfig::seeded(seed),
        );
        let n = topo.num_nodes() as u32;
        for k in 0..n_packets {
            let s = NodeId(((seed >> 3) as u32 + k as u32 * 7) % n);
            let d = NodeId(((seed >> 11) as u32 + k as u32 * 13 + 1) % n);
            if s == d { continue; }
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(&map, s, &mut rng);
            sim.schedule(SimTime(k * 5), factory.attack(s, claimed, d, L4::udp(1, 7), 128));
        }
        let stats = sim.run();
        // Conservation always holds, delivered or not.
        prop_assert!(stats.accounted(0));
        for del in sim.delivered() {
            let dest = topo.coord(del.packet.dest_node);
            prop_assert_eq!(
                scheme
                    .attribute(&topo, &dest, del.packet.header.identification)
                    .single(),
                Some(del.packet.true_source),
                "{}: packet {:?} misattributed", topo, del.packet.id
            );
        }
    }

    /// Simulator sanity under arbitrary congestion: packets are
    /// conserved and latency is bounded below by the physical minimum.
    #[test]
    fn conservation_and_latency_floor(
        topo in arb_topology(),
        seed in any::<u64>(),
        burst in 1u64..200,
    ) {
        let map = AddrMap::for_topology(&topo);
        let mut factory = PacketFactory::new(map);
        let faults = FaultSet::none();
        let marker = NoMarking;
        let cfg = SimConfig { buffer_packets: 4, ..SimConfig::seeded(seed) };
        let per_hop = cfg.service_cycles + cfg.link_latency;
        let mut sim = Simulation::new(
            &topo, &faults, Router::DimensionOrder, SelectionPolicy::First,
            &marker, cfg,
        );
        let n = topo.num_nodes() as u32;
        let victim = NodeId(n - 1);
        for k in 0..burst {
            let s = NodeId((k as u32 * 3) % (n - 1));
            sim.schedule(SimTime::ZERO, factory.benign(s, victim, L4::udp(1, 7), 64));
        }
        let stats = sim.run();
        prop_assert!(stats.accounted(0));
        for d in sim.delivered() {
            let src = topo.coord(d.packet.true_source);
            let dst = topo.coord(d.packet.dest_node);
            let min = u64::from(topo.min_hops(&src, &dst)) * per_hop;
            prop_assert!(d.latency() >= min,
                "latency {} below physical floor {}", d.latency(), min);
            prop_assert!(d.hops >= topo.min_hops(&src, &dst));
        }
    }

    /// Marking-field arithmetic is closed: whatever garbage an attacker
    /// preloads into the Identification field, after injection-reset and
    /// honest forwarding the victim still recovers the true source.
    #[test]
    fn forged_fields_never_survive_injection(
        topo in arb_topology(),
        forged in any::<u16>(),
        seed in any::<u64>(),
    ) {
        let scheme = DdpmScheme::new(&topo).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo, &faults, Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random, &scheme, SimConfig::seeded(seed),
        );
        let n = topo.num_nodes() as u32;
        let s = NodeId((seed as u32) % n);
        let d = NodeId((seed as u32 + 1 + (seed >> 32) as u32 % (n - 1)) % n);
        prop_assume!(s != d);
        let mut factory = PacketFactory::new(map.clone());
        let mut pkt = factory.attack(s, map.ip_of(d), d, L4::udp(1, 7), 64);
        pkt.header.identification = MarkingField::new(forged);
        sim.schedule(SimTime::ZERO, pkt);
        sim.run();
        let del = &sim.delivered()[0];
        prop_assert_eq!(
            scheme
                .attribute(&topo, &topo.coord(d), del.packet.header.identification)
                .single(),
            Some(s)
        );
    }
}
