//! Cross-crate integration: the full workload → simulator → marking →
//! victim-identification pipeline, exercised through the public facade.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn run_attack(
    topo: &Topology,
    router: Router,
    policy: SelectionPolicy,
    zombies: &[NodeId],
    victim: NodeId,
    seed: u64,
) -> (Vec<Delivered>, SimStats, DdpmScheme) {
    let scheme = DdpmScheme::new(topo).expect("within Table 3 scale");
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(topo);
    let mut factory = PacketFactory::new(map);
    let mut rng = SmallRng::seed_from_u64(seed);
    let flood = FloodAttack {
        packets_per_zombie: 60,
        ..FloodAttack::new(zombies.to_vec(), victim)
    };
    let workload = flood.generate(&mut factory, &mut rng);
    let mut sim = Simulation::new(
        topo,
        &faults,
        router,
        policy,
        &scheme,
        SimConfig::seeded(seed),
    );
    for (t, p) in workload {
        sim.schedule(t, p);
    }
    let stats = sim.run();
    (sim.into_delivered(), stats, scheme)
}

#[test]
fn flood_census_names_exactly_the_zombies_on_every_topology() {
    for topo in [
        Topology::mesh2d(8),
        Topology::torus(&[6, 6]),
        Topology::hypercube(6),
        Topology::mesh(&[4, 4, 4]),
    ] {
        let n = topo.num_nodes() as u32;
        let victim = NodeId(n - 1);
        let zombies = [NodeId(1), NodeId(n / 3), NodeId(n / 2)];
        let (delivered, stats, scheme) = run_attack(
            &topo,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &zombies,
            victim,
            77,
        );
        assert!(stats.attack.delivered > 0, "{topo}: flood must land");
        let census = attack_census(&topo, &scheme, &delivered);
        let mut found: Vec<NodeId> = census.keys().copied().collect();
        found.sort();
        let mut want = zombies.to_vec();
        want.sort();
        assert_eq!(found, want, "{topo}: census must name exactly the zombies");
        // Every zombie's packet count matches what was delivered from it.
        for (&node, &count) in &census {
            let truth = delivered
                .iter()
                .filter(|d| d.packet.true_source == node)
                .count() as u64;
            assert_eq!(count, truth, "{topo}: census count mismatch for {node}");
        }
    }
}

#[test]
fn identification_is_perfect_under_every_router() {
    let topo = Topology::mesh2d(8);
    let victim = NodeId(63);
    let zombies = [NodeId(0), NodeId(20)];
    for router in Router::all_for(&topo) {
        let (delivered, _, scheme) = run_attack(
            &topo,
            router,
            SelectionPolicy::ProductiveFirstRandom,
            &zombies,
            victim,
            13,
        );
        let report = score_ddpm(&topo, &scheme, &delivered);
        assert_eq!(
            report.accuracy(),
            1.0,
            "{router}: {} wrong, {} unidentified",
            report.wrong,
            report.unidentified
        );
    }
}

#[test]
fn detection_identification_mitigation_loop_converges() {
    // Iterative defence: detect, identify the heaviest source,
    // quarantine it, repeat — after k rounds all k zombies are gone.
    let topo = Topology::torus(&[6, 6]);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(&topo);
    let victim = NodeId(35);
    let zombies = [NodeId(2), NodeId(17), NodeId(30)];
    let quarantine = SourceQuarantine::new();
    let mut blocked: Vec<NodeId> = Vec::new();
    for round in 0..3 {
        let mut factory = PacketFactory::new(map.clone());
        let mut rng = SmallRng::seed_from_u64(round);
        let flood = FloodAttack {
            packets_per_zombie: 40,
            ..FloodAttack::new(zombies.to_vec(), victim)
        };
        let workload = flood.generate(&mut factory, &mut rng);
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            &quarantine,
            SimConfig::seeded(round),
        );
        for (t, p) in workload {
            sim.schedule(t, p);
        }
        sim.run();
        let census = attack_census(&topo, &scheme, sim.delivered());
        let heaviest = census
            .into_iter()
            .max_by_key(|&(n, c)| (c, std::cmp::Reverse(n.0)))
            .expect("attack still flowing")
            .0;
        assert!(zombies.contains(&heaviest), "never quarantine an innocent");
        assert!(!blocked.contains(&heaviest), "no double-identification");
        quarantine.block(topo.coord(heaviest));
        blocked.push(heaviest);
    }
    assert_eq!(blocked.len(), 3);

    // Final round: nothing attack-classed gets through.
    let mut factory = PacketFactory::new(map);
    let mut rng = SmallRng::seed_from_u64(99);
    let flood = FloodAttack {
        packets_per_zombie: 20,
        ..FloodAttack::new(zombies.to_vec(), victim)
    };
    let workload = flood.generate(&mut factory, &mut rng);
    let mut sim = Simulation::with_filter(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &scheme,
        &quarantine,
        SimConfig::seeded(99),
    );
    for (t, p) in workload {
        sim.schedule(t, p);
    }
    let stats = sim.run();
    assert_eq!(stats.attack.delivered, 0);
    assert_eq!(stats.attack.dropped_filtered, stats.attack.injected);
}

#[test]
fn framing_an_innocent_node_fails() {
    // A zombie spoofs one fixed innocent node's address on every packet
    // (SpoofStrategy::FrameNode). Address-based attribution convicts the
    // innocent; DDPM convicts the zombie.
    let topo = Topology::mesh2d(6);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(&topo);
    let zombie = NodeId(7);
    let framed = NodeId(22);
    let victim = NodeId(35);
    let mut factory = PacketFactory::new(map.clone());
    let mut rng = SmallRng::seed_from_u64(3);
    let flood = FloodAttack {
        spoof: SpoofStrategy::FrameNode(framed),
        packets_per_zombie: 50,
        ..FloodAttack::new(vec![zombie], victim)
    };
    let workload = flood.generate(&mut factory, &mut rng);
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &scheme,
        SimConfig::seeded(3),
    );
    for (t, p) in workload {
        sim.schedule(t, p);
    }
    sim.run();
    // Naive (address-based) census blames the framed node…
    let naive = ddpm::core::identify::naive_census(&map, sim.delivered());
    assert_eq!(naive.get(&Some(framed)).copied().unwrap_or(0), 50);
    // …DDPM blames the zombie and never the framed node.
    let census = attack_census(&topo, &scheme, sim.delivered());
    assert_eq!(census.get(&zombie).copied().unwrap_or(0), 50);
    assert!(!census.contains_key(&framed));
}
