//! Cross-crate integration: the paper's comparative claims, asserted as
//! executable facts about the three scheme families.

use ddpm::prelude::*;
use std::collections::HashSet;

fn one_flow(
    topo: &Topology,
    router: Router,
    policy: SelectionPolicy,
    marker: &dyn Marker,
    packets: u64,
    seed: u64,
) -> Vec<Delivered> {
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(topo);
    let mut factory = PacketFactory::new(map);
    let mut sim = Simulation::new(
        topo,
        &faults,
        router,
        policy,
        marker,
        SimConfig::seeded(seed),
    );
    let src = NodeId(0);
    let dst = NodeId(topo.num_nodes() as u32 - 1);
    for k in 0..packets {
        sim.schedule(SimTime(k * 8), factory.benign(src, dst, L4::udp(1, 7), 128));
    }
    sim.run();
    sim.into_delivered()
}

/// §1: "The victim needs only one packet to identify the source" —
/// literally the first delivered packet suffices, under adaptive
/// routing, on every topology family.
#[test]
fn ddpm_first_packet_identifies() {
    for topo in [
        Topology::mesh2d(8),
        Topology::torus(&[8, 8]),
        Topology::hypercube(6),
    ] {
        let scheme = DdpmScheme::new(&topo).unwrap();
        let delivered = one_flow(
            &topo,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            1,
            5,
        );
        assert_eq!(delivered.len(), 1);
        let d = &delivered[0];
        assert_eq!(
            scheme
                .attribute(
                    &topo,
                    &topo.coord(d.packet.dest_node),
                    d.packet.header.identification
                )
                .single(),
            Some(NodeId(0)),
            "{topo}"
        );
    }
}

/// §4.2 vs §5: PPM needs many packets where DDPM needs one — measured
/// head-to-head on the same flow.
#[test]
fn ppm_needs_many_packets_where_ddpm_needs_one() {
    let topo = Topology::mesh(&[2, 8]); // fits EdgePpm's flagged layout
    let ppm = EdgePpm::new(&topo, 0.1).unwrap();
    let delivered = one_flow(
        &topo,
        Router::DimensionOrder,
        SelectionPolicy::First,
        &ppm,
        3_000,
        1,
    );
    let victim = NodeId(topo.num_nodes() as u32 - 1);
    let mut marks = HashSet::new();
    let mut needed = None;
    for (i, d) in delivered.iter().enumerate() {
        if let Some(m) = ppm.extract(d.packet.header.identification) {
            marks.insert(m);
            let r = reconstruct_paths(victim, &marks, 100_000);
            if r.sources.contains(&NodeId(0)) && r.paths.iter().any(|p| p.len() == 9) {
                needed = Some(i + 1);
                break;
            }
        }
    }
    let needed = needed.expect("PPM should eventually reconstruct");
    assert!(
        needed > 10,
        "8-hop path at p=0.1 needs well over ten packets, got {needed}"
    );
}

/// §4.3: DPM's blocking value collapses under adaptive routing while
/// DDPM-keyed blocking is exact.
#[test]
fn dpm_signature_blocking_leaks_ddpm_blocking_does_not() {
    let topo = Topology::mesh2d(8);
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(&topo);
    let zombie = NodeId(0);
    let victim = NodeId(63);

    // Learn DPM signatures from a first wave.
    let dpm = DpmScheme::new();
    let wave1 = one_flow(
        &topo,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &dpm,
        150,
        10,
    );
    let filter = SignatureFilter::new();
    filter.block_all(wave1.iter().map(|d| d.packet.header.identification.raw()));

    // Second wave with the filter: some packets take fresh paths whose
    // signatures were never learned, and leak.
    let mut factory = PacketFactory::new(map.clone());
    let mut sim = Simulation::with_filter(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &dpm,
        &filter,
        SimConfig::seeded(11),
    );
    for k in 0..150u64 {
        sim.schedule(
            SimTime(k * 8),
            factory.attack(zombie, map.ip_of(NodeId(9)), victim, L4::udp(1, 7), 256),
        );
    }
    let stats = sim.run();
    assert!(
        stats.attack.delivered > 0,
        "DPM signature blocking must leak under adaptive routing"
    );

    // Same second wave under DDPM-keyed delivery filtering: exact.
    let ddpm = DdpmScheme::new(&topo).unwrap();
    let dfilter = DdpmDeliveryFilter::new(topo.clone(), ddpm.clone());
    dfilter.block(topo.coord(zombie));
    let mut factory = PacketFactory::new(map.clone());
    let mut sim = Simulation::with_filter(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &ddpm,
        &dfilter,
        SimConfig::seeded(11),
    );
    for k in 0..150u64 {
        sim.schedule(
            SimTime(k * 8),
            factory.attack(zombie, map.ip_of(NodeId(9)), victim, L4::udp(1, 7), 256),
        );
    }
    let stats = sim.run();
    assert_eq!(stats.attack.delivered, 0, "DDPM-keyed blocking is exact");
    assert_eq!(stats.attack.dropped_filtered, stats.attack.injected);
}

/// All three schemes coexist with the simulator's congestion model:
/// marking never perturbs delivery/drop accounting.
#[test]
fn marking_does_not_change_traffic_outcomes() {
    let topo = Topology::mesh2d(6);
    let baseline = one_flow(
        &topo,
        Router::DimensionOrder,
        SelectionPolicy::First,
        &NoMarking,
        200,
        21,
    );
    let ddpm = DdpmScheme::new(&topo).unwrap();
    let marked = one_flow(
        &topo,
        Router::DimensionOrder,
        SelectionPolicy::First,
        &ddpm,
        200,
        21,
    );
    assert_eq!(baseline.len(), marked.len());
    for (a, b) in baseline.iter().zip(marked.iter()) {
        assert_eq!(a.delivered_at, b.delivered_at);
        assert_eq!(a.hops, b.hops);
        assert_eq!(a.packet.id, b.packet.id);
        // Only the marking field differs.
        assert_ne!(
            a.packet.header.identification,
            b.packet.header.identification
        );
    }
}

/// The TTL interplay: DPM keys off TTL, the simulator decrements it,
/// and delivered packets' TTL loss equals hops minus one (no decrement
/// at the injection switch).
#[test]
fn ttl_accounting_matches_hops() {
    let topo = Topology::mesh2d(8);
    let delivered = one_flow(
        &topo,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &DpmScheme::new(),
        50,
        31,
    );
    for d in &delivered {
        let lost = u32::from(ddpm::net::ipv4::DEFAULT_TTL) - u32::from(d.packet.header.ttl);
        assert_eq!(lost, d.hops - 1, "TTL loss must equal hops-1");
    }
}
