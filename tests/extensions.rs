//! Repo-level integration tests for the extension features: the victim
//! console, authenticated DDPM vs. a compromised switch, link bit
//! errors, and the indirect-network scheme — all driven through the
//! public facade.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn console_pipeline_matches_manual_assembly() {
    // The VictimConsole must reach the same conclusions as the pieces
    // it packages (detectors + census), wired by hand in the e2e tests.
    let topo = Topology::torus(&[8, 8]);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let victim = NodeId(27);
    let zombies = [NodeId(3), NodeId(12), NodeId(40)];
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let mut factory = PacketFactory::new(map);
    let mut rng = SmallRng::seed_from_u64(21);
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &scheme,
        SimConfig::seeded(21),
    );
    for k in 0..100u64 {
        sim.schedule(
            SimTime(k * 30),
            factory.benign(NodeId((k % 10) as u32 + 1), victim, L4::udp(1, 80), 64),
        );
    }
    let flood = SynFloodAttack {
        start: SimTime(1_200),
        syns_per_zombie: 250,
        interval: 6,
        ..SynFloodAttack::new(zombies.to_vec(), victim)
    };
    for (t, p) in flood.generate(&mut factory, &mut rng) {
        sim.schedule(t, p);
    }
    sim.run();

    let mut console = VictimConsole::new(
        topo.clone(),
        scheme.clone(),
        victim,
        ConsoleConfig::default(),
    );
    console.on_packets(sim.delivered());
    assert!(console.alarmed());
    let recs: Vec<NodeId> = console
        .quarantine_recommendations()
        .iter()
        .map(|&(n, _)| n)
        .collect();
    let mut sorted = recs;
    sorted.sort();
    let mut want = zombies.to_vec();
    want.sort();
    assert_eq!(sorted, want);

    // Quarantining the recommendations ends the attack in a replay.
    let quarantine = SourceQuarantine::new();
    for (n, _) in console.quarantine_recommendations() {
        quarantine.block(topo.coord(n));
    }
    let mut factory = PacketFactory::new(AddrMap::for_topology(&topo));
    let mut rng = SmallRng::seed_from_u64(22);
    let mut sim2 = Simulation::with_filter(
        &topo,
        &faults,
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &scheme,
        &quarantine,
        SimConfig::seeded(22),
    );
    for (t, p) in flood.generate(&mut factory, &mut rng) {
        sim2.schedule(t, p);
    }
    let stats = sim2.run();
    assert_eq!(stats.attack.delivered, 0);
}

#[test]
fn auth_ddpm_full_stack_under_compromised_switch() {
    // A framing switch on an adaptive network: the Byzantine adversary
    // forges marks implicating an innocent, and the authenticated
    // scheme convicts no one falsely while flagging the tampering —
    // all through the public facade (Authenticated + AdversaryModel).
    let topo = Topology::mesh2d(8);
    let evil_at = topo.index(&Coord::new(&[4, 4]));
    let framed = topo.index(&Coord::new(&[0, 7]));
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(&topo);

    let auth = Authenticated::new(DdpmScheme::new(&topo).unwrap(), "auth-ddpm", 0xFEED, 8)
        .expect("8x8 mesh leaves 8 spare bits");
    let spec = AdversarySpec::new(
        vec![evil_at],
        AdversaryBehavior::Frame,
        Some(framed),
        0xFEED,
    );
    let evil = AdversaryModel::new(&auth, SchemeSpec::AuthDdpm, &topo, spec, Some(8)).unwrap();
    let mut factory = PacketFactory::new(map);
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &evil,
        SimConfig::seeded(31),
    );
    // Diagonal flows that often cross (4,4).
    for k in 0..300u64 {
        sim.schedule(
            SimTime(k * 6),
            factory.benign(NodeId(0), NodeId(63), L4::udp(1, 7), 64),
        );
    }
    sim.run();
    assert!(
        evil.total_tampered() > 0,
        "flows must cross the evil switch"
    );
    let dest = topo.coord(NodeId(63));
    let mut verified_true = 0u64;
    let mut framed_hits = 0u64;
    let mut rejected = 0u64;
    for d in sim.delivered() {
        // Victim-side verification first (fail closed), then the inner
        // decode on the verified field only.
        match auth.verify_delivered(&d.packet) {
            Some(mf) => match auth.inner().identify(&topo, &dest, mf) {
                Some(src) if topo.index(&src) == NodeId(0) => verified_true += 1,
                Some(src) => {
                    if topo.index(&src) == framed {
                        framed_hits += 1;
                    }
                }
                None => rejected += 1,
            },
            None => rejected += 1,
        }
    }
    // Per-packet framing is bounded by the ~2^-8 tag-guess residual
    // (the adversary has no key; an evil last hop can get lucky).
    assert!(
        framed_hits <= 3,
        "framed hits {framed_hits} above the 2^-8 residual for 300 packets"
    );
    assert!(rejected > 0, "tampered packets must fail closed");
    assert!(verified_true > 0, "untampered paths still identify");
    assert!(auth.tampered_seen() > 0);

    // The victim's own quorum collector agrees: tampering is counted
    // and the framed node is not convicted.
    let mut coll = evil.collector(&topo, NodeId(63));
    for d in sim.delivered() {
        coll.observe_packet(&d.packet);
    }
    assert!(coll.rejected() > 0);
    assert!(!coll.attribute().convicts(framed));
}

#[test]
fn bit_errors_cost_delivery_never_correctness() {
    let topo = Topology::torus(&[8, 8]);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let mut factory = PacketFactory::new(map);
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &scheme,
        SimConfig {
            bit_error_rate: 0.02,
            ..SimConfig::seeded(17)
        },
    );
    let mut rng = SmallRng::seed_from_u64(17);
    for k in 0..500u64 {
        let s = NodeId(rng.gen_range(0..63));
        sim.schedule(
            SimTime(k * 5),
            factory.benign(s, NodeId(63), L4::udp(1, 7), 64),
        );
    }
    let stats = sim.run();
    assert!(stats.benign.dropped_corrupt > 0, "BER must bite");
    let report = score_ddpm(&topo, &scheme, sim.delivered());
    assert_eq!(
        report.accuracy(),
        1.0,
        "surviving packets identify perfectly — corruption is fail-stop"
    );
}

#[test]
fn indirect_marking_against_attack_workloads() {
    // The §6.3 extension consumes the same attack-crate workloads as
    // the direct networks: generate a flood with the PacketFactory and
    // run it through the butterfly.
    let fly = Butterfly::new(4, 3); // 64 terminals
    let scheme = PortMarking::new(fly).unwrap();
    let pool = Topology::mesh2d(8); // 64 addresses
    let map = AddrMap::for_topology(&pool);
    let mut factory = PacketFactory::new(map.clone());
    let mut rng = SmallRng::seed_from_u64(9);
    let zombies = [NodeId(5), NodeId(44)];
    let victim = NodeId(60);
    let mut sim = MinSimulation::new(fly, scheme);
    for &z in &zombies {
        for k in 0..150u64 {
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(&map, z, &mut rng);
            sim.schedule(
                SimTime(k * 8),
                factory.attack(z, claimed, victim, L4::udp(1, 7), 512),
            );
        }
    }
    let stats = sim.run();
    assert!(stats.attack.delivered > 0);
    let mut census = std::collections::HashMap::new();
    for d in sim.delivered() {
        let src = scheme.identify(d.packet.header.identification);
        assert_eq!(src, d.packet.true_source);
        *census.entry(src).or_insert(0u64) += 1;
    }
    assert_eq!(census.len(), 2);
    assert!(census.contains_key(&zombies[0]) && census.contains_key(&zombies[1]));
}
