//! # ddpm — Deterministic Distance Packet Marking
//!
//! A production-quality reproduction of *"A Source Identification Scheme
//! against DDoS Attacks in Cluster Interconnects"* (Manhee Lee, Eun Jung
//! Kim, Cheol Won Lee — ICPP 2004): packet-marking traceback for direct
//! networks (mesh, torus, hypercube), including the full substrate the
//! paper evaluates on — topologies, routing algorithms, an IP packet
//! model, a discrete-event interconnect simulator, DDoS workloads and
//! detectors — plus the PPM and DPM baselines the paper compares
//! against.
//!
//! ## The one-minute version
//!
//! A compromised node inside a cluster floods a victim with spoofed
//! source addresses. Internet traceback breaks down here: cluster paths
//! are long, the 16-bit IP Identification field is tiny, and adaptive
//! routing makes paths unstable. **DDPM** sidesteps paths entirely:
//! every switch adds the hop displacement `Δ = next − current` into the
//! Identification field, so on delivery the field holds exactly
//! `destination ⊖ source` — and the victim recovers the true source
//! from a *single packet*, no matter which route it took.
//!
//! ```
//! use ddpm::prelude::*;
//!
//! // An 8x8 torus cluster with fully adaptive routing.
//! let topo = Topology::torus(&[8, 8]);
//! let scheme = DdpmScheme::new(&topo).expect("within Table 3 scale");
//! let map = AddrMap::for_topology(&topo);
//! let faults = FaultSet::none();
//!
//! let mut sim = Simulation::new(
//!     &topo, &faults,
//!     Router::fully_adaptive_for(&topo),
//!     SelectionPolicy::Random,
//!     &scheme,
//!     SimConfig::seeded(7),
//! );
//!
//! // A zombie at node 9 attacks node 50, spoofing node 3's address.
//! let zombie = NodeId(9);
//! let victim = NodeId(50);
//! let mut pkt = Packet {
//!     id: PacketId(0),
//!     header: Ipv4Header::new(map.ip_of(NodeId(3)), map.ip_of(victim),
//!                             Protocol::Udp, 512),
//!     l4: L4::udp(4444, 7),
//!     true_source: zombie,
//!     dest_node: victim,
//!     class: TrafficClass::Attack,
//! };
//! pkt.header.src = map.ip_of(NodeId(3)); // spoofed!
//! sim.schedule(SimTime::ZERO, pkt);
//! sim.run();
//!
//! // The victim identifies the real attacker from the one packet.
//! let received = &sim.delivered()[0];
//! let source = scheme
//!     .attribute(&topo, &topo.coord(victim), received.packet.header.identification)
//!     .single()
//!     .expect("honest marking always identifies");
//! assert_eq!(source, zombie);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`topology`] | mesh / torus / hypercube, coordinates, faults, Gray labels |
//! | [`net`] | IPv4 header, marking field, distance codecs, address map |
//! | [`routing`] | dimension-order, turn-model, fully adaptive routing |
//! | [`sim`] | deterministic discrete-event interconnect simulator |
//! | [`core`] | DDPM + PPM/DPM baselines, reconstruction, filters, analysis |
//! | [`attack`] | floods, SYN floods, worms, spoofing, background, detectors |
//! | [`indirect`] | §6.3 extension: butterfly MINs + stage-port marking |
//!
//! The experiment harness reproducing every table and figure of the
//! paper lives in the (unexported) `ddpm-bench` crate:
//! `cargo run --release -p ddpm-bench --bin report -- all`.

pub use ddpm_attack as attack;
pub use ddpm_core as core;
pub use ddpm_indirect as indirect;
pub use ddpm_net as net;
pub use ddpm_routing as routing;
pub use ddpm_sim as sim;
pub use ddpm_topology as topology;

/// The commonly used types in one import.
pub mod prelude {
    pub use ddpm_attack::{
        BackgroundTraffic, DetectionVerdict, EntropyDetector, FloodAttack, HalfOpenTable,
        PacketFactory, RateDetector, SpoofStrategy, SynFloodAttack, SynHalfOpenDetector,
        TrafficPattern, WormOutbreak,
    };
    pub use ddpm_attack::{AdversaryModel, ConsoleConfig, VictimConsole};
    pub use ddpm_core::auth::{Authenticated, MAX_TAG_BITS, MIN_TAG_BITS};
    pub use ddpm_core::scheme::{build_scheme, build_scheme_with, forge_plan, ForgePlan};
    pub use ddpm_core::filter::{
        DdpmDeliveryFilter, IngressFilter, SignatureFilter, SourceQuarantine,
    };
    pub use ddpm_core::identify::{attack_census, score_ddpm, IdentificationReport};
    pub use ddpm_core::{
        reconstruct_ams, reconstruct_fms, reconstruct_paths, AmsScheme, BitDiffPpm, DdpmScheme,
        DpmScheme, DpmVictim, EdgeMark, EdgePpm, FmsScheme, XorPpm,
    };
    pub use ddpm_indirect::{Butterfly, HybridCluster, HybridMarking, MinSimulation, PortMarking};
    pub use ddpm_net::{
        AddrMap, CodecMode, DistanceCodec, Ipv4Header, MarkingField, Packet, PacketId, Protocol,
        TcpFlags, TrafficClass, L4,
    };
    pub use ddpm_routing::{trace_path, RouteState, Router, SelectionPolicy};
    pub use ddpm_sim::{
        AdversaryBehavior, AdversarySpec, Attribution, Collector, Delivered, DropReason, Filter,
        MarkEnv, Marker, MarkingScheme, NoMarking, SchemeSpec, SimConfig, SimStats, SimTime,
        Simulation,
    };
    pub use ddpm_topology::{Coord, Direction, FaultSet, NodeId, Sign, Topology, TopologyKind};
}
