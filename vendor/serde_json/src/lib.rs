//! Offline, API-compatible subset of the `serde_json` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of `serde_json` it uses (policy in
//! `vendor/README.md`): the [`Value`] tree, the [`json!`] macro, a
//! strict parser ([`from_str`]), and pretty printing
//! ([`to_string_pretty`]).
//!
//! One deliberate difference from upstream: there is no `serde` data
//! model underneath. Typed deserialization goes through the [`FromJson`]
//! trait, which types implement by hand against [`Value`] (see
//! `ddpm-bench`'s `scenario_config` for the pattern). Objects preserve
//! insertion order.

#![warn(missing_docs)]

use std::fmt;

mod parse;

pub use parse::from_str;

/// A JSON number: integers are kept exact, everything else is `f64`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float.
    F(f64),
}

impl Number {
    /// The value as `f64` (integers convert losslessly up to 2^53).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            Number::U(u) => u as f64,
            Number::I(i) => i as f64,
            Number::F(f) => f,
        }
    }
}

/// An insertion-ordered string-keyed map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `value` under `key`, replacing any previous entry.
    pub fn insert(&mut self, key: String, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            self.entries.push((key, value));
        }
    }

    /// The value under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// True if `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if there are no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over `(key, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterator over the keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

/// A JSON document tree.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object (insertion-ordered).
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// True if the value is `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64` if it is an exactly-representable non-negative
    /// integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U(u)) => Some(*u),
            Value::Number(Number::I(i)) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The value as `i64` if it is an exactly-representable integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::U(u)) => i64::try_from(*u).ok(),
            Value::Number(Number::I(i)) => Some(*i),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The string slice, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The map, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for non-objects and absent keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

macro_rules! from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Number(Number::U(n as u64)) }
        }
    )*};
}
from_unsigned!(u8, u16, u32, u64, usize);

macro_rules! from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self {
                if n >= 0 {
                    Value::Number(Number::U(n as u64))
                } else {
                    Value::Number(Number::I(n as i64))
                }
            }
        }
    )*};
}
from_signed!(i8, i16, i32, i64, isize);

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::F(f))
    }
}

impl From<f32> for Value {
    fn from(f: f32) -> Self {
        Value::Number(Number::F(f64::from(f)))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        o.map_or(Value::Null, Into::into)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

// Direct comparisons against primitives, as upstream:
// `assert_eq!(v["k"], 8)`, `assert_eq!(v["s"], "text")`.
macro_rules! eq_via_from {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::cmp_owned)]
                { *self == Value::from(*other) }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                #[allow(clippy::cmp_owned)]
                { Value::from(*self) == *other }
            }
        }
    )*};
}
eq_via_from!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, &str);

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<Value> for String {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// By-reference conversion used by the [`json!`](crate::json) macro's
/// value positions, mirroring how upstream serializes expressions
/// without consuming them. The reference blanket makes any depth of
/// `&`-indirection (e.g. an `&&str` loop variable) collapse to the base
/// impl.
pub trait ToValue {
    /// The JSON representation of `self`.
    fn to_value(&self) -> Value;
}

/// Fresh array buffer for the [`json!`](crate::json) macro (a plain
/// `Vec::new()` would trip clippy's `vec_init_then_push` at every
/// expansion site).
#[doc(hidden)]
#[must_use]
pub fn new_array() -> Vec<Value> {
    Vec::new()
}

/// Free-function form of [`ToValue`], the macro's entry point.
pub fn to_value<T: ToValue + ?Sized>(v: &T) -> Value {
    v.to_value()
}

impl<T: ToValue + ?Sized> ToValue for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! to_value_via_from {
    ($($t:ty),*) => {$(
        impl ToValue for $t {
            fn to_value(&self) -> Value { Value::from(*self) }
        }
    )*};
}
to_value_via_from!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl ToValue for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToValue for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToValue for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl ToValue for Map {
    fn to_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl<T: ToValue> ToValue for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, ToValue::to_value)
    }
}

impl<T: ToValue> ToValue for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(ToValue::to_value).collect())
    }
}

impl<T: ToValue> ToValue for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: ToValue, const N: usize> ToValue for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

macro_rules! to_value_tuple {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: ToValue),+> ToValue for ($($name,)+) {
            fn to_value(&self) -> Value {
                let ($($name,)+) = self;
                Value::Array(vec![$($name.to_value()),+])
            }
        }
    )*};
}
to_value_tuple!((A, B)(A, B, C)(A, B, C, D));

/// A parse or conversion error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with the given message.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Typed extraction from a parsed [`Value`] — the offline stand-in for
/// `serde::Deserialize`. Implement by hand for config types.
pub trait FromJson: Sized {
    /// Builds `Self` from `v`, with a path-qualified error on mismatch.
    ///
    /// # Errors
    /// Returns a human-readable message naming the offending field.
    fn from_json(v: &Value) -> Result<Self, Error>;
}

impl FromJson for Value {
    fn from_json(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U(u) => out.push_str(&u.to_string()),
        Number::I(i) => out.push_str(&i.to_string()),
        Number::F(f) => {
            if f.is_finite() {
                let s = format!("{f}");
                out.push_str(&s);
                // `{}` prints integral floats without a point; keep the
                // float-ness on the wire so the types round-trip.
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    out.push_str(".0");
                }
            } else {
                // JSON has no Inf/NaN; serialise as null like upstream's
                // arbitrary_precision-less behaviour.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, pretty: bool) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                }
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, item, indent + 1, pretty);
            }
            if pretty {
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
            }
            out.push('}');
        }
    }
}

/// Serialises `v` compactly.
///
/// # Errors
/// Never fails for [`Value`] input; the `Result` mirrors upstream's
/// signature.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, 0, false);
    Ok(out)
}

/// Serialises `v` with two-space indentation.
///
/// # Errors
/// Never fails for [`Value`] input; the `Result` mirrors upstream's
/// signature.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, v, 0, true);
    Ok(out)
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self, 0, f.alternate());
        f.write_str(&out)
    }
}

/// Builds a [`Value`] from a JSON-ish literal, as upstream's `json!`.
///
/// Supports `null`, object and array literals (arbitrarily nested) and
/// arbitrary Rust expressions convertible to [`Value`] via [`From`].
/// Object keys must be string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($body:tt)+ }) => {{
        let mut __map = $crate::Map::new();
        $crate::json_object!(__map; $($body)+);
        $crate::Value::Object(__map)
    }};
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($body:tt)+ ]) => {{
        let mut __arr = $crate::new_array();
        $crate::json_array!(__arr; [] $($body)+);
        $crate::Value::Array(__arr)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

/// Internal: munches `key : value` pairs, splitting on top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    ($map:ident;) => {};
    ($map:ident; $key:literal : $($rest:tt)+) => {
        $crate::json_object_value!($map; $key; [] $($rest)+);
    };
}

/// Internal: accumulates one object value until a top-level comma.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_value {
    // Trailing comma or end of pair list.
    ($map:ident; $key:literal; [$($val:tt)+]) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
    };
    ($map:ident; $key:literal; [$($val:tt)+] , $($rest:tt)*) => {
        $map.insert($key.to_string(), $crate::json!($($val)+));
        $crate::json_object!($map; $($rest)*);
    };
    ($map:ident; $key:literal; [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_object_value!($map; $key; [$($val)* $next] $($rest)*);
    };
}

/// Internal: munches array elements, splitting on top-level commas.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    ($arr:ident; [$($val:tt)+]) => {
        $arr.push($crate::json!($($val)+));
    };
    ($arr:ident; [$($val:tt)+] , $($rest:tt)*) => {
        $arr.push($crate::json!($($val)+));
        $crate::json_array!($arr; [] $($rest)*);
    };
    ($arr:ident; []) => {};
    ($arr:ident; [$($val:tt)*] $next:tt $($rest:tt)*) => {
        $crate::json_array!($arr; [$($val)* $next] $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn macro_builds_nested_trees() {
        let rows = vec![json!({"node": 3u32, "packets": 7u64})];
        let mean: Option<f64> = Some(1.5);
        let missing: Option<f64> = None;
        let v = json!({
            "name": "test",
            "count": 42u64,
            "neg": -3,
            "ok": true,
            "mean": mean,
            "absent": missing,
            "nested": { "a": [1, 2, 3], "b": null },
            "rows": rows,
            "expr": 6u32 * 7,
        });
        assert_eq!(v["name"].as_str(), Some("test"));
        assert_eq!(v["count"].as_u64(), Some(42));
        assert_eq!(v["neg"].as_i64(), Some(-3));
        assert_eq!(v["mean"].as_f64(), Some(1.5));
        assert!(v["absent"].is_null());
        assert_eq!(v["nested"]["a"][1].as_u64(), Some(2));
        assert!(v["nested"]["b"].is_null());
        assert_eq!(v["rows"][0]["node"].as_u64(), Some(3));
        assert_eq!(v["expr"].as_u64(), Some(42));
        assert!(v["nonexistent"].is_null());
    }

    #[test]
    fn roundtrip_through_text() {
        let v = json!({
            "s": "a \"quoted\"\nline",
            "xs": [1, 2.5, -4, true, null],
            "o": {"inner": []}
        });
        for rendered in [to_string(&v).unwrap(), to_string_pretty(&v).unwrap()] {
            let back: Value = from_str(&rendered).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn pretty_output_is_indented() {
        let s = to_string_pretty(&json!({"a": [1]})).unwrap();
        assert_eq!(s, "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn insertion_order_preserved() {
        let v = json!({"z": 1, "a": 2, "m": 3});
        let keys: Vec<&String> = v.as_object().unwrap().keys().collect();
        assert_eq!(keys, ["z", "a", "m"]);
    }
}
