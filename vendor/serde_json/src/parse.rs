//! A strict recursive-descent JSON parser.

use crate::{Error, FromJson, Map, Number, Value};

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        let (mut line, mut col) = (1usize, 1usize);
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        Error::msg(format!("{msg} at line {line} column {col}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        // Surrogate pairs: JSON escapes astral chars as
                        // \uD8xx\uDCxx.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let lo = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(c).ok_or_else(|| self.err("invalid code point"))?
                        } else {
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                        };
                        out.push(c);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let end = start + len;
                    let s = self
                        .bytes
                        .get(start..end)
                        .and_then(|sl| std::str::from_utf8(sl).ok())
                        .ok_or_else(|| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]`"));
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}`"));
                }
            }
        }
    }
}

/// Parses `s` into any [`FromJson`] type (strict JSON: no comments, no
/// trailing commas, one document).
///
/// # Errors
/// Returns a message with the line/column of the first syntax error, or
/// the [`FromJson`] conversion failure.
pub fn from_str<T: FromJson>(s: &str) -> Result<T, Error> {
    let mut p = Parser::new(s);
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    T::from_json(&v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        let v: Value = from_str(r#"{"a": [1, -2, 3.5, true, null, "x\n\"y\""], "b": {}}"#).unwrap();
        assert_eq!(v["a"][0].as_u64(), Some(1));
        assert_eq!(v["a"][1].as_i64(), Some(-2));
        assert_eq!(v["a"][2].as_f64(), Some(3.5));
        assert_eq!(v["a"][3].as_bool(), Some(true));
        assert!(v["a"][4].is_null());
        assert_eq!(v["a"][5].as_str(), Some("x\n\"y\""));
        assert!(v["b"].as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage_with_location() {
        let e = from_str::<Value>("{\"a\": 1,\n  }").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        assert!(from_str::<Value>("[1, 2] trailing").is_err());
        assert!(from_str::<Value>("{\"a\" 1}").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str(r#""é😀""#).unwrap();
        assert_eq!(v.as_str(), Some("é😀"));
    }

    #[test]
    fn exponents_and_big_ints() {
        let v: Value = from_str("[1e3, 18446744073709551615, -9223372036854775808]").unwrap();
        assert_eq!(v[0].as_f64(), Some(1000.0));
        assert_eq!(v[1].as_u64(), Some(u64::MAX));
        assert_eq!(v[2].as_i64(), Some(i64::MIN));
    }
}
