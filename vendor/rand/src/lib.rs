//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors the small slice of `rand`'s API it
//! actually uses (see `vendor/README.md` for the policy). The subset:
//!
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic PRNG
//!   (xoshiro256++, the same family upstream `SmallRng` uses on 64-bit
//!   targets);
//! * [`SeedableRng::seed_from_u64`] — SplitMix64 seed expansion, as
//!   upstream;
//! * [`Rng::gen`], [`Rng::gen_bool`], [`Rng::gen_range`] over the
//!   integer/float types the workspace samples.
//!
//! Streams are deterministic for a given seed but are **not** guaranteed
//! to match upstream `rand` bit-for-bit; the workspace only relies on
//! determinism, never on a specific stream.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generation.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// The next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with uniform bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

/// Types a [`Rng::gen`] call can produce uniformly.
pub trait Standard: Sized {
    /// Samples one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges a [`Rng::gen_range`] call can sample `T` from. Generic over
/// the output type (as upstream) so literal bounds infer their type from
/// the call site, e.g. `rng.gen_range(1..=254)` where a `u8` is needed.
pub trait SampleRange<T> {
    /// Samples one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Element types [`SampleRange`] is blanket-implemented over. The
/// blanket (rather than per-type range impls) matters for inference:
/// it unifies the range's element type with the requested output type,
/// exactly like upstream's `SampleUniform`.
pub trait SampleUniform: PartialOrd + Copy {
    /// One uniform draw from `[lo, hi)` (`inclusive == false`) or
    /// `[lo, hi]` (`inclusive == true`).
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_in(lo, hi, true, rng)
    }
}

/// Maps a uniform `u64` into `[0, span)` without modulo bias (Lemire's
/// multiply-shift; the tiny residual bias is irrelevant at simulation
/// scale).
#[inline]
fn bounded(rng: &mut (impl RngCore + ?Sized), span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                if span > u128::from(u64::MAX) {
                    // Full-width inclusive range: every word is in range.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                lo + <$t>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0,1]");
        f64::sample(self) < p
    }

    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// The concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            Self {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl SmallRng {
        /// The generator's current internal state, for checkpointing.
        /// Feed the words back through [`SmallRng::from_state`] to
        /// resume the stream at exactly this position.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured
        /// [`SmallRng::state`], resuming its stream bit-for-bit.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let va: Vec<u64> = (0..10).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..10).map(|_| b.gen()).collect();
        assert_eq!(va, vb);
        let mut c = SmallRng::seed_from_u64(8);
        let vc: Vec<u64> = (0..10).map(|_| c.gen()).collect();
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(1u16..=254);
            assert!((1..=254).contains(&y));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let z: f64 = r.gen();
            assert!((0.0..1.0).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rates() {
        let mut r = SmallRng::seed_from_u64(2);
        assert!(!(0..1000).any(|_| r.gen_bool(0.0)));
        assert!((0..1000).all(|_| r.gen_bool(1.0)));
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(99);
        let _: u64 = a.gen();
        let _: u64 = a.gen();
        let mut b = SmallRng::from_state(a.state());
        let rest_a: Vec<u64> = (0..32).map(|_| a.gen()).collect();
        let rest_b: Vec<u64> = (0..32).map(|_| b.gen()).collect();
        assert_eq!(rest_a, rest_b);
    }

    #[test]
    fn full_width_inclusive_range() {
        let mut r = SmallRng::seed_from_u64(3);
        // Must not panic or loop: span == 2^64.
        let _ = r.gen_range(0u64..=u64::MAX);
        let _ = r.gen_range(1024..=u16::MAX);
    }
}
