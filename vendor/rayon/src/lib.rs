//! Offline, API-compatible subset of the `rayon` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of rayon's API it uses (policy in
//! `vendor/README.md`): `slice.par_iter().enumerate().map(f).collect()`.
//!
//! Execution model: instead of a work-stealing pool, the `collect`
//! terminal splits the index space into contiguous chunks — one per
//! available hardware thread — runs them under [`std::thread::scope`],
//! and reassembles results in input order. Semantics match upstream for
//! the supported pipeline (deterministic order, panics propagate).

#![warn(missing_docs)]

/// The traits needed to call `.par_iter()` and pipeline adapters.
pub mod prelude {
    pub use crate::{IntoParallelRefIterator, ParallelIterator};
}

/// Mirror of upstream's `IntoParallelRefIterator`: `&collection` →
/// parallel iterator over `&item`.
pub trait IntoParallelRefIterator<'a> {
    /// The borrowed item type.
    type Item: 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// A parallel iterator over borrowed items.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> ParSlice<'a, T> {
        ParSlice { items: self }
    }
}

/// A parallel pipeline: adapters are recorded lazily; `collect` runs the
/// whole pipeline across threads.
pub trait ParallelIterator: Sized {
    /// The element type flowing out of this stage.
    type Item: Send;

    #[doc(hidden)]
    fn len(&self) -> usize;

    #[doc(hidden)]
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[doc(hidden)]
    /// Produces the element at position `idx` (stateless per call, so
    /// chunks can run on any thread).
    fn at(&self, idx: usize) -> Self::Item;

    /// Pairs each item with its index, as upstream `enumerate`.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self }
    }

    /// Applies `f` to each item, as upstream `map`.
    fn map<O: Send, F: Fn(Self::Item) -> O + Sync>(self, f: F) -> MapIter<Self, F> {
        MapIter { inner: self, f }
    }

    /// Runs the pipeline and gathers results in input order.
    fn collect<B: FromIterator<Self::Item>>(self) -> B
    where
        Self: Sync,
    {
        let n = self.len();
        let threads = pool_size().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return (0..n).map(|i| self.at(i)).collect();
        }
        let chunk = n.div_ceil(threads);
        let mut out: Vec<Option<Self::Item>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        let me = &self;
        std::thread::scope(|scope| {
            for (slot_chunk, base) in out.chunks_mut(chunk).zip((0..n).step_by(chunk)) {
                scope.spawn(move || {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(me.at(base + off));
                    }
                });
            }
        });
        out.into_iter().map(|v| v.expect("chunk filled")).collect()
    }
}

/// Worker count: `RAYON_NUM_THREADS` (upstream's env knob, read per
/// `collect` since there is no persistent pool here) when set to a
/// positive number, else all hardware threads.
///
/// Public so embedders with their own thread scopes (e.g. the sharded
/// simulation engine) can honor the same knob as `collect`.
pub fn pool_size() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Parallel iterator over a slice.
pub struct ParSlice<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.items.len()
    }
    fn at(&self, idx: usize) -> &'a T {
        &self.items[idx]
    }
}

/// See [`ParallelIterator::enumerate`].
pub struct Enumerate<I> {
    inner: I,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn at(&self, idx: usize) -> (usize, I::Item) {
        (idx, self.inner.at(idx))
    }
}

/// See [`ParallelIterator::map`].
pub struct MapIter<I, F> {
    inner: I,
    f: F,
}

impl<I, O, F> ParallelIterator for MapIter<I, F>
where
    I: ParallelIterator,
    O: Send,
    F: Fn(I::Item) -> O + Sync,
{
    type Item = O;
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn at(&self, idx: usize) -> O {
        (self.f)(self.inner.at(idx))
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_enumerate_map_collect() {
        let xs: Vec<u64> = (0..257).collect();
        let got: Vec<(usize, u64)> = xs.par_iter().enumerate().map(|(i, v)| (i, v * 2)).collect();
        let want: Vec<(usize, u64)> = (0..257).map(|v| (v as usize, v * 2)).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single() {
        let xs: Vec<u32> = vec![];
        let got: Vec<u32> = xs.par_iter().map(|v| *v).collect();
        assert!(got.is_empty());
        let one = [41u32];
        let got: Vec<u32> = one.par_iter().map(|v| v + 1).collect();
        assert_eq!(got, vec![42]);
    }

    #[test]
    fn env_var_caps_pool() {
        // collect()'s output is order-stable regardless of thread
        // count, so this only checks the env path doesn't break it.
        std::env::set_var("RAYON_NUM_THREADS", "2");
        let xs: Vec<u64> = (0..100).collect();
        let got: Vec<u64> = xs.par_iter().map(|v| v + 1).collect();
        std::env::remove_var("RAYON_NUM_THREADS");
        assert_eq!(got, (1..=100).collect::<Vec<u64>>());
        assert!(super::pool_size() >= 1);
    }
}
