use proptest::prelude::*;
use proptest::strategy::{boxed, Union};
use proptest::test_runner::rng_for;

#[derive(Clone, Debug, PartialEq)]
struct Thing(usize);

fn build16(p: u16) -> Thing {
    Thing(usize::from(p))
}

#[test]
fn manual_union() {
    let u = Union::new(vec![
        (1u32, boxed((1u16..=4).prop_map(|p| build16(1 << p)))),
        (1u32, boxed((1usize..=8).prop_map(Thing))),
    ]);
    let mut rng = rng_for("manual_union");
    let t = Strategy::sample(&u, &mut rng);
    assert!(t.0 >= 1);
}

proptest! {
    #[test]
    fn oneof_two_map_arms(t in prop_oneof![
        (1u16..=4).prop_map(|p| build16(1 << p)),
        (1usize..=8).prop_map(Thing),
    ]) {
        prop_assert!(t.0 >= 1);
    }

    #[test]
    fn oneof_weighted(x in prop_oneof![
        3 => Just(1u8),
        1 => 5u8..10,
    ]) {
        prop_assert!(x == 1 || (5..10).contains(&x));
    }
}
