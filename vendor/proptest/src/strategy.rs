//! Value-generation strategies.

use rand::rngs::SmallRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream there is no value tree and no shrinking: `sample`
/// draws one value directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then samples the strategy `f` builds from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn sample(&self, rng: &mut SmallRng) -> V {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut SmallRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut SmallRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);

/// Uniform over the whole domain of `T` (`bool`, the integers) or the
/// unit interval (floats) — the subset of upstream `any` the workspace
/// needs.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// The full-domain strategy for `T`, as upstream's `any::<T>()`.
#[must_use]
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut SmallRng) -> T {
        rng.gen()
    }
}

/// Boxes a strategy, driving associated-type inference through a
/// generic bound instead of an `as` cast (which can stall closure
/// inference inside `prop_oneof!` arms).
#[must_use]
pub fn boxed<V, S: Strategy<Value = V> + 'static>(s: S) -> Box<dyn Strategy<Value = V>> {
    Box::new(s)
}

/// A weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
    total: u32,
}

impl<V> Union<V> {
    /// Builds a union; weights must sum to a positive value.
    #[must_use]
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut SmallRng) -> V {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weights summed correctly");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_tuples_map_flat_map() {
        let mut rng = rng_for("strategy-tests");
        let s = (1u16..5, 10u64..=20).prop_map(|(a, b)| u64::from(a) + b);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((11..=24).contains(&v));
        }
        let nested = (1usize..4).prop_flat_map(|n| (0..n, Just(n)));
        for _ in 0..200 {
            let (i, n) = nested.sample(&mut rng);
            assert!(i < n);
        }
    }

    #[test]
    fn union_respects_zero_weight() {
        let mut rng = rng_for("union-tests");
        let u = Union::new(vec![
            (0, Box::new(Just(1u8)) as Box<dyn Strategy<Value = u8>>),
            (5, Box::new(Just(2u8))),
        ]);
        for _ in 0..100 {
            assert_eq!(u.sample(&mut rng), 2);
        }
    }
}
