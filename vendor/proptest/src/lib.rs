//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of proptest it uses (policy in `vendor/README.md`):
//! the [`proptest!`] macro, range/tuple/`Just`/`prop_oneof!` strategies,
//! `prop_map`/`prop_flat_map`, [`collection::vec`], `any::<T>()`, and the
//! `prop_assert*`/`prop_assume!` family.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case number; runs are
//!   seeded deterministically per test (from the test's module path), so
//!   a failure reproduces exactly by re-running the test.
//! * Generation quality: uniform sampling only, no recursive strategies,
//!   no regex strategies — none of which the workspace uses.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use strategy::any;

/// Defines property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that samples its strategies
/// [`ProptestConfig::cases`](test_runner::ProptestConfig) times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::test_runner::rng_for(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __ran: u32 = 0;
                let mut __attempts: u32 = 0;
                while __ran < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(20).max(1000),
                        "proptest {}: too many prop_assume! rejections",
                        stringify!($name),
                    );
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => __ran += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject,
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            ::std::panic!(
                                "proptest {} failed at case {} of {}: {}\n\
                                 (deterministic per-test seed; rerun this test to reproduce)",
                                stringify!($name), __ran, __config.cases, __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// A strategy choosing among several sub-strategies (optionally
/// weighted), as upstream's `prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), __l, __r,
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), __l,
        );
    }};
}

/// Discards the current case (resampled, not counted) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
