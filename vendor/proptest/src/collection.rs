//! Collection strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;
use std::ops::Range;

/// A strategy for `Vec<S::Value>` with length drawn from a range.
pub struct VecStrategy<S> {
    elem: S,
    len: Range<usize>,
}

/// `Vec` strategy with element strategy `elem` and length in `len`, as
/// upstream's `proptest::collection::vec`.
#[must_use]
pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(!len.is_empty(), "empty length range");
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn lengths_and_elements_in_range() {
        let s = vec(3u8..7, 1..5);
        let mut rng = rng_for("collection-tests");
        for _ in 0..300 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|e| (3..7).contains(e)));
        }
    }
}
