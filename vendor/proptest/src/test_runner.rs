//! Test-loop plumbing used by the [`proptest!`](crate::proptest) macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a sampled case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; resample without counting.
    Reject,
    /// `prop_assert*!` failed with this message.
    Fail(String),
}

/// A deterministic RNG derived from the test's fully-qualified name, so
/// every run of a given test replays the same case sequence (FNV-1a).
#[must_use]
pub fn rng_for(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}
