//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no crates-registry access, so the workspace
//! vendors the slice of Criterion's API its benches use (policy in
//! `vendor/README.md`). Measurement is a plain calibrated timing loop —
//! median-of-samples nanoseconds per iteration, printed to stdout — with
//! none of upstream's statistics, plotting or baseline storage.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` groups setup outputs; accepted for compatibility,
/// the shim re-runs setup per iteration regardless.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark identifier: function name plus parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        Self { id: s.clone() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

const SAMPLES: usize = 11;
const TARGET_SAMPLE: Duration = Duration::from_millis(40);

impl Bencher {
    fn new() -> Self {
        Self {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Benchmarks `routine` in a timing loop.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Calibrate: find an iteration count filling the target sample.
        let mut iters: u64 = 1;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= TARGET_SAMPLE || iters >= 1 << 24 {
                self.iters_per_sample = iters;
                break;
            }
            iters = if elapsed.is_zero() {
                iters * 16
            } else {
                (iters * 2).max(
                    (iters as u128 * TARGET_SAMPLE.as_nanos() / elapsed.as_nanos().max(1)) as u64,
                )
            };
        }
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    /// Benchmarks `routine` with fresh per-iteration input from `setup`
    /// (setup time excluded from the measurement).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        // One measured call per sample: batched routines in this
        // workspace are whole-simulation runs, far above timer
        // resolution.
        self.iters_per_sample = 1;
        for _ in 0..SAMPLES {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
        }
    }

    fn report(&self, id: &str) {
        if self.samples.is_empty() {
            println!("{id:<50} (no samples)");
            return;
        }
        let mut ns: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / u128::from(self.iters_per_sample.max(1)))
            .collect();
        ns.sort_unstable();
        let median = ns[ns.len() / 2];
        let (lo, hi) = (ns[0], ns[ns.len() - 1]);
        println!("{id:<50} median {} [{} .. {}]", fmt_ns(median), fmt_ns(lo), fmt_ns(hi));
    }
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&id.into().id, f);
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        run_one(&format!("{}/{}", self.name, id.into().id), f);
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        run_one(&format!("{}/{}", self.name, id.into().id), |b| {
            f(b, input);
        });
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_one(id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher::new();
    f(&mut b);
    b.report(id);
}

/// Declares a group runner function, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main`, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags like `--bench`; the
            // shim has no filtering, so arguments are ignored.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new();
        b.iter(|| black_box(7u64).wrapping_mul(13));
        assert_eq!(b.samples.len(), SAMPLES);
        b.report("smoke");
    }
}
