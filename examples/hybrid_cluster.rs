//! Hierarchical identification on a hybrid cluster-based network.
//!
//! ```text
//! cargo run --release --example hybrid_cluster
//! ```
//!
//! The paper closes §6.3 noting that hybrid networks "may need a
//! completely different approach". This example runs that approach on
//! the canonical cluster-based shape — an 8×8 torus backbone of group
//! switches, 16 compute nodes per group (1 024 nodes total):
//!
//! * group switches run DDPM over group coordinates across the
//!   adaptively-routed backbone;
//! * the source group switch also records which local port (= member)
//!   injected the packet;
//! * the victim recovers `(source group, member)` — the exact machine —
//!   from one packet, spoofing notwithstanding.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cluster = HybridCluster::new(Topology::torus(&[8, 8]), 16);
    let marking = HybridMarking::new(&cluster).expect("10+4 = 14 MF bits");
    println!(
        "cluster: {cluster}\nmarking: {} of 16 MF bits (group vector + member port)",
        marking.bits_used()
    );

    let backbone = cluster.backbone().clone();
    let faults = FaultSet::none();
    let router = Router::fully_adaptive_for(&backbone);
    let mut rng = SmallRng::seed_from_u64(2004);

    // A compromised machine — group (5,2), member 11 — floods a file
    // server at group (1,6), member 0, spoofing a different node each
    // packet. We trace each packet's backbone journey and marking.
    let zombie = cluster.join(&Coord::new(&[5, 2]), 11);
    let victim = cluster.join(&Coord::new(&[1, 6]), 0);
    let (zombie_group, zombie_member) = cluster.split(zombie);
    let (victim_group, _) = cluster.split(victim);

    let mut census = std::collections::HashMap::new();
    let mut distinct_paths = std::collections::HashSet::new();
    for _ in 0..400 {
        let path = trace_path(
            &backbone,
            &faults,
            router,
            SelectionPolicy::Random,
            &mut rng,
            &zombie_group,
            &victim_group,
            128,
        )
        .expect("healthy backbone");
        distinct_paths.insert(path.clone());
        let mf = marking.mark_journey(&cluster, zombie_member, &path);
        let identified = marking
            .attribute(&cluster, &victim_group, mf)
            .single()
            .expect("honest marking identifies");
        *census.entry(identified).or_insert(0u64) += 1;
    }
    println!(
        "\n400 flood packets took {} distinct backbone paths (fully adaptive routing).",
        distinct_paths.len()
    );
    println!("victim-side identifications:");
    for (node, count) in &census {
        let (g, m) = cluster.split(*node);
        println!("  node {node} = group {g} member {m}: {count} packets");
    }
    assert_eq!(census.len(), 1, "one attacker, one identification");
    assert_eq!(census[&zombie], 400);
    println!("\nevery packet named the true machine: group {zombie_group} member {zombie_member}.");

    // Bonus: the honest population stays clean — sample random flows.
    let mut wrong = 0;
    for _ in 0..500 {
        let src = NodeId(rng.gen_range(0..cluster.num_nodes() as u32));
        let dst = NodeId(rng.gen_range(0..cluster.num_nodes() as u32));
        let (sg, sm) = cluster.split(src);
        let (dg, _) = cluster.split(dst);
        if sg == dg {
            continue;
        }
        let path = trace_path(
            &backbone,
            &faults,
            router,
            SelectionPolicy::Random,
            &mut rng,
            &sg,
            &dg,
            128,
        )
        .expect("healthy backbone");
        let mf = marking.mark_journey(&cluster, sm, &path);
        if marking.attribute(&cluster, &dg, mf).single() != Some(src) {
            wrong += 1;
        }
    }
    println!("random benign flows misattributed: {wrong}/~500");
    assert_eq!(wrong, 0);
}
