//! Why route-recording traceback fails in direct networks — and DDPM
//! doesn't.
//!
//! ```text
//! cargo run --release --example adaptive_vs_deterministic
//! ```
//!
//! Reproduces the paper's core argument (§4) as a live demo: one flow
//! under dimension-order vs. fully adaptive routing, observed through
//! DPM signatures and DDPM identifications side by side.

use ddpm::prelude::*;
use std::collections::HashSet;

fn run_flow(
    topo: &Topology,
    router: Router,
    policy: SelectionPolicy,
    marker: &dyn Marker,
    packets: u64,
) -> Vec<Delivered> {
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(topo);
    let mut factory = PacketFactory::new(map);
    let mut sim = Simulation::new(
        topo,
        &faults,
        router,
        policy,
        marker,
        SimConfig::seeded(64).with_paths(),
    );
    let src = NodeId(0);
    let dst = NodeId(topo.num_nodes() as u32 - 1);
    for k in 0..packets {
        sim.schedule(SimTime(k * 8), factory.benign(src, dst, L4::udp(1, 7), 128));
    }
    sim.run();
    sim.into_delivered()
}

fn main() {
    let topo = Topology::mesh2d(8);
    println!("one flow, corner to corner on a {topo}, 300 packets\n");

    for (router, policy, label) in [
        (
            Router::DimensionOrder,
            SelectionPolicy::First,
            "dimension-order (stable routes)",
        ),
        (
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            "minimal adaptive (unstable routes)",
        ),
        (
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            "fully adaptive (unstable + non-minimal)",
        ),
    ] {
        println!("== {label} ==");

        // How many distinct paths did the flow actually take?
        let plain = run_flow(&topo, router, policy, &NoMarking, 300);
        let paths: HashSet<_> = plain.iter().map(|d| d.path.clone().unwrap()).collect();
        let hops: HashSet<u32> = plain.iter().map(|d| d.hops).collect();
        println!(
            "  distinct paths taken : {:4}   hop counts seen: {:?}",
            paths.len(),
            {
                let mut h: Vec<u32> = hops.into_iter().collect();
                h.sort_unstable();
                h
            }
        );

        // DPM: one signature per path shape -> fragmentation.
        let dpm_runs = run_flow(&topo, router, policy, &DpmScheme::new(), 300);
        let sigs: HashSet<u16> = dpm_runs
            .iter()
            .map(|d| d.packet.header.identification.raw())
            .collect();
        println!(
            "  DPM signatures       : {:4}   (victim must learn & block each one)",
            sigs.len()
        );

        // DDPM: every packet identifies the same — correct — source.
        let scheme = DdpmScheme::new(&topo).expect("fits");
        let ddpm_runs = run_flow(&topo, router, policy, &scheme, 300);
        let ids: HashSet<Option<NodeId>> = ddpm_runs
            .iter()
            .map(|d| {
                scheme
                    .attribute(
                        &topo,
                        &topo.coord(d.packet.dest_node),
                        d.packet.header.identification,
                    )
                    .single()
            })
            .collect();
        println!(
            "  DDPM identifications : {:4}   -> {:?}\n",
            ids.len(),
            ids.iter().collect::<Vec<_>>()
        );
        assert_eq!(ids.len(), 1);
        assert!(ids.contains(&Some(NodeId(0))));
    }

    println!(
        "takeaway: adaptive routing multiplies what a path-recording scheme must\n\
         learn, while DDPM's answer never changes — the paper's §5 claim."
    );
}
