//! Source identification on an indirect network — the §6.3 extension.
//!
//! ```text
//! cargo run --release --example indirect_min
//! ```
//!
//! The paper closes by noting that its scheme "is limited to direct
//! networks" and that indirect networks (crossbars, Multistage
//! Interconnection Networks) "may need a completely different
//! approach". This example runs that approach: on a radix-4 butterfly,
//! switches record the *input port* a packet arrives on at each stage;
//! in a butterfly the stage-i input port is exactly digit i of the
//! source terminal, so the marking field spells the true source on
//! delivery — single-packet identification, carried over to MINs.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    // A 4-ary 4-fly: 256 terminals, 4 stages of 64 radix-4 switches.
    let fly = Butterfly::new(4, 4);
    let scheme = PortMarking::new(fly).expect("4*2 = 8 marking bits fit easily");
    println!(
        "fabric: {fly}; stage-port marking uses {} of 16 MF bits",
        scheme.bits_used()
    );

    // Address pool for headers (any pool of >= 256 addresses works).
    let pool = Topology::mesh2d(16);
    let map = AddrMap::for_topology(&pool);

    // Three compromised terminals flood terminal 200, every header
    // spoofed with a fresh random address.
    let zombies = [NodeId(17), NodeId(99), NodeId(244)];
    let victim = NodeId(200);
    let mut rng = SmallRng::seed_from_u64(2004);
    let mut sim = MinSimulation::new(fly, scheme);
    let mut id = 0u64;
    for &z in &zombies {
        for k in 0..200u64 {
            let spoof = NodeId(rng.gen_range(0..256));
            let pkt = Packet {
                id: PacketId(id),
                header: Ipv4Header::new(map.ip_of(spoof), map.ip_of(victim), Protocol::Udp, 512),
                l4: L4::udp(4444, 7),
                true_source: z,
                dest_node: victim,
                class: TrafficClass::Attack,
            };
            sim.schedule(SimTime(k * 6), pkt);
            id += 1;
        }
    }
    let stats = sim.run();
    println!(
        "flood: {} injected, {} delivered, {} dropped at full buffers",
        stats.attack.injected, stats.attack.delivered, stats.attack.dropped_buffer
    );

    // The victim reads the marking field of each packet.
    let mut census = std::collections::HashMap::new();
    for d in sim.delivered() {
        let src = scheme.identify(d.packet.header.identification);
        assert_eq!(src, d.packet.true_source, "identification is exact");
        *census.entry(src).or_insert(0u64) += 1;
    }
    println!("\nidentified sources (from marking fields alone):");
    let mut rows: Vec<(NodeId, u64)> = census.into_iter().collect();
    rows.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
    for (node, count) in &rows {
        println!("  terminal {node}: {count} packets");
    }
    let found: Vec<NodeId> = rows.iter().map(|&(n, _)| n).collect();
    let mut expected = zombies.to_vec();
    expected.sort();
    let mut sorted = found.clone();
    sorted.sort();
    assert_eq!(sorted, expected);
    println!(
        "\nall {} zombies identified; no innocent implicated.",
        zombies.len()
    );
}
