//! Quickstart: identify a spoofing attacker from a single packet.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds an 8×8 torus with fully adaptive routing and DDPM marking,
//! lets a compromised node flood a victim behind a spoofed address, and
//! shows the victim identifying the true source from the very first
//! delivered packet — the paper's headline property (§1: "The victim
//! needs only one packet to identify the source").

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // 1. The cluster: an 8x8 torus (64 nodes), healthy links, fully
    //    adaptive routing with random selection — the adversarial case
    //    for classic traceback (paths are never stable).
    let topo = Topology::torus(&[8, 8]);
    let faults = FaultSet::none();
    let router = Router::fully_adaptive_for(&topo);
    let map = AddrMap::for_topology(&topo);

    // 2. The defence: DDPM marking in every switch.
    let scheme = DdpmScheme::new(&topo).expect("64 nodes is far below the Table 3 limit");
    println!(
        "cluster: {topo}, routing: {router}, marking: DDPM ({} MF bits)",
        scheme.codec().bits_used()
    );

    // 3. The attack: node 9 floods node 50, spoofing a different source
    //    address on every packet.
    let zombie = NodeId(9);
    let victim = NodeId(50);
    let mut factory = PacketFactory::new(map.clone());
    let mut rng = SmallRng::seed_from_u64(2004);
    let mut sim = Simulation::new(
        &topo,
        &faults,
        router,
        SelectionPolicy::Random,
        &scheme,
        SimConfig::seeded(2004),
    );
    for k in 0..100u64 {
        let claimed = SpoofStrategy::RandomInCluster.claimed_ip(&map, zombie, &mut rng);
        let pkt = factory.attack(zombie, claimed, victim, L4::udp(4444, 7), 512);
        sim.schedule(SimTime(k * 8), pkt);
    }
    let stats = sim.run();
    println!(
        "attack: {} packets injected, {} delivered (mean {} hops)",
        stats.attack.injected,
        stats.attack.delivered,
        stats.attack.mean_hops().unwrap_or(0.0)
    );

    // 4. The victim's view: the source address is useless…
    let first = &sim.delivered()[0];
    println!(
        "first packet: claims to be from {} (node {:?})",
        first.packet.header.src,
        map.node_of(first.packet.header.src)
    );

    // …but the marking field names the real injector.
    let dest = topo.coord(victim);
    let identified = scheme
        .attribute(&topo, &dest, first.packet.header.identification)
        .single()
        .expect("DDPM identifies every honestly marked packet");
    println!(
        "DDPM identification from ONE packet: {identified} at {} (true source: {zombie})",
        topo.coord(identified)
    );
    assert_eq!(identified, zombie);

    // 5. And it holds for every packet, over every adaptive path taken.
    let report = score_ddpm(&topo, &scheme, sim.delivered());
    println!(
        "all {} delivered packets identified correctly: accuracy = {}",
        report.total,
        report.accuracy()
    );
    assert_eq!(report.accuracy(), 1.0);
}
