//! Worm outbreak: tracing an epidemic back to patient zero.
//!
//! ```text
//! cargo run --release --example worm_outbreak
//! ```
//!
//! The paper's second-generation attack (§1): a scanning worm spreads
//! exponentially through a 64-node cluster, each infected node probing
//! random targets behind spoofed addresses. Every probed node can use
//! DDPM to identify who probed it — so the infection *graph* (who
//! infected whom, round by round) is reconstructible, all the way back
//! to the seed, even though every probe lies about its source address.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

fn main() {
    let topo = Topology::mesh2d(8);
    let faults = FaultSet::none();
    let map = AddrMap::for_topology(&topo);
    let scheme = DdpmScheme::new(&topo).expect("fits");
    let seed_node = NodeId(21);

    // Generate the epidemic: 1 seed, 4 scans per round, 10 rounds.
    let mut factory = PacketFactory::new(map.clone());
    let mut rng = SmallRng::seed_from_u64(1988);
    let worm = WormOutbreak {
        rounds: 10,
        ..WormOutbreak::new(seed_node, topo.num_nodes() as u32)
    };
    let trace = worm.generate(&mut factory, &mut rng);
    println!("infection curve (nodes infected at the start of each round):");
    for (r, n) in trace.infected_per_round.iter().enumerate() {
        println!("  round {r:2}: {n:3} {}", "#".repeat(*n as usize));
    }

    // Push the probe traffic through the adaptively routed network.
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::MinimalAdaptive,
        SelectionPolicy::Random,
        &scheme,
        SimConfig::seeded(1988),
    );
    for (t, p) in &trace.workload {
        sim.schedule(*t, *p);
    }
    let stats = sim.run();
    println!(
        "\nworm probes: {} injected, {} delivered",
        stats.attack.injected, stats.attack.delivered
    );

    // Every probed node identifies its prober via DDPM — assemble the
    // who-probed-whom graph and count spoofing.
    let mut probed_by: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    let mut spoofed = 0u64;
    for d in sim.delivered() {
        let dest = topo.coord(d.packet.dest_node);
        let prober = scheme
            .attribute(&topo, &dest, d.packet.header.identification)
            .single()
            .expect("DDPM identifies every probe");
        assert_eq!(prober, d.packet.true_source, "identification is exact");
        probed_by
            .entry(d.packet.dest_node)
            .or_default()
            .insert(prober);
        if d.packet.is_spoofed(&map) {
            spoofed += 1;
        }
    }
    println!(
        "{spoofed} of {} delivered probes were spoofed — and all were still attributed correctly",
        stats.attack.delivered
    );

    // Forensics from victim-side evidence alone. Two observations:
    //
    // * the prober of the earliest delivered probe in the whole epidemic
    //   must already have been infected at round 0 — that is patient
    //   zero;
    // * each node's *first* received probe came from a node infected in
    //   an earlier round, so following first-probe edges backward walks
    //   the infection tree toward the seed, with strictly decreasing
    //   infection rounds (no cycles possible).
    let mut first_in: HashMap<NodeId, (SimTime, NodeId)> = HashMap::new();
    let mut patient_zero = (SimTime(u64::MAX), seed_node);
    for d in sim.delivered() {
        let dest = topo.coord(d.packet.dest_node);
        let prober = scheme
            .attribute(&topo, &dest, d.packet.header.identification)
            .single()
            .expect("identifies");
        let e = first_in
            .entry(d.packet.dest_node)
            .or_insert((d.delivered_at, prober));
        if d.delivered_at < e.0 {
            *e = (d.delivered_at, prober);
        }
        if d.delivered_at < patient_zero.0 {
            patient_zero = (d.delivered_at, prober);
        }
    }
    println!(
        "\npatient zero (prober of the first probe ever delivered): {} (ground truth: {seed_node})",
        patient_zero.1
    );
    assert_eq!(patient_zero.1, seed_node);

    // Walk one infection chain backward to the seed.
    let mut cursor = *trace.infected.last().expect("someone is infected");
    let mut chain = vec![cursor];
    while cursor != seed_node {
        let (_, prober) = first_in[&cursor];
        assert!(
            !chain.contains(&prober),
            "first-probe edges cannot cycle (rounds strictly decrease)"
        );
        cursor = prober;
        chain.push(cursor);
    }
    println!(
        "infection chain of {}: {}",
        chain[0],
        chain
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" <- ")
    );
    assert_eq!(*chain.last().unwrap(), seed_node);
}
