//! SYN-flood traceback and mitigation: the full §1–§2 pipeline.
//!
//! ```text
//! cargo run --release --example syn_flood_traceback
//! ```
//!
//! Five compromised nodes SYN-flood a service node on an 8×8 torus with
//! spoofed in-cluster addresses, denying service to legitimate clients
//! (the half-open table fills). The victim detects the flood, uses DDPM
//! to identify the zombies, and quarantines them at their own switches;
//! the replay shows service restored with zero collateral damage.

use ddpm::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Feed the victim's delivered stream through the TCP model and the
/// detectors; returns (table, entropy verdict, half-open verdict).
fn victim_stack(
    delivered: &[Delivered],
    victim: NodeId,
) -> (HalfOpenTable, DetectionVerdict, DetectionVerdict) {
    let mut table = HalfOpenTable::new(128, 2_000);
    let mut entropy = EntropyDetector::new(64, 4.5);
    let mut halfopen = SynHalfOpenDetector::new(96);
    for d in delivered {
        if d.packet.dest_node != victim {
            continue;
        }
        table.on_packet(&d.packet, d.delivered_at);
        entropy.observe(&d.packet, d.delivered_at);
        halfopen.observe(&table, d.delivered_at);
    }
    (table, entropy.verdict(), halfopen.verdict())
}

fn main() {
    let topo = Topology::torus(&[8, 8]);
    let faults = FaultSet::none();
    let router = Router::fully_adaptive_for(&topo);
    let map = AddrMap::for_topology(&topo);
    let scheme = DdpmScheme::new(&topo).expect("fits");
    let victim = NodeId(27);
    let zombies = [NodeId(3), NodeId(12), NodeId(40), NodeId(55), NodeId(61)];
    let clients = [NodeId(5), NodeId(18), NodeId(33), NodeId(48)];

    // Build one workload used by both phases: benign clients opening
    // connections + background chatter + the flood.
    let mut factory = PacketFactory::new(map.clone());
    let mut rng = SmallRng::seed_from_u64(41);
    let mut workload =
        BackgroundTraffic::uniform(24, 8_000).generate(&topo, &mut factory, &mut rng);
    for (i, c) in clients.iter().enumerate() {
        for k in 0..120u64 {
            let l4 = L4::tcp_syn(3000 + k as u16, 80, k as u32);
            workload.push((
                SimTime(k * 60 + i as u64 * 17),
                factory.benign(*c, victim, l4, 40),
            ));
        }
    }
    let flood = SynFloodAttack {
        start: SimTime(1_500),
        interval: 6,
        syns_per_zombie: 600,
        ..SynFloodAttack::new(zombies.to_vec(), victim)
    };
    workload.extend(flood.generate(&mut factory, &mut rng));

    let run = |quarantine: Option<&SourceQuarantine>| {
        let default_q = SourceQuarantine::new();
        let q = quarantine.unwrap_or(&default_q);
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            router,
            SelectionPolicy::ProductiveFirstRandom,
            &scheme,
            q,
            SimConfig {
                buffer_packets: 64,
                ..SimConfig::seeded(41)
            },
        );
        for (t, p) in &workload {
            sim.schedule(*t, *p);
        }
        let stats = sim.run();
        (stats, sim.into_delivered())
    };

    // ---- Phase A: undefended -------------------------------------
    println!("== Phase A: attack, no defence ==");
    let (stats_a, delivered_a) = run(None);
    let (table_a, entropy_a, halfopen_a) = victim_stack(&delivered_a, victim);
    println!(
        "attack SYNs delivered to victim: {}   benign packets delivered: {}",
        stats_a.attack.delivered, stats_a.benign.delivered
    );
    println!(
        "benign connection attempts rejected (service denied): {} of {}",
        table_a.rejected_benign,
        table_a.rejected_benign + table_a.accepted
    );
    println!("entropy detector : {entropy_a:?}");
    println!("half-open detector: {halfopen_a:?}");
    assert!(
        entropy_a.is_alarm() || halfopen_a.is_alarm(),
        "flood must be detected"
    );

    // ---- Identification -------------------------------------------
    let census = attack_census(&topo, &scheme, &delivered_a);
    let mut heavy: Vec<(NodeId, u64)> = census.into_iter().filter(|&(_, c)| c >= 50).collect();
    heavy.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
    println!("\n== DDPM identification ==");
    for (node, count) in &heavy {
        println!("  {node} at {}: {count} attack packets", topo.coord(*node));
    }
    let identified: Vec<NodeId> = heavy.iter().map(|&(n, _)| n).collect();
    let mut sorted = identified.clone();
    sorted.sort();
    let mut truth = zombies.to_vec();
    truth.sort();
    assert_eq!(sorted, truth, "identified set must equal the true zombies");
    println!(
        "identified = ground truth: all {} zombies, no innocents",
        truth.len()
    );

    // ---- Phase B: quarantine -------------------------------------
    println!("\n== Phase B: zombies quarantined at their switches ==");
    let quarantine = SourceQuarantine::new();
    for n in &identified {
        quarantine.block(topo.coord(*n));
    }
    let (stats_b, delivered_b) = run(Some(&quarantine));
    let (table_b, _, _) = victim_stack(&delivered_b, victim);
    println!(
        "attack SYNs delivered to victim: {} (was {})",
        stats_b.attack.delivered, stats_a.attack.delivered
    );
    println!(
        "benign packets delivered: {} (was {})",
        stats_b.benign.delivered, stats_a.benign.delivered
    );
    println!(
        "benign connection attempts rejected: {} (was {})",
        table_b.rejected_benign, table_a.rejected_benign
    );
    assert_eq!(
        stats_b.attack.delivered, 0,
        "quarantine kills the flood at source"
    );
    assert!(table_b.rejected_benign < table_a.rejected_benign);
    // The only filtered benign traffic is what the quarantined machines
    // themselves generate — the intended effect of quarantining a
    // compromised host, not misattribution. No *innocent* node loses
    // traffic.
    let innocent_benign_a = delivered_a
        .iter()
        .filter(|d| {
            d.packet.class == TrafficClass::Benign && !zombies.contains(&d.packet.true_source)
        })
        .count();
    let innocent_benign_b = delivered_b
        .iter()
        .filter(|d| {
            d.packet.class == TrafficClass::Benign && !zombies.contains(&d.packet.true_source)
        })
        .count();
    println!(
        "\nservice restored. Benign traffic of quarantined machines filtered: {};\n\
         benign traffic of innocent nodes: {} before vs {} after (>= before: congestion relief)",
        stats_b.benign.dropped_filtered, innocent_benign_a, innocent_benign_b
    );
    assert!(innocent_benign_b >= innocent_benign_a);
}
