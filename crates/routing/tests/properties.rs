//! Property-based tests for the routing algorithms.
//!
//! The key invariants:
//! * on a healthy network every algorithm delivers every pair;
//! * deterministic routing is path-stable, adaptive routing is not
//!   forced to be;
//! * minimal algorithms produce minimal paths;
//! * candidates never include faulty links;
//! * the fully adaptive misroute budget bounds path inflation.

use ddpm_routing::{trace_path, RouteCtx, RouteState, Router, SelectionPolicy};
use ddpm_topology::{FaultSet, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::mesh(&[a, b])),
        (3u16..=6, 3u16..=6).prop_map(|(a, b)| Topology::torus(&[a, b])),
        (2usize..=6).prop_map(Topology::hypercube),
        (2u16..=4, 2u16..=4, 2u16..=4).prop_map(|(a, b, c)| Topology::mesh(&[a, b, c])),
    ]
}

fn arb_case() -> impl Strategy<Value = (Topology, u32, u32, u64)> {
    arb_topology().prop_flat_map(|t| {
        let n = t.num_nodes() as u32;
        (Just(t), 0..n, 0..n, any::<u64>())
    })
}

proptest! {
    #[test]
    fn all_routers_deliver_on_healthy_network((topo, si, di, seed) in arb_case()) {
        let s = topo.coord(NodeId(si));
        let d = topo.coord(NodeId(di));
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(seed);
        for router in Router::all_for(&topo) {
            let max = topo.diameter() * 4 + router.misroute_budget() + 8;
            let path = trace_path(
                &topo, &faults, router,
                SelectionPolicy::ProductiveFirstRandom,
                &mut rng, &s, &d, max,
            );
            let path = path.unwrap_or_else(|e| panic!("{router} failed {s}->{d} on {topo}: {e}"));
            prop_assert_eq!(path.first(), Some(&s));
            prop_assert_eq!(path.last(), Some(&d));
            // Consecutive entries are single hops.
            for w in path.windows(2) {
                prop_assert_eq!(topo.min_hops(&w[0], &w[1]), 1);
            }
            // Productive-first selection on a healthy network: minimal.
            prop_assert_eq!(path.len() as u32 - 1, topo.min_hops(&s, &d));
        }
    }

    #[test]
    fn deterministic_router_is_path_stable((topo, si, di, seed) in arb_case()) {
        let s = topo.coord(NodeId(si));
        let d = topo.coord(NodeId(di));
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(seed);
        let p1 = trace_path(&topo, &faults, Router::DimensionOrder,
            SelectionPolicy::Random, &mut rng, &s, &d, 256).unwrap();
        let p2 = trace_path(&topo, &faults, Router::DimensionOrder,
            SelectionPolicy::Random, &mut rng, &s, &d, 256).unwrap();
        prop_assert_eq!(p1, p2);
    }

    #[test]
    fn candidates_never_cross_faults((topo, si, di, seed) in arb_case()) {
        let s = topo.coord(NodeId(si));
        let d = topo.coord(NodeId(di));
        if s == d { return Ok(()); }
        let mut counter = seed;
        let faults = FaultSet::random(&topo, 0.3, || {
            // xorshift-ish deterministic sampler
            counter ^= counter << 13;
            counter ^= counter >> 7;
            counter ^= counter << 17;
            (counter % 1000) as f64 / 1000.0
        });
        for router in Router::all_for(&topo) {
            let ctx = RouteCtx::new(&topo, &faults);
            let state = RouteState::with_budget(router.misroute_budget());
            for c in router.candidates(&ctx, &s, &d, &state) {
                prop_assert!(!faults.is_faulty(&topo, &s, &c.next),
                    "{} offered faulty link {} -> {}", router, s, c.next);
                prop_assert_eq!(
                    c.productive,
                    topo.min_hops(&c.next, &d) < topo.min_hops(&s, &d)
                );
            }
        }
    }

    #[test]
    fn fully_adaptive_path_length_bounded((topo, si, di, seed) in arb_case()) {
        let s = topo.coord(NodeId(si));
        let d = topo.coord(NodeId(di));
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(seed);
        let budget = 6;
        let path = trace_path(
            &topo, &faults,
            Router::FullyAdaptive { misroute_budget: budget },
            SelectionPolicy::Random, // misroutes whenever it fancies
            &mut rng, &s, &d,
            topo.diameter() + 2 * budget + 4,
        );
        if let Ok(path) = &path {
            // Each misroute adds at most 2 hops of inflation.
            prop_assert!(
                path.len() as u32 - 1 <= topo.min_hops(&s, &d) + 2 * budget,
                "path too long: {} vs minimal {}", path.len() - 1, topo.min_hops(&s, &d)
            );
        }
        // HopBudgetExhausted is impossible: budget accounting caps
        // wandering below the max_hops we passed. Blocked is impossible on
        // a healthy network. So the trace must succeed.
        prop_assert!(path.is_ok());
    }
}
