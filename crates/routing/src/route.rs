//! The unified routing interface.

use crate::state::RouteState;
use crate::{adaptive, dor, turn_model};
use ddpm_topology::{Coord, Direction, FaultSet, Topology};
use std::fmt;

/// Immutable routing context: the network and its failed links.
#[derive(Clone, Copy)]
pub struct RouteCtx<'a> {
    /// The network.
    pub topo: &'a Topology,
    /// Its failed links.
    pub faults: &'a FaultSet,
}

impl<'a> RouteCtx<'a> {
    /// Builds a context.
    #[must_use]
    pub fn new(topo: &'a Topology, faults: &'a FaultSet) -> Self {
        Self { topo, faults }
    }

    /// True if the hop `cur → next` strictly reduces the remaining
    /// minimal distance to `dst` — the productivity test shared by every
    /// adaptive algorithm.
    #[must_use]
    pub fn is_productive(&self, cur: &Coord, next: &Coord, dst: &Coord) -> bool {
        self.topo.min_hops(next, dst) < self.topo.min_hops(cur, dst)
    }

    /// Live (non-faulty) neighbours of `cur`.
    #[must_use]
    pub fn live_neighbors(&self, cur: &Coord) -> Vec<(Direction, Coord)> {
        let mut out = Vec::with_capacity(self.topo.degree());
        self.for_each_live_neighbor(cur, |dir, nb| out.push((dir, nb)));
        out
    }

    /// Streams the live neighbours of `cur` in the same order as
    /// [`RouteCtx::live_neighbors`], without allocating — the per-hop
    /// form used by the simulator's forwarding path.
    pub fn for_each_live_neighbor<F: FnMut(Direction, Coord)>(&self, cur: &Coord, mut f: F) {
        self.topo.for_each_neighbor(cur, |dir, nb| {
            if !self.faults.is_faulty(self.topo, cur, &nb) {
                f(dir, nb);
            }
        });
    }
}

/// One admissible next hop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Candidate {
    /// The neighbouring node to forward to.
    pub next: Coord,
    /// The output direction used.
    pub dir: Direction,
    /// True if this hop reduces the remaining distance (minimal hop).
    pub productive: bool,
}

/// Routing adaptivity class (§3: "Depending on the adaptivity, an
/// algorithm is called partially or fully adaptive").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Adaptivity {
    /// One fixed path per (src, dst) pair.
    Deterministic,
    /// Some run-time choice, constrained by turn rules.
    PartiallyAdaptive,
    /// Unconstrained run-time choice (within the misroute budget).
    FullyAdaptive,
}

/// Errors surfaced while routing a packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// No admissible output port: the algorithm is blocked (Fig. 2 shows
    /// XY and west-first blocking under faults).
    Blocked {
        /// Where the packet got stuck.
        at: Coord,
    },
    /// The hop budget ran out before delivery (livelock guard).
    HopBudgetExhausted {
        /// Where the packet was when the budget ran out.
        at: Coord,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::Blocked { at } => write!(f, "routing blocked at {at}"),
            RouteError::HopBudgetExhausted { at } => {
                write!(f, "hop budget exhausted at {at}")
            }
        }
    }
}

impl std::error::Error for RouteError {}

/// A routing algorithm. `Copy`, cheaply cloned into simulator configs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Router {
    /// Dimension-order (XY on 2-D mesh, e-cube on hypercube): the
    /// deterministic baseline of Fig. 2(a).
    DimensionOrder,
    /// West-first turn-model routing (2-D mesh only): the partially
    /// adaptive algorithm of Fig. 2(b).
    WestFirst,
    /// North-last turn-model routing (2-D mesh only).
    NorthLast,
    /// Negative-first turn-model routing (n-dimensional mesh).
    NegativeFirst,
    /// Fully adaptive *minimal* routing: any productive direction.
    MinimalAdaptive,
    /// Fully adaptive routing with non-minimal hops, bounded by a
    /// per-packet misroute budget for livelock avoidance (Fig. 2(c)).
    FullyAdaptive {
        /// Maximum non-productive hops one packet may take.
        misroute_budget: u32,
    },
}

impl Router {
    /// A fully adaptive router with the default budget used in the
    /// experiments: one network diameter's worth of misrouting.
    #[must_use]
    pub fn fully_adaptive_for(topo: &Topology) -> Self {
        Router::FullyAdaptive {
            misroute_budget: topo.diameter().max(4),
        }
    }

    /// Human-readable name used in experiment tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Router::DimensionOrder => "dimension-order",
            Router::WestFirst => "west-first",
            Router::NorthLast => "north-last",
            Router::NegativeFirst => "negative-first",
            Router::MinimalAdaptive => "minimal-adaptive",
            Router::FullyAdaptive { .. } => "fully-adaptive",
        }
    }

    /// Adaptivity class of the algorithm.
    #[must_use]
    pub fn adaptivity(&self) -> Adaptivity {
        match self {
            Router::DimensionOrder => Adaptivity::Deterministic,
            Router::WestFirst | Router::NorthLast | Router::NegativeFirst => {
                Adaptivity::PartiallyAdaptive
            }
            Router::MinimalAdaptive | Router::FullyAdaptive { .. } => Adaptivity::FullyAdaptive,
        }
    }

    /// True if every (src, dst) pair has exactly one path.
    #[must_use]
    pub fn is_deterministic(&self) -> bool {
        self.adaptivity() == Adaptivity::Deterministic
    }

    /// The misroute budget granted to each packet.
    #[must_use]
    pub fn misroute_budget(&self) -> u32 {
        match self {
            Router::FullyAdaptive { misroute_budget } => *misroute_budget,
            _ => 0,
        }
    }

    /// Admissible next hops from `cur` toward `dst`.
    ///
    /// Faulty links are already filtered out. Productive candidates come
    /// first. An empty result means the packet is blocked here.
    #[must_use]
    pub fn candidates(
        &self,
        ctx: &RouteCtx<'_>,
        cur: &Coord,
        dst: &Coord,
        state: &RouteState,
    ) -> Vec<Candidate> {
        let mut out = Vec::new();
        self.candidates_into(ctx, cur, dst, state, &mut out);
        out
    }

    /// Allocation-free form of [`Router::candidates`]: clears `out` and
    /// fills it with the admissible next hops, in the same order.
    ///
    /// The simulator's forwarding path reuses one buffer across events,
    /// so steady-state routing never touches the allocator.
    pub fn candidates_into(
        &self,
        ctx: &RouteCtx<'_>,
        cur: &Coord,
        dst: &Coord,
        state: &RouteState,
        out: &mut Vec<Candidate>,
    ) {
        debug_assert!(ctx.topo.contains(cur) && ctx.topo.contains(dst));
        out.clear();
        if cur == dst {
            return;
        }
        match self {
            Router::DimensionOrder => dor::candidates_into(ctx, cur, dst, out),
            Router::WestFirst => turn_model::west_first_into(ctx, cur, dst, state, out),
            Router::NorthLast => turn_model::north_last_into(ctx, cur, dst, state, out),
            Router::NegativeFirst => turn_model::negative_first_into(ctx, cur, dst, state, out),
            Router::MinimalAdaptive => adaptive::minimal_into(ctx, cur, dst, out),
            Router::FullyAdaptive { .. } => adaptive::fully_into(ctx, cur, dst, state, out),
        }
    }

    /// All routers applicable to `topo`, for experiment sweeps.
    #[must_use]
    pub fn all_for(topo: &Topology) -> Vec<Router> {
        let mut out = vec![Router::DimensionOrder];
        if matches!(topo.kind(), ddpm_topology::TopologyKind::Mesh) {
            if topo.ndims() == 2 {
                out.push(Router::WestFirst);
                out.push(Router::NorthLast);
            }
            out.push(Router::NegativeFirst);
        }
        out.push(Router::MinimalAdaptive);
        out.push(Router::fully_adaptive_for(topo));
        out
    }
}

impl fmt::Display for Router {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}
