//! Fully adaptive routing.
//!
//! "Fully adaptive routing does not have such restrictions, so it can
//! forward all the packets successfully" (§3, Fig. 2(c)). Two variants:
//!
//! * [`minimal`] — any productive (distance-reducing) direction; never
//!   misroutes, so it can still block under pathological fault patterns;
//! * [`fully`] — additionally offers non-minimal hops while the packet's
//!   misroute budget lasts, implementing the livelock-avoidance scheme
//!   §4.1 alludes to ("many adaptive routing algorithms allow a packet to
//!   revisit the same node. To prevent livelock … livelock avoidance (or,
//!   recovery) schemes").

use crate::route::{Candidate, RouteCtx};
use crate::state::RouteState;
use ddpm_topology::Coord;

/// All live productive hops from `cur` toward `dst`.
#[must_use]
pub fn minimal(ctx: &RouteCtx<'_>, cur: &Coord, dst: &Coord) -> Vec<Candidate> {
    let mut out = Vec::new();
    minimal_into(ctx, cur, dst, &mut out);
    out
}

/// Allocation-free form of [`minimal`]; appends into `out`.
pub fn minimal_into(ctx: &RouteCtx<'_>, cur: &Coord, dst: &Coord, out: &mut Vec<Candidate>) {
    ctx.for_each_live_neighbor(cur, |dir, next| {
        if ctx.is_productive(cur, &next, dst) {
            out.push(Candidate {
                next,
                dir,
                productive: true,
            });
        }
    });
}

/// All live hops: productive first, then misroutes while the budget
/// lasts.
#[must_use]
pub fn fully(ctx: &RouteCtx<'_>, cur: &Coord, dst: &Coord, state: &RouteState) -> Vec<Candidate> {
    let mut out = Vec::new();
    fully_into(ctx, cur, dst, state, &mut out);
    out
}

/// Allocation-free form of [`fully`]; appends into `out`.
///
/// Two streaming passes over the live neighbours (productive, then
/// misroutes) reproduce the productive-first order of the buffered
/// version without a scratch vector; `min_hops` is closed-form, so the
/// second pass costs arithmetic, not allocation.
pub fn fully_into(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
    out: &mut Vec<Candidate>,
) {
    minimal_into(ctx, cur, dst, out);
    if state.can_misroute() {
        ctx.for_each_live_neighbor(cur, |dir, next| {
            if !ctx.is_productive(cur, &next, dst) {
                out.push(Candidate {
                    next,
                    dir,
                    productive: false,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{RouteCtx, Router};
    use crate::selection::{trace_path, SelectionPolicy};
    use ddpm_topology::{FaultSet, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn minimal_offers_every_productive_direction() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        let cands = minimal(&ctx, &Coord::new(&[0, 0]), &Coord::new(&[2, 2]));
        assert_eq!(cands.len(), 2); // east and north both productive
        assert!(cands.iter().all(|c| c.productive));
    }

    #[test]
    fn torus_equidistant_offers_both_ring_directions() {
        let topo = Topology::torus(&[4, 4]);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        // Distance 2 both ways around the dim-0 ring.
        let cands = minimal(&ctx, &Coord::new(&[0, 0]), &Coord::new(&[2, 0]));
        assert_eq!(cands.len(), 2);
    }

    #[test]
    fn fully_respects_budget() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        let with_budget = RouteState::with_budget(4);
        let without = RouteState::with_budget(0);
        let cur = Coord::new(&[1, 1]);
        let dst = Coord::new(&[3, 1]);
        let c1 = fully(&ctx, &cur, &dst, &with_budget);
        let c0 = fully(&ctx, &cur, &dst, &without);
        assert!(c1.len() > c0.len(), "budget should add misroute options");
        assert!(c0.iter().all(|c| c.productive));
        assert!(c1[0].productive, "productive candidates come first");
    }

    #[test]
    fn minimal_adaptive_delivers_all_pairs_minimally() {
        for topo in [
            Topology::mesh2d(4),
            Topology::torus(&[4, 4]),
            Topology::hypercube(4),
        ] {
            let faults = FaultSet::none();
            let mut rng = SmallRng::seed_from_u64(3);
            for s in topo.all_nodes() {
                for d in topo.all_nodes() {
                    if s == d {
                        continue;
                    }
                    let path = trace_path(
                        &topo,
                        &faults,
                        Router::MinimalAdaptive,
                        SelectionPolicy::Random,
                        &mut rng,
                        &s,
                        &d,
                        128,
                    )
                    .unwrap();
                    assert_eq!(path.len() as u32 - 1, topo.min_hops(&s, &d));
                }
            }
        }
    }

    #[test]
    fn fully_adaptive_survives_fault_patterns_that_block_minimal() {
        // Block every productive first hop out of the source; only a
        // misroute can escape.
        let topo = Topology::mesh2d(4);
        let s = Coord::new(&[0, 0]);
        let d = Coord::new(&[2, 0]);
        let mut faults = FaultSet::none();
        faults.add(&topo, &s, &Coord::new(&[1, 0])); // east (productive)
        let mut rng = SmallRng::seed_from_u64(11);
        // Minimal adaptive: north hop from (0,0) is unproductive toward
        // (2,0)? No: (0,1) is 3 hops from (2,0) vs 2 from (0,0) — north is
        // unproductive, so minimal blocks at the source.
        assert!(trace_path(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &mut rng,
            &s,
            &d,
            64
        )
        .is_err());
        let path = trace_path(
            &topo,
            &faults,
            Router::FullyAdaptive { misroute_budget: 6 },
            SelectionPolicy::ProductiveFirstRandom,
            &mut rng,
            &s,
            &d,
            64,
        )
        .expect("fully adaptive must deliver");
        assert_eq!(path.last(), Some(&d));
        assert!(path.len() as u32 - 1 > topo.min_hops(&s, &d));
    }
}
