//! Turn-model partially adaptive routing.
//!
//! "West-first routing forwards packets west first, if necessary, and
//! then forwards east, south and north adaptively." (§3, Fig. 2(b)). The
//! turn model forbids the turns that would close a cycle: once a
//! west-first packet has left its westward phase it may never turn west
//! again — which is exactly why Fig. 2(c)'s fault pattern (all paths must
//! turn west just east of the destination) defeats it.
//!
//! Alongside west-first we provide north-last (the other classic 2-D
//! turn model) and negative-first, which generalises to n-dimensional
//! meshes. All three are mesh-only: turn models assume a network without
//! wrap-around cycles.
//!
//! Candidate ordering: productive hops first, then permitted
//! non-productive (misroute) hops. Selection policies prefer productive
//! hops, so misroutes only happen around faults or congestion.

use crate::route::{Candidate, RouteCtx};
use crate::state::RouteState;
use ddpm_topology::{Coord, Direction, Topology};

fn push_if_live(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    dir: Direction,
    out: &mut Vec<Candidate>,
) {
    if let Some(next) = ctx.topo.neighbor(cur, dir) {
        if !ctx.faults.is_faulty(ctx.topo, cur, &next) {
            out.push(Candidate {
                next,
                dir,
                productive: ctx.is_productive(cur, &next, dst),
            });
        }
    }
}

fn order_productive_first(cands: &mut [Candidate]) {
    // Stable, and at most `degree` elements — the std sort runs its
    // allocation-free insertion path at these lengths.
    cands.sort_by_key(|c| !c.productive);
}

fn assert_mesh2d(topo: &Topology, algo: &str) {
    assert!(
        matches!(topo, Topology::Mesh(_)) && topo.ndims() == 2,
        "{algo} routing is defined on 2-D meshes, not on a {topo}"
    );
}

/// West-first candidates (2-D mesh).
///
/// A packet may travel west only while west is the *only* direction it
/// has ever taken — turning (back) into west after an east/north/south
/// move is exactly the turn the model prohibits. That is why Fig. 2(c)
/// defeats west-first: "all paths should turn west at the right side
/// node of D. West-first routing cannot route in this situation because
/// packets should turn west at the last turn, not first."
///
/// # Panics
/// Panics if the topology is not a 2-D mesh.
#[must_use]
pub fn west_first(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(3);
    west_first_into(ctx, cur, dst, state, &mut out);
    out
}

/// Allocation-free form of [`west_first`]; appends into `out`.
///
/// # Panics
/// Panics if the topology is not a 2-D mesh.
pub fn west_first_into(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
    out: &mut Vec<Candidate>,
) {
    assert_mesh2d(ctx.topo, "west-first");
    let dx = dst.get(0) - cur.get(0);
    let west = Direction::minus(0);
    if dx < 0 {
        // Westward phase: legal only if the packet has moved nowhere but
        // west so far; otherwise it is stuck (blocked), by the model.
        if !state.moved_any_except(west) {
            push_if_live(ctx, cur, dst, west, out);
        }
        return;
    }
    // Adaptive phase: east, north, south — productive or not.
    push_if_live(ctx, cur, dst, Direction::plus(0), out); // east
    push_if_live(ctx, cur, dst, Direction::plus(1), out); // north
    push_if_live(ctx, cur, dst, Direction::minus(1), out); // south
    order_productive_first(out);
}

/// North-last candidates (2-D mesh).
///
/// Packets travel east/west/south adaptively; the northward run is taken
/// only once the east–west offset is closed, and can never be left.
///
/// # Panics
/// Panics if the topology is not a 2-D mesh.
#[must_use]
pub fn north_last(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(3);
    north_last_into(ctx, cur, dst, state, &mut out);
    out
}

/// Allocation-free form of [`north_last`]; appends into `out`.
///
/// # Panics
/// Panics if the topology is not a 2-D mesh.
pub fn north_last_into(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
    out: &mut Vec<Candidate>,
) {
    assert_mesh2d(ctx.topo, "north-last");
    let north = Direction::plus(1);
    let dx = dst.get(0) - cur.get(0);
    let dy = dst.get(1) - cur.get(1);
    if state.has_moved(north) {
        // Once the northward run starts it cannot be left.
        if dy > 0 {
            push_if_live(ctx, cur, dst, north, out);
        }
        return;
    }
    if dx == 0 && dy > 0 {
        // Start the final northward run.
        push_if_live(ctx, cur, dst, north, out);
        return;
    }
    push_if_live(ctx, cur, dst, Direction::plus(0), out); // east
    push_if_live(ctx, cur, dst, Direction::minus(0), out); // west
    push_if_live(ctx, cur, dst, Direction::minus(1), out); // south
    order_productive_first(out);
}

/// Negative-first candidates (n-dimensional mesh).
///
/// Phase 1 takes all required negative-direction hops (adaptively, in
/// any dimension order); phase 2 takes positive-direction hops. Turns
/// from positive back to negative are forbidden.
///
/// # Panics
/// Panics if the topology is not a mesh.
#[must_use]
pub fn negative_first(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(ctx.topo.ndims());
    negative_first_into(ctx, cur, dst, state, &mut out);
    out
}

/// Allocation-free form of [`negative_first`]; appends into `out`.
///
/// # Panics
/// Panics if the topology is not a mesh.
pub fn negative_first_into(
    ctx: &RouteCtx<'_>,
    cur: &Coord,
    dst: &Coord,
    state: &RouteState,
    out: &mut Vec<Candidate>,
) {
    assert!(
        matches!(ctx.topo, Topology::Mesh(_)),
        "negative-first routing is defined on meshes, not on a {}",
        ctx.topo
    );
    let n = ctx.topo.ndims();
    let needs_negative = (0..n).any(|d| dst.get(d) < cur.get(d));
    if needs_negative {
        // Negative moves are legal only before any positive move; a
        // packet that overshot positively and now needs a negative hop
        // is blocked (the prohibited positive→negative turn).
        if !state.moved_any_positive() {
            for d in 0..n {
                push_if_live(ctx, cur, dst, Direction::minus(d), out);
            }
        }
    } else {
        for d in 0..n {
            push_if_live(ctx, cur, dst, Direction::plus(d), out);
        }
    }
    order_productive_first(out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::{RouteCtx, Router};
    use crate::selection::{trace_path, SelectionPolicy};
    use crate::state::RouteState;
    use ddpm_topology::FaultSet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn west_first_goes_west_exclusively_when_needed() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        let cands = west_first(
            &ctx,
            &Coord::new(&[3, 1]),
            &Coord::new(&[0, 3]),
            &RouteState::default(),
        );
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].next, Coord::new(&[2, 1]));
        assert!(cands[0].productive);
    }

    #[test]
    fn west_first_adaptive_phase_offers_three_sides() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        let cands = west_first(
            &ctx,
            &Coord::new(&[1, 1]),
            &Coord::new(&[3, 2]),
            &RouteState::default(),
        );
        // east (productive), north (productive), south (misroute).
        assert_eq!(cands.len(), 3);
        assert!(cands[0].productive && cands[1].productive);
        assert!(!cands[2].productive);
        assert_eq!(cands[2].next, Coord::new(&[1, 0]));
    }

    #[test]
    fn west_first_routes_around_east_fault() {
        // Fig. 2(b): the east link out of the source fails; west-first
        // detours via north/south while XY blocks.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        let s = Coord::new(&[0, 1]);
        let d = Coord::new(&[2, 1]);
        faults.add(&topo, &s, &Coord::new(&[1, 1]));
        let mut rng = SmallRng::seed_from_u64(7);
        // XY blocks:
        assert!(trace_path(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &mut rng,
            &s,
            &d,
            64
        )
        .is_err());
        // West-first delivers:
        let path = trace_path(
            &topo,
            &faults,
            Router::WestFirst,
            SelectionPolicy::ProductiveFirstRandom,
            &mut rng,
            &s,
            &d,
            64,
        )
        .expect("west-first must deliver");
        assert_eq!(path.last(), Some(&d));
    }

    #[test]
    fn north_last_defers_north() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        // dx != 0: north not offered even though dy > 0.
        let cands = north_last(
            &ctx,
            &Coord::new(&[0, 0]),
            &Coord::new(&[2, 2]),
            &RouteState::default(),
        );
        assert!(cands.iter().all(|c| c.dir != Direction::plus(1)));
        // dx == 0: only north.
        let cands = north_last(
            &ctx,
            &Coord::new(&[2, 0]),
            &Coord::new(&[2, 2]),
            &RouteState::default(),
        );
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].dir, Direction::plus(1));
    }

    #[test]
    fn negative_first_phases() {
        let topo = Topology::mesh(&[4, 4, 4]);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        // Needs a negative move in dim 2: all candidates negative.
        let cands = negative_first(
            &ctx,
            &Coord::new(&[1, 1, 3]),
            &Coord::new(&[3, 1, 0]),
            &RouteState::default(),
        );
        assert!(cands
            .iter()
            .all(|c| c.dir.sign == ddpm_topology::Sign::Minus));
        // No negative moves needed: all candidates positive.
        let cands = negative_first(
            &ctx,
            &Coord::new(&[1, 1, 0]),
            &Coord::new(&[3, 2, 0]),
            &RouteState::default(),
        );
        assert!(cands
            .iter()
            .all(|c| c.dir.sign == ddpm_topology::Sign::Plus));
    }

    #[test]
    fn turn_models_deliver_all_pairs_on_healthy_mesh() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(42);
        for router in [Router::WestFirst, Router::NorthLast, Router::NegativeFirst] {
            for s in topo.all_nodes() {
                for d in topo.all_nodes() {
                    if s == d {
                        continue;
                    }
                    let path = trace_path(
                        &topo,
                        &faults,
                        router,
                        SelectionPolicy::ProductiveFirstRandom,
                        &mut rng,
                        &s,
                        &d,
                        128,
                    )
                    .unwrap_or_else(|e| panic!("{router}: {s}->{d}: {e}"));
                    assert_eq!(path.last(), Some(&d));
                    // Healthy network, productive-first selection: minimal.
                    assert_eq!(path.len() as u32 - 1, topo.min_hops(&s, &d));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2-D meshes")]
    fn west_first_rejects_torus() {
        let topo = Topology::torus(&[4, 4]);
        let faults = FaultSet::none();
        let ctx = RouteCtx::new(&topo, &faults);
        let state = RouteState::default();
        let _ =
            Router::WestFirst.candidates(&ctx, &Coord::new(&[0, 0]), &Coord::new(&[1, 1]), &state);
    }
}
