//! Output-port selection and standalone path tracing.
//!
//! A routing algorithm supplies *candidates*; a selection policy picks
//! one. The split mirrors real router microarchitecture (routing function
//! vs. selection function) and gives experiments a determinism dial: the
//! same adaptive algorithm produces stable paths under
//! [`SelectionPolicy::First`] and unstable ones under
//! [`SelectionPolicy::Random`] — the instability that breaks PPM/DPM
//! (§4.2–4.3) while DDPM shrugs it off.

use crate::route::{Adaptivity, RouteCtx, RouteError, Router};
use crate::state::RouteState;
use ddpm_topology::{Coord, FaultSet, Topology};
use rand::Rng;

/// How a switch picks among candidate output ports.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SelectionPolicy {
    /// Always the first candidate (deterministic given the algorithm).
    First,
    /// Uniformly random among all candidates — maximal route instability.
    Random,
    /// Random among productive candidates; misroute only when no
    /// productive port is available. The sensible default.
    ProductiveFirstRandom,
}

impl SelectionPolicy {
    /// Picks one candidate index, or `None` if the list is empty.
    pub fn pick<R: Rng + ?Sized>(
        self,
        candidates: &[crate::route::Candidate],
        rng: &mut R,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        match self {
            SelectionPolicy::First => Some(0),
            SelectionPolicy::Random => Some(rng.gen_range(0..candidates.len())),
            SelectionPolicy::ProductiveFirstRandom => {
                let productive = candidates.iter().filter(|c| c.productive).count();
                if productive > 0 {
                    Some(rng.gen_range(0..productive))
                } else {
                    Some(rng.gen_range(0..candidates.len()))
                }
            }
        }
    }

    /// Like [`SelectionPolicy::pick`], but aware of the routing
    /// algorithm: on turn-model (partially adaptive) routers, `Random`
    /// is upgraded to productive-first with random tiebreak.
    ///
    /// The turn rules make unproductive wandering unrecoverable — under
    /// west-first, a packet that drifts away from a westward destination
    /// may never turn back west, so uniform selection over *permitted*
    /// ports strands packets even on a healthy mesh (the E-RESIL
    /// livelock). Preferring permitted productive ports keeps the
    /// route-instability the experiments need while restoring the
    /// turn model's delivery guarantee. Deterministic and fully
    /// adaptive routers are unaffected: the former offer one candidate,
    /// the latter tolerate misroutes by construction (misroute budget).
    pub fn pick_for<R: Rng + ?Sized>(
        self,
        router: &Router,
        candidates: &[crate::route::Candidate],
        rng: &mut R,
    ) -> Option<usize> {
        let effective = match (self, router.adaptivity()) {
            (SelectionPolicy::Random, Adaptivity::PartiallyAdaptive) => {
                SelectionPolicy::ProductiveFirstRandom
            }
            _ => self,
        };
        effective.pick(candidates, rng)
    }
}

/// Traces the full path a packet takes from `src` to `dst`, without the
/// discrete-event machinery — the workhorse of the marking experiments,
/// which only need node sequences.
///
/// `max_hops` bounds the walk (livelock guard).
///
/// # Errors
/// [`RouteError::Blocked`] if the algorithm offers no admissible port;
/// [`RouteError::HopBudgetExhausted`] if `max_hops` runs out first.
#[allow(clippy::too_many_arguments)]
pub fn trace_path<R: Rng + ?Sized>(
    topo: &Topology,
    faults: &FaultSet,
    router: Router,
    policy: SelectionPolicy,
    rng: &mut R,
    src: &Coord,
    dst: &Coord,
    max_hops: u32,
) -> Result<Vec<Coord>, RouteError> {
    let ctx = RouteCtx::new(topo, faults);
    let mut state = RouteState::with_budget(router.misroute_budget());
    let mut cur = *src;
    let mut path = Vec::with_capacity(topo.min_hops(src, dst) as usize + 1);
    path.push(cur);
    while cur != *dst {
        if state.hops >= max_hops {
            return Err(RouteError::HopBudgetExhausted { at: cur });
        }
        let candidates = router.candidates(&ctx, &cur, dst, &state);
        let Some(i) = policy.pick_for(&router, &candidates, rng) else {
            return Err(RouteError::Blocked { at: cur });
        };
        let chosen = candidates[i];
        state.record_hop(chosen.productive, chosen.dir);
        cur = chosen.next;
        path.push(cur);
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::Candidate;
    use ddpm_topology::Direction;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn cand(productive: bool) -> Candidate {
        Candidate {
            next: Coord::new(&[0, 0]),
            dir: Direction::plus(0),
            productive,
        }
    }

    #[test]
    fn pick_empty_is_none() {
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(SelectionPolicy::Random.pick(&[], &mut rng), None);
    }

    #[test]
    fn productive_first_never_misroutes_when_possible() {
        let mut rng = SmallRng::seed_from_u64(0);
        let cands = vec![cand(true), cand(true), cand(false)];
        for _ in 0..100 {
            let i = SelectionPolicy::ProductiveFirstRandom
                .pick(&cands, &mut rng)
                .unwrap();
            assert!(i < 2);
        }
        // But misroutes when nothing productive remains.
        let only_misroutes = vec![cand(false), cand(false)];
        let i = SelectionPolicy::ProductiveFirstRandom
            .pick(&only_misroutes, &mut rng)
            .unwrap();
        assert!(i < 2);
    }

    #[test]
    fn first_policy_is_deterministic() {
        let mut rng = SmallRng::seed_from_u64(0);
        let cands = vec![cand(true), cand(true)];
        for _ in 0..10 {
            assert_eq!(SelectionPolicy::First.pick(&cands, &mut rng), Some(0));
        }
    }

    #[test]
    fn trace_path_self_delivery() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(0);
        let c = Coord::new(&[1, 1]);
        let path = trace_path(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &mut rng,
            &c,
            &c,
            16,
        )
        .unwrap();
        assert_eq!(path, vec![c]);
    }

    #[test]
    fn pick_for_upgrades_random_on_turn_model_routers() {
        let mut rng = SmallRng::seed_from_u64(3);
        let cands = vec![cand(true), cand(false), cand(false)];
        // West-first is partially adaptive: Random must always take the
        // productive port when one is permitted.
        for _ in 0..100 {
            let i = SelectionPolicy::Random
                .pick_for(&Router::WestFirst, &cands, &mut rng)
                .unwrap();
            assert_eq!(i, 0, "productive-first on turn-model routers");
        }
        // Fully adaptive routers keep genuine uniform selection.
        let picks: std::collections::HashSet<usize> = (0..100)
            .map(|_| {
                SelectionPolicy::Random
                    .pick_for(&Router::MinimalAdaptive, &cands, &mut rng)
                    .unwrap()
            })
            .collect();
        assert!(picks.len() > 1, "uniform selection untouched elsewhere");
    }

    #[test]
    fn west_first_random_delivers_on_a_healthy_mesh() {
        // Regression for the E-RESIL livelock: before pick_for, pure
        // Random selection under west-first stranded ~70% of packets on
        // a fault-free mesh. Every trace must now terminate delivered.
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let mut rng = SmallRng::seed_from_u64(7);
        for s in 0..64u32 {
            for d in [0u32, 7, 56, 63, 27] {
                if s == d {
                    continue;
                }
                let src = topo.coord(ddpm_topology::NodeId(s));
                let dst = topo.coord(ddpm_topology::NodeId(d));
                let path = trace_path(
                    &topo,
                    &faults,
                    Router::WestFirst,
                    SelectionPolicy::Random,
                    &mut rng,
                    &src,
                    &dst,
                    256,
                )
                .unwrap_or_else(|e| panic!("{src} -> {dst} failed: {e}"));
                assert_eq!(path.last(), Some(&dst));
            }
        }
    }

    #[test]
    fn random_selection_produces_route_instability() {
        // The §4.1 assumption: "a route from an attacker to a victim is
        // not stable due to the adaptive routing." Two runs of the same
        // (src, dst) under Random selection should (eventually) differ.
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let s = Coord::new(&[0, 0]);
        let d = Coord::new(&[7, 7]);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..20 {
            let p = trace_path(
                &topo,
                &faults,
                Router::MinimalAdaptive,
                SelectionPolicy::Random,
                &mut rng,
                &s,
                &d,
                64,
            )
            .unwrap();
            distinct.insert(p);
        }
        assert!(
            distinct.len() > 1,
            "adaptive routing with random selection must vary paths"
        );
        // While dimension-order is perfectly stable.
        let mut dor_paths = std::collections::HashSet::new();
        for _ in 0..20 {
            let p = trace_path(
                &topo,
                &faults,
                Router::DimensionOrder,
                SelectionPolicy::Random,
                &mut rng,
                &s,
                &d,
                64,
            )
            .unwrap();
            dor_paths.insert(p);
        }
        assert_eq!(dor_paths.len(), 1);
    }
}
