//! Routing algorithms for direct networks.
//!
//! Section 3 of the paper classifies routing by adaptivity and
//! illustrates the three classes on a 4×4 mesh (Fig. 2):
//!
//! * **deterministic** — XY / dimension-order routing: one fixed path;
//! * **partially adaptive** — turn-model routing (west-first): some
//!   turns are forbidden, others chosen at run time;
//! * **fully adaptive** — any direction, subject to a livelock-avoidance
//!   budget ("adaptive routing algorithms on the direct networks provide
//!   livelock avoidance (or, recovery) schemes", §4.1).
//!
//! Route *instability* under adaptive routing is the paper's central
//! motivation: path-recording traceback (PPM/DPM) assumes stable routes,
//! DDPM does not. The [`Router`] enum exposes all classes behind one
//! API so the experiment harness can sweep them.
//!
//! ## Orientation conventions (2-D mesh)
//!
//! Matching Fig. 2's compass vocabulary: **east** = `+d0`, **west** =
//! `−d0`, **north** = `+d1`, **south** = `−d1`. A 2-D coordinate is
//! `(x, y)` with `x` the east–west axis.

#![warn(missing_docs)]

pub mod adaptive;
pub mod dor;
pub mod route;
pub mod selection;
pub mod state;
pub mod turn_model;

pub use route::{Adaptivity, Candidate, RouteCtx, RouteError, Router};
pub use selection::{trace_path, SelectionPolicy};
pub use state::RouteState;
