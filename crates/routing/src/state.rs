//! Per-packet routing state.

use ddpm_topology::Direction;

/// Mutable routing state carried by a packet through the network.
///
/// Only the *switch-visible* routing bookkeeping lives here: hop count,
/// the misroute budget that implements livelock avoidance for the fully
/// adaptive router (§4.1), and a compact record of which directions the
/// packet has already travelled — what the turn-model algorithms need
/// to enforce their phase invariants (e.g. west-first may never turn
/// back west once it has moved in any other direction).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RouteState {
    /// Hops taken so far.
    pub hops: u32,
    /// Non-productive hops taken so far.
    pub misroutes_used: u32,
    /// Non-productive hops this packet may still take.
    pub misroute_budget: u32,
    /// Bitmask of dimensions travelled in the positive direction.
    pub moved_plus: u16,
    /// Bitmask of dimensions travelled in the negative direction.
    pub moved_minus: u16,
}

impl RouteState {
    /// Fresh state for a packet granted `misroute_budget` non-minimal
    /// hops.
    #[must_use]
    pub fn with_budget(misroute_budget: u32) -> Self {
        Self {
            misroute_budget,
            ..Self::default()
        }
    }

    /// True if the packet may still take a non-productive hop.
    #[must_use]
    pub fn can_misroute(&self) -> bool {
        self.misroutes_used < self.misroute_budget
    }

    /// Records a hop in direction `dir`; `productive` says whether it
    /// reduced the remaining distance.
    pub fn record_hop(&mut self, productive: bool, dir: Direction) {
        self.hops += 1;
        if !productive {
            self.misroutes_used += 1;
        }
        let bit = 1u16 << dir.dim();
        match dir.sign {
            ddpm_topology::Sign::Plus => self.moved_plus |= bit,
            ddpm_topology::Sign::Minus => self.moved_minus |= bit,
        }
    }

    /// True if the packet has already travelled in `dir`.
    #[must_use]
    pub fn has_moved(&self, dir: Direction) -> bool {
        let bit = 1u16 << dir.dim();
        match dir.sign {
            ddpm_topology::Sign::Plus => self.moved_plus & bit != 0,
            ddpm_topology::Sign::Minus => self.moved_minus & bit != 0,
        }
    }

    /// True if the packet has travelled in any direction *other than*
    /// `dir` — the west-first legality test: turning (back) to west is
    /// only allowed while west is the sole direction ever taken.
    #[must_use]
    pub fn moved_any_except(&self, dir: Direction) -> bool {
        let bit = 1u16 << dir.dim();
        let (same, other) = match dir.sign {
            ddpm_topology::Sign::Plus => (self.moved_plus, self.moved_minus),
            ddpm_topology::Sign::Minus => (self.moved_minus, self.moved_plus),
        };
        (same & !bit) != 0 || other != 0
    }

    /// True if the packet has travelled in any positive direction —
    /// negative-first's phase-transition test.
    #[must_use]
    pub fn moved_any_positive(&self) -> bool {
        self.moved_plus != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_accounting() {
        let mut s = RouteState::with_budget(2);
        assert!(s.can_misroute());
        s.record_hop(true, Direction::plus(0));
        assert_eq!(s.hops, 1);
        assert!(s.can_misroute());
        s.record_hop(false, Direction::plus(1));
        s.record_hop(false, Direction::minus(0));
        assert!(!s.can_misroute());
        assert_eq!(s.misroutes_used, 2);
        assert_eq!(s.hops, 3);
    }

    #[test]
    fn movement_history() {
        let mut s = RouteState::default();
        assert!(!s.has_moved(Direction::minus(0)));
        s.record_hop(true, Direction::minus(0)); // west
        assert!(s.has_moved(Direction::minus(0)));
        assert!(!s.moved_any_except(Direction::minus(0)));
        s.record_hop(true, Direction::plus(1)); // north
        assert!(s.moved_any_except(Direction::minus(0)));
        assert!(s.moved_any_positive());
    }

    #[test]
    fn moved_any_except_distinguishes_signs() {
        let mut s = RouteState::default();
        s.record_hop(true, Direction::plus(0)); // east
                                                // East counts as "other than west".
        assert!(s.moved_any_except(Direction::minus(0)));
        // But not as "other than east".
        assert!(!s.moved_any_except(Direction::plus(0)));
    }
}
