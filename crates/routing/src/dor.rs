//! Dimension-order (deterministic) routing.
//!
//! "XY routing forwards packets along rows first and then along columns
//! later. Just one turn is allowed." (§3, Fig. 2(a)). Generalised to n
//! dimensions: correct dimension 0 fully, then dimension 1, and so on —
//! e-cube routing on the hypercube.
//!
//! The algorithm offers exactly one output port; if that port's link is
//! faulty the packet is **blocked**, reproducing Fig. 2(b)'s observation
//! that "XY routing cannot forward any packets because it cannot use the
//! right-side links first."

use crate::route::{Candidate, RouteCtx};
use ddpm_topology::{Coord, Direction, Sign, Topology};

/// The single dimension-order candidate, or empty if its link is faulty.
#[must_use]
pub fn candidates(ctx: &RouteCtx<'_>, cur: &Coord, dst: &Coord) -> Vec<Candidate> {
    let mut out = Vec::with_capacity(1);
    candidates_into(ctx, cur, dst, &mut out);
    out
}

/// Allocation-free form of [`candidates`]; appends into `out`.
pub fn candidates_into(ctx: &RouteCtx<'_>, cur: &Coord, dst: &Coord, out: &mut Vec<Candidate>) {
    let Some(dir) = next_direction(ctx.topo, cur, dst) else {
        return;
    };
    let Some(next) = ctx.topo.neighbor(cur, dir) else {
        return;
    };
    if ctx.faults.is_faulty(ctx.topo, cur, &next) {
        return;
    }
    out.push(Candidate {
        next,
        dir,
        productive: true,
    });
}

/// The unique dimension-order output direction for `cur → dst`, or
/// `None` if already delivered.
#[must_use]
pub fn next_direction(topo: &Topology, cur: &Coord, dst: &Coord) -> Option<Direction> {
    for d in 0..topo.ndims() {
        if cur.get(d) == dst.get(d) {
            continue;
        }
        let sign = match topo {
            Topology::Mesh(_) => {
                if dst.get(d) > cur.get(d) {
                    Sign::Plus
                } else {
                    Sign::Minus
                }
            }
            Topology::Torus(t) => {
                let k = t.dims()[d] as i16;
                let fwd = (dst.get(d) - cur.get(d)).rem_euclid(k);
                // Shortest ring direction; ties (fwd == k/2) go Plus.
                if i32::from(fwd) * 2 <= i32::from(k) {
                    Sign::Plus
                } else {
                    Sign::Minus
                }
            }
            Topology::Hypercube(_) => Sign::Plus, // bit toggle
        };
        return Some(Direction { dim: d as u8, sign });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::RouteCtx;
    use crate::state::RouteState;
    use crate::Router;
    use ddpm_topology::FaultSet;

    fn walk(topo: &Topology, faults: &FaultSet, src: &Coord, dst: &Coord) -> Option<Vec<Coord>> {
        let ctx = RouteCtx::new(topo, faults);
        let state = RouteState::default();
        let mut cur = *src;
        let mut path = vec![cur];
        for _ in 0..=topo.diameter() {
            if cur == *dst {
                return Some(path);
            }
            let cands = Router::DimensionOrder.candidates(&ctx, &cur, dst, &state);
            cur = cands.first()?.next;
            path.push(cur);
        }
        (cur == *dst).then_some(path)
    }

    #[test]
    fn xy_routes_rows_then_columns() {
        // From (0,2) to (3,0) on a 4×4 mesh: X (dim 0) corrected first.
        let topo = Topology::mesh2d(4);
        let path = walk(
            &topo,
            &FaultSet::none(),
            &Coord::new(&[0, 2]),
            &Coord::new(&[3, 0]),
        )
        .unwrap();
        assert_eq!(
            path,
            vec![
                Coord::new(&[0, 2]),
                Coord::new(&[1, 2]),
                Coord::new(&[2, 2]),
                Coord::new(&[3, 2]),
                Coord::new(&[3, 1]),
                Coord::new(&[3, 0]),
            ]
        );
    }

    #[test]
    fn dor_is_minimal_everywhere() {
        for topo in [
            Topology::mesh2d(4),
            Topology::torus(&[5, 4]),
            Topology::hypercube(4),
        ] {
            let faults = FaultSet::none();
            for s in topo.all_nodes() {
                for d in topo.all_nodes() {
                    let path = walk(&topo, &faults, &s, &d)
                        .unwrap_or_else(|| panic!("{topo}: blocked {s}->{d}"));
                    assert_eq!(
                        path.len() as u32 - 1,
                        topo.min_hops(&s, &d),
                        "{topo}: non-minimal {s}->{d}"
                    );
                }
            }
        }
    }

    #[test]
    fn torus_prefers_wraparound_when_shorter() {
        let topo = Topology::torus(&[8, 8]);
        let path = walk(
            &topo,
            &FaultSet::none(),
            &Coord::new(&[7, 0]),
            &Coord::new(&[1, 0]),
        )
        .unwrap();
        // 7 -> 0 -> 1 across the seam (2 hops), not 7->6->...->1 (6 hops).
        assert_eq!(path.len(), 3);
        assert_eq!(path[1], Coord::new(&[0, 0]));
    }

    #[test]
    fn blocked_by_fault_on_mandatory_link() {
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        // Fail the east link out of (0,0); XY to (2,0) must use it.
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let ctx = RouteCtx::new(&topo, &faults);
        let cands = candidates(&ctx, &Coord::new(&[0, 0]), &Coord::new(&[2, 0]));
        assert!(cands.is_empty(), "XY must block, not detour");
    }

    #[test]
    fn ecube_fixes_lowest_dimension_first() {
        let topo = Topology::hypercube(3);
        let path = walk(
            &topo,
            &FaultSet::none(),
            &Coord::new(&[1, 0, 1]),
            &Coord::new(&[0, 1, 0]),
        )
        .unwrap();
        assert_eq!(
            path,
            vec![
                Coord::new(&[1, 0, 1]),
                Coord::new(&[0, 0, 1]),
                Coord::new(&[0, 1, 1]),
                Coord::new(&[0, 1, 0]),
            ]
        );
    }
}
