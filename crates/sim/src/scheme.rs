//! The two-sided marking-scheme plugin API.
//!
//! [`Marker`] (in [`crate::mark`]) is the *switch side* of a traceback
//! scheme: what every switch writes into the 16-bit marking field as a
//! packet travels. This module adds the *victim side* and ties the two
//! together:
//!
//! * [`Collector`] — victim-side state fed one marking field per
//!   delivered packet ([`Collector::observe`]), queryable online for the
//!   current best attribution ([`Collector::attribute`]).
//! * [`Attribution`] — the shared result type every scheme answers
//!   with: a candidate source set plus a confidence score, replacing the
//!   per-scheme ad-hoc `identify()` shapes.
//! * [`MarkingScheme`] — the full plugin: a [`Marker`] that also
//!   declares its marking-field bit budget, its per-hop switch cost and
//!   how to build a [`Collector`] for a given victim.
//! * [`SchemeSpec`] — the data-only scheme selector carried by
//!   [`crate::SimConfig`] and scenario files; the concrete scheme
//!   objects live in `ddpm-core` (which depends on this crate, not the
//!   other way round), built via `ddpm_core::scheme::build_scheme`.
//!
//! The contract [`Collector::attribute`] must honour — and the one the
//! cross-scheme property test pins — is: the candidate set either
//! contains every true source whose packets were observed, or the
//! scheme's documented ambiguity applies (e.g. a Tracemax path longer
//! than the field can record, a DPM signature produced by a non-minimal
//! adaptive path). A scheme may over-approximate (extra candidates cost
//! false-attribution rate, measured by the bake-off) but silently
//! dropping a true source is a bug.

use crate::mark::Marker;
use ddpm_net::{MarkingField, Packet};
use ddpm_topology::{NodeId, Topology};

/// Confidence at or above which an attribution counts as a
/// *conviction* — the victim would act (quarantine, block) on it.
///
/// The Byzantine-robustness contract is phrased against this line: a
/// minority of polluted marks may smuggle a framed innocent into the
/// candidate list, but quorum filtering plus fail-closed rejection must
/// keep the confidence below it, so pollution degrades confidence
/// instead of flipping the attribution.
pub const CONVICTION_CONFIDENCE: f64 = 0.5;

/// A victim-side attribution answer, shared by every scheme.
///
/// `candidates` is the set of nodes the scheme currently implicates as
/// packet sources, deduplicated and sorted by node id so results are
/// deterministic and comparable across runs. `confidence` in `[0, 1]`
/// is the scheme's own estimate of how much of the observed evidence
/// backs the candidate set (each scheme documents its exact semantics —
/// decoded fraction for DDPM/Tracemax, matched-signature fraction for
/// DPM, reconstruction completeness for PPM).
#[derive(Clone, Debug, PartialEq)]
pub struct Attribution {
    /// Implicated source nodes, sorted ascending, no duplicates.
    pub candidates: Vec<NodeId>,
    /// Evidence-backed confidence in `[0, 1]`; `0.0` means "no answer".
    pub confidence: f64,
}

impl Attribution {
    /// The empty answer: no candidates, zero confidence.
    #[must_use]
    pub fn none() -> Self {
        Self {
            candidates: Vec::new(),
            confidence: 0.0,
        }
    }

    /// A single-source answer with full confidence — the shape the
    /// paper's per-packet DDPM `identify()` produces.
    #[must_use]
    pub fn exact(node: NodeId) -> Self {
        Self {
            candidates: vec![node],
            confidence: 1.0,
        }
    }

    /// An answer from an arbitrary candidate collection: sorts,
    /// deduplicates and clamps `confidence` into `[0, 1]`.
    #[must_use]
    pub fn from_candidates(mut candidates: Vec<NodeId>, confidence: f64) -> Self {
        candidates.sort_unstable_by_key(|n| n.0);
        candidates.dedup();
        Self {
            candidates,
            confidence: confidence.clamp(0.0, 1.0),
        }
    }

    /// True when exactly one candidate remains — the scheme has
    /// *identified* a source rather than narrowed a set.
    #[must_use]
    pub fn is_identified(&self) -> bool {
        self.candidates.len() == 1
    }

    /// The identified source when [`Attribution::is_identified`], else
    /// `None` — the adapter for call sites migrating off the deprecated
    /// `Option<NodeId>`-shaped `identify()` signatures.
    #[must_use]
    pub fn single(&self) -> Option<NodeId> {
        match self.candidates.as_slice() {
            [one] => Some(*one),
            _ => None,
        }
    }

    /// Does the candidate set implicate `node`?
    #[must_use]
    pub fn implicates(&self, node: NodeId) -> bool {
        self.candidates.binary_search_by_key(&node.0, |n| n.0).is_ok()
    }

    /// Does this attribution *convict* `node` — implicate it with
    /// confidence at or above [`CONVICTION_CONFIDENCE`]?
    #[must_use]
    pub fn convicts(&self, node: NodeId) -> bool {
        self.confidence >= CONVICTION_CONFIDENCE && self.implicates(node)
    }

    /// Quorum/outlier-filtered attribution from a support census.
    ///
    /// `support` maps candidate → packets backing it; `observed` is the
    /// total packets the collector was fed (including ones it could not
    /// decode or refused to trust). Candidates survive only with
    /// absolute support ≥ 2 **and** at least a quarter of the strongest
    /// candidate's support — so isolated polluted marks (a corrupted
    /// field, a `2^-t` tag-forgery fluke) are outliers that drop out
    /// rather than co-equal suspects. Confidence is the kept fraction:
    /// `kept_support / observed`, which a minority of polluted or
    /// rejected marks *degrades* instead of flipping.
    ///
    /// Below four observed packets there is no quorum to speak of and
    /// every candidate is kept — preserving the paper's single-packet
    /// DDPM identification for low-volume victims.
    #[must_use]
    pub fn from_census<I>(support: I, observed: u64) -> Self
    where
        I: IntoIterator<Item = (NodeId, u64)>,
    {
        let entries: Vec<(NodeId, u64)> = support.into_iter().collect();
        let top = entries.iter().map(|&(_, c)| c).max().unwrap_or(0);
        if top == 0 || observed == 0 {
            return Self::none();
        }
        let floor = if observed >= 4 {
            2.max(top.div_ceil(4))
        } else {
            1
        };
        let mut kept_support = 0u64;
        let mut candidates = Vec::new();
        for (node, count) in entries {
            if count >= floor {
                kept_support += count;
                candidates.push(node);
            }
        }
        Self::from_candidates(candidates, kept_support as f64 / observed as f64)
    }
}

/// Victim-side collection state for one scheme at one victim.
///
/// Built by [`MarkingScheme::collector`]; fed the marking field of each
/// packet the victim receives, in delivery order. [`Collector::attribute`]
/// may be called at any point (it is *online*), and takes `&mut self` so
/// implementations can cache expensive work — e.g. PPM graph
/// reconstruction reuses its last result until a new mark arrives.
pub trait Collector {
    /// Ingests the marking field of one delivered packet.
    fn observe(&mut self, mf: MarkingField);

    /// Ingests one delivered packet with its full header visible.
    ///
    /// Authenticated collectors need more than the 16 marking bits —
    /// the keyed tag binds the source/destination addresses and the
    /// residual TTL — so the driver feeds whole packets through this
    /// entry point. The default forwards to [`Collector::observe`];
    /// schemes that only read the field need not override it.
    fn observe_packet(&mut self, pkt: &Packet) {
        self.observe(pkt.header.identification);
    }

    /// The current best attribution given everything observed so far.
    fn attribute(&mut self) -> Attribution;

    /// How many packets have been observed.
    fn observed(&self) -> u64;

    /// Packets whose marks this collector refused to trust (failed tag
    /// verification — the fail-closed count). `0` for unauthenticated
    /// schemes, which trust everything.
    fn rejected(&self) -> u64 {
        0
    }
}

/// Per-hop switch cost of a scheme, for the bake-off's cost column.
///
/// These are *model* counts read off each scheme's `on_forward` — the
/// work a hardware switch would add to its pipeline per forwarded
/// packet — not measured host cycles.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HopCost {
    /// Marking-field sub-field writes per hop (worst case).
    pub field_writes: u32,
    /// Arithmetic/hash operations per hop (adds, xors, mixes).
    pub arith_ops: u32,
    /// Whether the hop draws randomness (probabilistic marking).
    pub probabilistic: bool,
}

impl HopCost {
    /// Compact rendering for report tables, e.g. `1w+2a+rng`.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut s = format!("{}w+{}a", self.field_writes, self.arith_ops);
        if self.probabilistic {
            s.push_str("+rng");
        }
        s
    }
}

/// The full two-sided plugin: switch-side marking plus victim-side
/// collection, with budget/cost introspection.
///
/// `MarkingScheme: Marker` means any scheme slots directly into
/// [`crate::Simulation::new`]'s `&dyn Marker` parameter (trait
/// upcasting), so the simulator core stays scheme-agnostic. `Send` is
/// a supertrait so a boxed scheme can live inside a service tenant
/// that migrates between worker threads; every shipped scheme is
/// already `Send` (their state is plain data behind mutexes).
pub trait MarkingScheme: Marker + Send {
    /// How many of the 16 marking-field bits the scheme actually uses
    /// on this topology (its MF-bit budget).
    fn mf_bits(&self) -> u32;

    /// The per-hop switch cost model.
    fn per_hop_cost(&self) -> HopCost;

    /// Builds the victim-side collector for packets delivered to
    /// `victim` on `topo`.
    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a>;
}

impl Marker for Box<dyn MarkingScheme> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn on_inject(
        &self,
        pkt: &mut Packet,
        src: &ddpm_topology::Coord,
        env: &crate::mark::MarkEnv<'_>,
    ) {
        (**self).on_inject(pkt, src, env);
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &ddpm_topology::Coord,
        next: &ddpm_topology::Coord,
        env: &crate::mark::MarkEnv<'_>,
        rng: &mut rand::rngs::SmallRng,
    ) {
        (**self).on_forward(pkt, cur, next, env, rng);
    }

    fn on_deliver(
        &self,
        pkt: &mut Packet,
        dest: &ddpm_topology::Coord,
        env: &crate::mark::MarkEnv<'_>,
        rng: &mut rand::rngs::SmallRng,
    ) {
        (**self).on_deliver(pkt, dest, env, rng);
    }
}

/// Boxed schemes are schemes, so generic wrappers (the `auth-*`
/// discipline in `ddpm-core`, the adversary model in `ddpm-attack`) can
/// compose over a factory-built `Box<dyn MarkingScheme>` without a
/// monomorphized arm per concrete type.
impl MarkingScheme for Box<dyn MarkingScheme> {
    fn mf_bits(&self) -> u32 {
        (**self).mf_bits()
    }

    fn per_hop_cost(&self) -> HopCost {
        (**self).per_hop_cost()
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        (**self).collector(topo, victim)
    }
}

/// [`NoMarking`]'s collector: counts packets, attributes nothing.
struct NullCollector {
    observed: u64,
}

impl Collector for NullCollector {
    fn observe(&mut self, _mf: MarkingField) {
        self.observed += 1;
    }

    fn attribute(&mut self) -> Attribution {
        Attribution::none()
    }

    fn observed(&self) -> u64 {
        self.observed
    }
}

impl MarkingScheme for crate::mark::NoMarking {
    fn mf_bits(&self) -> u32 {
        0
    }

    fn per_hop_cost(&self) -> HopCost {
        HopCost::default()
    }

    fn collector<'a>(&'a self, _topo: &'a Topology, _victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(NullCollector { observed: 0 })
    }
}

/// The data-only scheme selector: which traceback scheme a run uses.
///
/// Mirrors [`crate::Engine`]'s parse/display discipline so scenario
/// files and CLI flags share one spelling set. The concrete scheme
/// objects are built from this in `ddpm-core` (`scheme::build_scheme`),
/// which owns the per-topology feasibility checks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchemeSpec {
    /// No marking, no attribution — the baseline.
    None,
    /// Deterministic distance-based packet marking (the paper's scheme).
    Ddpm,
    /// Deterministic packet marking: per-switch signature bits (Savage
    /// DPM lineage, §4.3's foil).
    Dpm,
    /// Probabilistic edge marking (Fig. 3(a) lineage).
    PpmEdge,
    /// Probabilistic XOR-compressed edge marking (Fig. 3(b) lineage).
    PpmXor,
    /// Tracemax-style deterministic per-hop path recording
    /// (arXiv 2004.09327 lineage): every switch appends its outgoing
    /// direction, the victim replays the whole path from one packet.
    Tracemax,
    /// DDPM under the split-trust keyed-tag wrapper: tag bits carved
    /// from the spare marking-field budget, fail-closed collection.
    AuthDdpm,
    /// DPM under the keyed-tag wrapper (slot walk confined to the
    /// remaining low bits).
    AuthDpm,
    /// Edge PPM under the keyed-tag wrapper.
    AuthPpmEdge,
    /// XOR PPM under the keyed-tag wrapper.
    AuthPpmXor,
    /// Tracemax under the keyed-tag wrapper (path-recording capacity
    /// shrunk to free the tag bits).
    AuthTracemax,
}

impl SchemeSpec {
    /// Every selectable scheme, in canonical (report-table) order:
    /// unauthenticated baselines first, then their `auth-*` twins.
    pub const ALL: [SchemeSpec; 11] = [
        SchemeSpec::None,
        SchemeSpec::Ddpm,
        SchemeSpec::Dpm,
        SchemeSpec::PpmEdge,
        SchemeSpec::PpmXor,
        SchemeSpec::Tracemax,
        SchemeSpec::AuthDdpm,
        SchemeSpec::AuthDpm,
        SchemeSpec::AuthPpmEdge,
        SchemeSpec::AuthPpmXor,
        SchemeSpec::AuthTracemax,
    ];

    /// Parses a scheme name as written in scenario files.
    ///
    /// # Errors
    /// Unknown names report the accepted spellings.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "none" => Ok(SchemeSpec::None),
            "ddpm" => Ok(SchemeSpec::Ddpm),
            "dpm" => Ok(SchemeSpec::Dpm),
            "ppm-edge" => Ok(SchemeSpec::PpmEdge),
            "ppm-xor" => Ok(SchemeSpec::PpmXor),
            "tracemax" => Ok(SchemeSpec::Tracemax),
            "auth-ddpm" => Ok(SchemeSpec::AuthDdpm),
            "auth-dpm" => Ok(SchemeSpec::AuthDpm),
            "auth-ppm-edge" => Ok(SchemeSpec::AuthPpmEdge),
            "auth-ppm-xor" => Ok(SchemeSpec::AuthPpmXor),
            "auth-tracemax" => Ok(SchemeSpec::AuthTracemax),
            other => Err(format!(
                "unknown scheme `{other}` (none|ddpm|dpm|ppm-edge|ppm-xor|tracemax\
                 |auth-ddpm|auth-dpm|auth-ppm-edge|auth-ppm-xor|auth-tracemax)"
            )),
        }
    }

    /// The canonical name — matches the scheme's [`Marker::name`].
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SchemeSpec::None => "none",
            SchemeSpec::Ddpm => "ddpm",
            SchemeSpec::Dpm => "dpm",
            SchemeSpec::PpmEdge => "ppm-edge",
            SchemeSpec::PpmXor => "ppm-xor",
            SchemeSpec::Tracemax => "tracemax",
            SchemeSpec::AuthDdpm => "auth-ddpm",
            SchemeSpec::AuthDpm => "auth-dpm",
            SchemeSpec::AuthPpmEdge => "auth-ppm-edge",
            SchemeSpec::AuthPpmXor => "auth-ppm-xor",
            SchemeSpec::AuthTracemax => "auth-tracemax",
        }
    }

    /// True for the keyed-tag (`auth-*`) wrappers.
    #[must_use]
    pub fn is_auth(self) -> bool {
        self.base() != self
    }

    /// The unauthenticated scheme underneath an `auth-*` wrapper;
    /// identity for everything else.
    #[must_use]
    pub fn base(self) -> SchemeSpec {
        match self {
            SchemeSpec::AuthDdpm => SchemeSpec::Ddpm,
            SchemeSpec::AuthDpm => SchemeSpec::Dpm,
            SchemeSpec::AuthPpmEdge => SchemeSpec::PpmEdge,
            SchemeSpec::AuthPpmXor => SchemeSpec::PpmXor,
            SchemeSpec::AuthTracemax => SchemeSpec::Tracemax,
            other => other,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mark::NoMarking;

    #[test]
    fn attribution_constructors_normalise() {
        let a = Attribution::from_candidates(vec![NodeId(7), NodeId(3), NodeId(7)], 1.7);
        assert_eq!(a.candidates, vec![NodeId(3), NodeId(7)]);
        assert!((a.confidence - 1.0).abs() < f64::EPSILON);
        assert!(!a.is_identified());
        assert_eq!(a.single(), None);
        assert!(a.implicates(NodeId(3)));
        assert!(!a.implicates(NodeId(5)));

        let e = Attribution::exact(NodeId(9));
        assert!(e.is_identified());
        assert_eq!(e.single(), Some(NodeId(9)));

        let n = Attribution::none();
        assert!(n.candidates.is_empty());
        assert_eq!(n.single(), None);
        assert!(!n.implicates(NodeId(0)));
    }

    #[test]
    fn no_marking_scheme_observes_but_never_attributes() {
        let topo = Topology::mesh2d(4);
        let scheme = NoMarking;
        assert_eq!(scheme.mf_bits(), 0);
        assert_eq!(scheme.per_hop_cost(), HopCost::default());
        assert_eq!(scheme.per_hop_cost().describe(), "0w+0a");
        let mut c = scheme.collector(&topo, NodeId(0));
        c.observe(MarkingField::new(0xBEEF));
        c.observe(MarkingField::zero());
        assert_eq!(c.observed(), 2);
        assert_eq!(c.attribute(), Attribution::none());
    }

    #[test]
    fn scheme_spec_parses_and_round_trips() {
        for spec in SchemeSpec::ALL {
            assert_eq!(SchemeSpec::parse(spec.as_str()), Ok(spec));
        }
        let err = SchemeSpec::parse("pmm").unwrap_err();
        assert!(err.contains("unknown scheme `pmm`"), "{err}");
        assert!(err.contains("ppm-edge"), "{err}");
    }

    #[test]
    fn auth_variants_name_their_base() {
        assert_eq!(SchemeSpec::AuthDdpm.base(), SchemeSpec::Ddpm);
        assert_eq!(SchemeSpec::AuthTracemax.base(), SchemeSpec::Tracemax);
        assert!(SchemeSpec::AuthDpm.is_auth());
        assert!(!SchemeSpec::Dpm.is_auth());
        assert_eq!(SchemeSpec::Ddpm.base(), SchemeSpec::Ddpm);
        for spec in SchemeSpec::ALL {
            assert_eq!(
                spec.is_auth(),
                spec.as_str().starts_with("auth-"),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn census_quorum_filters_outliers_but_keeps_co_sources() {
        // Three zombies at similar volume plus one polluted singleton:
        // the singleton is an outlier, the zombies all survive.
        let a = Attribution::from_census(
            vec![
                (NodeId(3), 40),
                (NodeId(9), 35),
                (NodeId(12), 30),
                (NodeId(5), 1),
            ],
            110,
        );
        assert_eq!(a.candidates, vec![NodeId(3), NodeId(9), NodeId(12)]);
        assert!((a.confidence - 105.0 / 110.0).abs() < 1e-9);
        assert!(a.convicts(NodeId(9)));
        assert!(!a.implicates(NodeId(5)));

        // A pair of laundered forgeries against a strong true source:
        // below a quarter of the top candidate, so still filtered.
        let a = Attribution::from_census(vec![(NodeId(1), 60), (NodeId(8), 2)], 80);
        assert_eq!(a.candidates, vec![NodeId(1)]);

        // Nothing but pollution: the candidate may survive the floor but
        // confidence collapses — degraded, not flipped.
        let a = Attribution::from_census(vec![(NodeId(8), 2)], 300);
        assert!(a.confidence < CONVICTION_CONFIDENCE);
        assert!(!a.convicts(NodeId(8)));

        // Single-packet identification (the paper's DDPM claim) is
        // preserved below the quorum volume.
        let a = Attribution::from_census(vec![(NodeId(4), 1)], 1);
        assert_eq!(a.candidates, vec![NodeId(4)]);

        // Empty census: the empty answer.
        assert_eq!(Attribution::from_census(Vec::new(), 10), Attribution::none());
    }

    #[test]
    fn observe_packet_defaults_to_the_field() {
        use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let mut c = NoMarking.collector(&topo, NodeId(0));
        let pkt = Packet {
            id: PacketId(0),
            header: Ipv4Header::new(map.ip_of(NodeId(1)), map.ip_of(NodeId(2)), Protocol::Udp, 64),
            l4: L4::udp(1, 2),
            true_source: NodeId(1),
            dest_node: NodeId(2),
            class: TrafficClass::Attack,
        };
        c.observe_packet(&pkt);
        assert_eq!(c.observed(), 1);
        assert_eq!(c.rejected(), 0);
    }

    #[test]
    fn scheme_upcasts_to_marker() {
        // The whole point of `MarkingScheme: Marker`: a boxed scheme
        // plugs into any `&dyn Marker` slot without an adapter.
        let boxed: Box<dyn MarkingScheme> = Box::new(NoMarking);
        let marker: &dyn Marker = &*boxed;
        assert_eq!(marker.name(), "none");
    }
}
