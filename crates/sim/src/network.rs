//! The simulation engine.

use crate::config::SimConfig;
use crate::event::{Event, EventKind, EventQueue};
use crate::filter::{Filter, NoFilter};
use crate::invariant::{InvariantChecker, Violation};
use crate::mark::{MarkEnv, Marker};
use crate::snapshot::{FlightSnap, SimSnapshot, SlotSnap};
use crate::stats::{FaultStats, SimStats};
use crate::time::SimTime;
use crate::watchdog::WatchdogStats;
use ddpm_net::{Packet, PacketId, TrafficClass};
use ddpm_routing::{Candidate, RouteCtx, RouteState, Router, SelectionPolicy};
use ddpm_telemetry::{EventKind as TelEvent, PacketEvent, RetryKind, Telemetry, TelemetryConfig};
use ddpm_topology::{
    Coord, Direction, FaultEvent, FaultSchedule, FaultSet, NodeId, Partition, Topology,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashSet, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Why a packet was discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Output buffer full — congestion loss, the resource DDoS exhausts.
    BufferOverflow,
    /// TTL reached zero.
    TtlExpired,
    /// Routing offered no admissible output port (Fig. 2 blocking).
    Blocked,
    /// Per-packet hop limit hit (livelock guard).
    HopLimit,
    /// Discarded by an installed mitigation filter.
    Filtered,
    /// Header damaged in transit; checksum verification failed at the
    /// receiving switch.
    Corrupted,
    /// Lost fail-stop at a switch that failed: the packet was queued at
    /// the switch or committed to one of its links when it died.
    SwitchDown,
    /// Lost on the wire of a link that failed mid-flight.
    LinkDown,
    /// Stranded by faults with no admissible output port; the reroute
    /// retry budget ([`crate::RetryPolicy`]) ran out before the network
    /// healed.
    RerouteExhausted,
    /// The packet's source switch was down at injection time and the
    /// injection retry budget ran out.
    SourceDown,
    /// The liveness watchdog escalated: the packet exceeded
    /// [`crate::WatchdogConfig::max_age`], was rerouted onto the escape
    /// router, and still failed to arrive within another `max_age`.
    LivelockEscaped,
    /// The liveness watchdog declared a network-wide deadlock (no
    /// delivery or forward for [`crate::WatchdogConfig::stall_cycles`])
    /// and dropped every live packet — a typed outcome where a lesser
    /// simulator would hang.
    DeadlockVictim,
}

impl DropReason {
    /// Stable identifier used in telemetry `drop` events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BufferOverflow => "buffer_overflow",
            Self::TtlExpired => "ttl_expired",
            Self::Blocked => "blocked",
            Self::HopLimit => "hop_limit",
            Self::Filtered => "filtered",
            Self::Corrupted => "corrupted",
            Self::SwitchDown => "switch_down",
            Self::LinkDown => "link_down",
            Self::RerouteExhausted => "reroute_exhausted",
            Self::SourceDown => "source_down",
            Self::LivelockEscaped => "livelock_escaped",
            Self::DeadlockVictim => "deadlock_victim",
        }
    }
}

/// A packet that reached its destination compute node.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet as received — its header carries the final marking
    /// field the victim analyses.
    pub packet: Packet,
    /// When the source compute node injected it.
    pub injected_at: SimTime,
    /// When the destination compute node received it.
    pub delivered_at: SimTime,
    /// Switch-to-switch hops taken.
    pub hops: u32,
    /// Full node path, present when [`SimConfig::record_paths`] is set.
    pub path: Option<Vec<NodeId>>,
}

impl Delivered {
    /// End-to-end latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }
}

struct InFlight {
    packet: Packet,
    state: RouteState,
    /// Per-packet RNG stream, seeded from `(SimConfig::seed, handle)`.
    /// Giving every packet its own stream (instead of one global RNG
    /// consumed in processing order) makes each packet's random
    /// decisions independent of how *other* packets' events interleave
    /// — the property that lets the sharded engine reproduce the serial
    /// run bit-for-bit.
    rng: SmallRng,
    injected_at: SimTime,
    path: Vec<NodeId>,
    /// Injection attempts made against a downed source switch.
    inject_attempts: u32,
    /// Reroute retries consumed while stranded (cumulative per packet).
    reroutes: u32,
    /// True if injected while at least one fault was active (feeds the
    /// fault-window delivery ratio).
    under_fault: bool,
    /// True once the injection was counted (`injected` incremented) —
    /// only launched packets participate in conservation and watchdog
    /// accounting.
    launched: bool,
    /// True once the watchdog rerouted the packet onto the escape
    /// router.
    escaped: bool,
    /// Cycle of the escape (starts the second `max_age` grace period).
    escaped_at: u64,
    /// Cycle of the packet's most recent hop (injection counts as hop
    /// zero). Recent hops with an over-age packet mean livelock; a long
    /// hop drought means starvation — and, after an escape, a drought
    /// is what escalates to the typed drop (a packet still hopping
    /// under the escape router is converging and is left alone).
    last_hop_at: u64,
    /// Last switch that handled the packet — where watchdog actions and
    /// drops are attributed.
    last_node: u32,
    /// Marking-field value when the packet was committed to the wire;
    /// the checker asserts links never rewrite it.
    wire_mf: u16,
}

/// A packet's cold payload: the structured fields (header, routing
/// state, RNG, recorded path) an event touches at most a handful of
/// times. Boxed behind one pointer per slot so the dead majority of a
/// long flood costs only the hot scalars below.
struct PktCold {
    packet: Packet,
    state: RouteState,
    rng: SmallRng,
    path: Vec<NodeId>,
}

/// [`Pkts::flags`] bits.
const F_UNDER_FAULT: u8 = 1;
const F_LAUNCHED: u8 = 1 << 1;
const F_ESCAPED: u8 = 1 << 2;

/// Panic message shared by every accessor that requires residency.
const RESIDENT: &str = "packet resident in this shard";

/// Fabrics up to this many nodes get a dense node → [`Coord`] table on
/// the simulation (the per-hop `coord()` divisions dominate the release
/// hot path otherwise). Covers every Table 3 maximum (2^16 nodes) at
/// ~2 MiB; larger fabrics fall back to computing so memory stays
/// bounded by the O(N) port array alone.
const COORD_CACHE_MAX_NODES: u64 = 1 << 17;

/// In-flight packet storage, struct-of-arrays: the global packet handle
/// indexes a set of parallel dense arrays. The scalars the event loop
/// and watchdog sweeps actually read (flags, timestamps, last switch,
/// wire marking field) live in their own cache-friendly arrays; the
/// structured payload lives in one boxed [`PktCold`] per *resident*
/// packet, reclaimed the moment the packet is delivered or dropped. At
/// Table 3 scale that is the difference between a dead slot costing a
/// full `InFlight` and costing ~50 bytes of scalars.
///
/// Handle indices are never recycled — the index doubles as the
/// canonical `pkey` and the per-packet RNG seed — and the slot's
/// generation bump on death turns any later access into a detectable
/// stale-handle event, exactly like the slab it replaces. In the
/// sharded engine a slot is empty while the packet is owned by another
/// shard (handles are global, storage is per-shard).
struct Pkts {
    /// Per-slot free counts (bumped on death, untouched by handoffs) —
    /// the generation half of the old slab's handle check.
    gens: Vec<u32>,
    /// Packed `F_*` booleans. Occupancy itself is `cold[i].is_some()`.
    flags: Vec<u8>,
    /// Marking-field value committed to the wire (checker invariant).
    wire_mf: Vec<u16>,
    /// Last switch that handled the packet (`u32::MAX` pre-injection).
    last_node: Vec<u32>,
    /// Injection attempts made against a downed source switch.
    inject_attempts: Vec<u32>,
    /// Reroute retries consumed while stranded.
    reroutes: Vec<u32>,
    injected_at: Vec<SimTime>,
    /// Cycle of the most recent hop (injection counts as hop zero).
    last_hop_at: Vec<u64>,
    /// Cycle of the watchdog escape, when `F_ESCAPED` is set.
    escaped_at: Vec<u64>,
    cold: Vec<Option<Box<PktCold>>>,
    /// Slots currently holding a cold record.
    resident: usize,
    /// High-water mark of [`Pkts::bytes`] — the arena term of the
    /// peak-memory telemetry ([`SimStats::peak_arena_bytes`]).
    peak_bytes: u64,
}

impl Pkts {
    fn new() -> Self {
        Self {
            gens: Vec::new(),
            flags: Vec::new(),
            wire_mf: Vec::new(),
            last_node: Vec::new(),
            inject_attempts: Vec::new(),
            reroutes: Vec::new(),
            injected_at: Vec::new(),
            last_hop_at: Vec::new(),
            escaped_at: Vec::new(),
            cold: Vec::new(),
            resident: 0,
            peak_bytes: 0,
        }
    }

    fn len(&self) -> usize {
        self.gens.len()
    }

    /// Approximate heap footprint of the arena in bytes: the dense hot
    /// arrays plus one boxed cold record per resident packet (recorded
    /// path buffers excluded — empty unless `record_paths`).
    fn bytes(&self) -> u64 {
        use std::mem::size_of;
        let per_slot = (4 * size_of::<u32>()
            + size_of::<u8>()
            + size_of::<u16>()
            + size_of::<SimTime>()
            + 2 * size_of::<u64>()
            + size_of::<Option<Box<PktCold>>>()) as u64;
        self.gens.len() as u64 * per_slot + self.resident as u64 * size_of::<PktCold>() as u64
    }

    fn note_peak(&mut self) {
        self.peak_bytes = self.peak_bytes.max(self.bytes());
    }

    fn push(&mut self, flight: InFlight) -> usize {
        let i = self.gens.len();
        self.gens.push(0);
        self.disassemble(i, flight, true);
        i
    }

    /// Grows the table to `n` empty slots (shard setup).
    fn ensure_len(&mut self, n: usize) {
        while self.gens.len() < n {
            self.gens.push(0);
            self.flags.push(0);
            self.wire_mf.push(0);
            self.last_node.push(u32::MAX);
            self.inject_attempts.push(0);
            self.reroutes.push(0);
            self.injected_at.push(SimTime::ZERO);
            self.last_hop_at.push(0);
            self.escaped_at.push(0);
            self.cold.push(None);
        }
        self.note_peak();
    }

    /// Does slot `i` hold a live, locally stored packet?
    fn is_resident(&self, i: usize) -> bool {
        self.cold.get(i).is_some_and(Option::is_some)
    }

    /// Scatters an assembled record into the parallel arrays. `append`
    /// pushes a brand-new slot; otherwise slot `i` must exist and be
    /// empty.
    fn disassemble(&mut self, i: usize, flight: InFlight, append: bool) {
        let flags = (u8::from(flight.under_fault) * F_UNDER_FAULT)
            | (u8::from(flight.launched) * F_LAUNCHED)
            | (u8::from(flight.escaped) * F_ESCAPED);
        let cold = Box::new(PktCold {
            packet: flight.packet,
            state: flight.state,
            rng: flight.rng,
            path: flight.path,
        });
        if append {
            self.flags.push(flags);
            self.wire_mf.push(flight.wire_mf);
            self.last_node.push(flight.last_node);
            self.inject_attempts.push(flight.inject_attempts);
            self.reroutes.push(flight.reroutes);
            self.injected_at.push(flight.injected_at);
            self.last_hop_at.push(flight.last_hop_at);
            self.escaped_at.push(flight.escaped_at);
            self.cold.push(Some(cold));
        } else {
            assert!(self.cold[i].is_none(), "slab slot {i} already occupied");
            self.flags[i] = flags;
            self.wire_mf[i] = flight.wire_mf;
            self.last_node[i] = flight.last_node;
            self.inject_attempts[i] = flight.inject_attempts;
            self.reroutes[i] = flight.reroutes;
            self.injected_at[i] = flight.injected_at;
            self.last_hop_at[i] = flight.last_hop_at;
            self.escaped_at[i] = flight.escaped_at;
            self.cold[i] = Some(cold);
        }
        self.resident += 1;
        self.note_peak();
    }

    /// Gathers slot `i`'s arrays and the given cold record back into
    /// the assembled transfer form.
    fn assemble(&self, i: usize, c: PktCold) -> InFlight {
        InFlight {
            packet: c.packet,
            state: c.state,
            rng: c.rng,
            injected_at: self.injected_at[i],
            path: c.path,
            inject_attempts: self.inject_attempts[i],
            reroutes: self.reroutes[i],
            under_fault: self.flags[i] & F_UNDER_FAULT != 0,
            launched: self.flags[i] & F_LAUNCHED != 0,
            escaped: self.flags[i] & F_ESCAPED != 0,
            escaped_at: self.escaped_at[i],
            last_hop_at: self.last_hop_at[i],
            last_node: self.last_node[i],
            wire_mf: self.wire_mf[i],
        }
    }

    /// Removes the packet for a cross-shard handoff (the slot stays
    /// valid — the packet is alive, just resident elsewhere).
    fn take(&mut self, i: usize) -> InFlight {
        let cold = self.cold[i].take().expect(RESIDENT);
        self.resident -= 1;
        self.assemble(i, *cold)
    }

    /// [`Pkts::take`] that returns `None` instead of panicking on an
    /// empty slot (split/gather sweeps over the whole table).
    fn take_if_resident(&mut self, i: usize) -> Option<InFlight> {
        let cold = self.cold.get_mut(i)?.take()?;
        self.resident -= 1;
        Some(self.assemble(i, *cold))
    }

    /// Installs a handed-off packet.
    fn put(&mut self, i: usize, flight: InFlight) {
        self.ensure_len(i + 1);
        self.disassemble(i, flight, false);
    }

    /// Declares the packet dead: reclaims its cold record and
    /// invalidates the slot for good.
    fn free(&mut self, i: usize) -> InFlight {
        let cold = self.cold[i].take().expect("double drop of a packet");
        self.resident -= 1;
        self.gens[i] = self.gens[i].wrapping_add(1);
        self.assemble(i, *cold)
    }

    // Cold-record accessors. All panic with [`RESIDENT`] on an empty
    // slot — events guarantee residency, and a violation of that is the
    // stale-handle bug the generation counters exist to catch.

    fn packet(&self, i: usize) -> &Packet {
        &self.cold[i].as_ref().expect(RESIDENT).packet
    }

    fn packet_mut(&mut self, i: usize) -> &mut Packet {
        &mut self.cold[i].as_mut().expect(RESIDENT).packet
    }

    fn state(&self, i: usize) -> &RouteState {
        &self.cold[i].as_ref().expect(RESIDENT).state
    }

    fn rng_mut(&mut self, i: usize) -> &mut SmallRng {
        &mut self.cold[i].as_mut().expect(RESIDENT).rng
    }

    /// The whole cold record — the split borrow the marker hooks need
    /// (`&mut packet` and `&mut rng` simultaneously).
    fn cold_mut(&mut self, i: usize) -> &mut PktCold {
        self.cold[i].as_mut().expect(RESIDENT)
    }

    fn flag(&self, i: usize, bit: u8) -> bool {
        self.flags[i] & bit != 0
    }

    fn set_flag(&mut self, i: usize, bit: u8, on: bool) {
        if on {
            self.flags[i] |= bit;
        } else {
            self.flags[i] &= !bit;
        }
    }
}

/// Canonical merge key of one captured artefact in shard mode:
/// `(cycle, rank, packet-key, emission-seq)` — sorting per-shard capture
/// streams by this key reproduces the exact order the serial engine
/// emits artefacts in (see [`Event::canonical_key`]).
#[doc(hidden)]
pub type EventKey = (u64, u8, u64, u32);

/// A packet crossing a shard boundary: the full in-flight record plus
/// the `Arrive` event it travels as. Opaque outside this crate.
#[doc(hidden)]
pub struct Handoff {
    time: u64,
    pkt: usize,
    node: u32,
    from: u32,
    flight: InFlight,
}

/// Per-shard mailboxes for cross-shard handoffs, indexed by destination
/// shard. Senders push during a window; owners drain at the barrier.
#[doc(hidden)]
pub type Inboxes = Arc<Vec<Mutex<Vec<Handoff>>>>;

/// Builds the empty mailbox array for `shards` shards.
#[doc(hidden)]
#[must_use]
pub fn new_inboxes(shards: usize) -> Inboxes {
    Arc::new((0..shards).map(|_| Mutex::new(Vec::new())).collect())
}

/// Everything a shard hands the coordinator at a barrier: captured
/// artefacts (already in canonical order), progress markers and the
/// conservation totals.
#[doc(hidden)]
pub struct WindowReport {
    /// Fire time of the shard's earliest pending event, post-install.
    pub next_time: Option<u64>,
    /// Earliest injection processed since the last report (arms the
    /// watchdog exactly as the serial engine's first-inject rule).
    pub min_inject: Option<u64>,
    /// Cycle of the shard's latest delivery or forward (cumulative).
    pub last_progress: u64,
    /// Packets launched and still resident in this shard.
    pub live: u64,
    /// Cumulative injected count (conservation term).
    pub injected: u64,
    /// Cumulative delivered count (conservation term).
    pub delivered_total: u64,
    /// Cumulative dropped count (conservation term).
    pub dropped_total: u64,
    /// Latest cycle this shard processed an event at (cumulative).
    pub max_processed: Option<u64>,
    /// Lifecycle events captured since the last report.
    pub events: Vec<(EventKey, PacketEvent)>,
    /// Deliveries captured since the last report.
    pub delivered: Vec<(EventKey, Delivered)>,
    /// Typed drops captured since the last report.
    pub drops: Vec<(EventKey, (PacketId, DropReason))>,
    /// Invariant violations captured since the last report.
    pub violations: Vec<(EventKey, Violation)>,
    /// First self-test candidate `(key, pkt id, node)` seen by this
    /// shard, if any — the coordinator elects the global minimum.
    pub selftest: Option<(EventKey, u64, u32)>,
}

/// A packet claimed by a fault the coordinator ordered: where and when
/// the serial engine would have dropped it.
#[doc(hidden)]
pub struct FaultVictim {
    /// Fire time of the claimed event (serial drop order, major).
    pub time: u64,
    /// In-flight handle (serial drop order, minor).
    pub handle: usize,
    /// Packet id, for the master drop log.
    pub pkt_id: u64,
    /// Node the claimed event addressed — where the drop is attributed.
    pub node: u32,
}

/// Residual coordinator state handed back when a sharded segment ends —
/// either at quiescence (everything empty/closed) or at a checkpoint
/// limit (remaining fault schedule, armed watchdog, open degraded
/// window). [`Simulation::engine_gather`] folds it into the master.
#[doc(hidden)]
pub struct EngineResidual {
    /// Fault events not yet applied, in schedule order.
    pub faults: Vec<(u64, FaultEvent)>,
    /// Pending watchdog sweep time, if armed.
    pub wd_due: Option<u64>,
    /// Cycle the open degraded window started at, if faults are active.
    pub degraded_since: Option<u64>,
    /// Repair cycle awaiting its next-delivery recovery sample.
    pub pending_recovery: Option<u64>,
    /// Final live fault state (identical in every shard).
    pub live_faults: FaultSet,
    /// Fault statistics accumulated by the coordinator this segment.
    pub fstats: FaultStats,
    /// Watchdog statistics accumulated by the coordinator this segment.
    pub wstats: WatchdogStats,
    /// Latest cycle any shard or coordinator round processed.
    pub end_time: u64,
}

/// One live packet's watchdog-relevant state, gathered at a sweep.
#[doc(hidden)]
pub struct WdPacket {
    /// In-flight handle (sweep order).
    pub handle: usize,
    /// Packet id.
    pub pkt_id: u64,
    /// Injection cycle.
    pub injected_at: u64,
    /// Cycle of the most recent hop.
    pub last_hop_at: u64,
    /// True once escalated onto the escape router.
    pub escaped: bool,
    /// Cycle of the escape.
    pub escaped_at: u64,
    /// Last switch that handled the packet.
    pub last_node: u32,
}

/// What a watchdog sweep decided for one packet.
#[doc(hidden)]
#[derive(Clone, Copy)]
pub enum WdActionKind {
    /// Reroute onto the escape router with a fresh retry allowance.
    Escape,
    /// Claim with a typed drop.
    Drop(DropReason),
}

/// A coordinator-ordered watchdog action against one packet.
#[doc(hidden)]
#[derive(Clone, Copy)]
pub struct WdAction {
    /// In-flight handle.
    pub handle: usize,
    /// What to do.
    pub kind: WdActionKind,
}

/// Shard-mode state carried by a [`Simulation`] that acts as one shard
/// of the parallel engine.
struct ShardCtx {
    shard: usize,
    part: Arc<Partition>,
    inboxes: Inboxes,
    /// Mirror of the master's observer flag: capture lifecycle events
    /// for the merge (the master replays them into telemetry and the
    /// checker's trace tail).
    capture: bool,
    selftest_at: Option<u64>,
    selftest_done: bool,
    events: Vec<(EventKey, PacketEvent)>,
    delivered: Vec<(EventKey, Delivered)>,
    drops: Vec<(EventKey, (PacketId, DropReason))>,
    violations: Vec<(EventKey, Violation)>,
    selftest_candidate: Option<(EventKey, u64, u32)>,
    min_inject: Option<u64>,
    max_processed: Option<u64>,
}

/// A discrete-event simulation run over one network.
///
/// Typical usage:
/// 1. build with [`Simulation::new`] (or [`Simulation::with_filter`]);
/// 2. optionally [`Simulation::schedule_faults`] a dynamic
///    [`FaultSchedule`];
/// 3. [`Simulation::schedule`] packets at their injection times;
/// 4. [`Simulation::run`] to quiescence;
/// 5. inspect [`Simulation::stats`], [`Simulation::delivered`] and
///    [`Simulation::drops`].
///
/// The `faults` argument seeds the simulation's **live** fault state;
/// every per-hop routing decision consults the live state, so scheduled
/// [`FaultEvent`]s take effect on packets already in the network.
pub struct Simulation<'a> {
    topo: &'a Topology,
    /// Live fault state: the initial `FaultSet` plus every applied
    /// [`FaultEvent`] so far.
    live: FaultSet,
    router: Router,
    policy: SelectionPolicy,
    marker: &'a dyn Marker,
    filter: &'a dyn Filter,
    cfg: SimConfig,
    queue: EventQueue,
    pkts: Pkts,
    /// Staged injections not yet materialised into the arena
    /// ([`Simulation::stage`]): `(cycle, packet)` in nondecreasing time
    /// order. Bounded-memory flood mode — a staged packet costs one
    /// queue entry and no arena slot until the simulation clock reaches
    /// it.
    pending: VecDeque<(u64, Packet)>,
    /// High-water mark of `pending.len()` (peak-memory telemetry).
    pending_peak: u64,
    /// Reusable routing-candidate buffer: `forward_from` swaps it out,
    /// fills it via `candidates_into`, and swaps it back, so
    /// steady-state forwarding never allocates.
    cand_buf: Vec<Candidate>,
    /// Dense node → coordinate table. `coord()` divides once per
    /// dimension, which the per-event path pays on every arrival;
    /// memoising it trades `num_nodes * size_of::<Coord>()` bytes for
    /// division-free lookups. Left empty above
    /// [`COORD_CACHE_MAX_NODES`] so giant fabrics stay bounded — the
    /// accessor falls back to computing.
    coords: Vec<Coord>,
    /// Per directed output port: the cycle until which it is busy.
    /// Dense, indexed `node * port_stride + (dim * 2 + sign)` — the
    /// hot-path replacement for the old `HashMap<(u32, Direction), u64>`.
    ports: Vec<u64>,
    /// Ports per switch in the dense table (`2 * ndims`).
    port_stride: usize,
    now: SimTime,
    stats: SimStats,
    delivered: Vec<Delivered>,
    drops: Vec<(ddpm_net::PacketId, DropReason)>,
    /// When the current degraded period started, if one is open.
    degraded_since: Option<u64>,
    /// Set when the last repair restored full health; cleared (and
    /// recorded as time-to-recovery) by the next delivery.
    pending_recovery: Option<u64>,
    /// Live telemetry, `None` when [`SimConfig::telemetry`] is off — the
    /// zero-cost path: every hook below is one `Option` check.
    tele: Option<Box<Telemetry>>,
    /// Packets launched (injection counted) but not yet delivered or
    /// dropped — the `in_flight` term of the conservation invariant.
    live_count: u64,
    /// Running totals mirroring the per-class stats counters, kept so
    /// the per-event conservation check is three integer loads instead
    /// of a full `SimStats::total()` fold.
    injected_total: u64,
    delivered_total: u64,
    dropped_total: u64,
    /// `(packet id, last node)` of the most recent packet to leave this
    /// simulation's storage — freed on delivery/drop, or handed off to
    /// another shard. The post-event hooks attribute their checks with
    /// this when the event's own packet is already gone.
    gone_info: (u64, u32),
    /// Cycle of the last delivery or forward: the network-level
    /// progress signal the watchdog's deadlock detector watches.
    last_progress: u64,
    /// True while a watchdog sweep is scheduled. The watchdog arms at
    /// the first injection and disarms when nothing is live.
    watchdog_armed: bool,
    /// Latched by the run close-out (degraded-window accounting,
    /// end-time stamp, telemetry finish) so segmented runs via
    /// [`Simulation::run_until`] finalize exactly once.
    finalized: bool,
    /// Runtime invariant checker (violation log + trace tail).
    checker: InvariantChecker,
    /// Cached "is anyone observing lifecycle events" flag — telemetry,
    /// the checker's trace tail, or (in shard mode) the capture buffers.
    /// Hoisted out of the hot loop: both inputs are fixed for a run.
    obs: bool,
    /// Dense per-node "marking plane compromised" flags from
    /// [`SimConfig::adversary`] (empty when every switch is honest).
    /// The core only *flags* — `MarkTamper` telemetry at compromised
    /// forwards — the tampering itself lives in the driver's `Marker`.
    compromised: Vec<bool>,
    /// The adversary behavior name carried by `MarkTamper` events.
    adv_behavior: &'static str,
    /// Cached [`InvariantChecker::enabled`], likewise fixed for a run.
    checking: bool,
    /// Present when this simulation is one shard of the parallel engine.
    shard: Option<Box<ShardCtx>>,
    /// Canonical key of the event being processed (shard mode only):
    /// cycle, rank, packet key, next emission sequence.
    cur_cycle: u64,
    cur_rank: u8,
    cur_pkey: u64,
    emit_seq: u32,
}

static NO_FILTER: NoFilter = NoFilter;

impl<'a> Simulation<'a> {
    /// Builds a simulation without mitigation filters.
    #[must_use]
    pub fn new(
        topo: &'a Topology,
        faults: &FaultSet,
        router: Router,
        policy: SelectionPolicy,
        marker: &'a dyn Marker,
        cfg: SimConfig,
    ) -> Self {
        Self::with_filter(topo, faults, router, policy, marker, &NO_FILTER, cfg)
    }

    /// Builds a simulation with a mitigation [`Filter`] installed.
    #[must_use]
    pub fn with_filter(
        topo: &'a Topology,
        faults: &FaultSet,
        router: Router,
        policy: SelectionPolicy,
        marker: &'a dyn Marker,
        filter: &'a dyn Filter,
        cfg: SimConfig,
    ) -> Self {
        let degraded_since = (!faults.is_empty()).then_some(0);
        let tele = Telemetry::from_config(&cfg.telemetry).map(Box::new);
        let checker = InvariantChecker::new(cfg.invariants);
        let obs = tele.as_ref().is_some_and(|t| t.events_on()) || checker.tail_on();
        let checking = checker.enabled();
        let port_stride = 2 * topo.ndims();
        let ports = vec![0u64; topo.num_nodes() as usize * port_stride];
        let coords = if topo.num_nodes() <= COORD_CACHE_MAX_NODES {
            (0..topo.num_nodes() as u32)
                .map(|n| topo.coord(NodeId(n)))
                .collect()
        } else {
            Vec::new()
        };
        let (compromised, adv_behavior) = match &cfg.adversary {
            Some(spec) => {
                let mut dense = vec![false; topo.num_nodes() as usize];
                for s in &spec.switches {
                    if let Some(flag) = dense.get_mut(s.0 as usize) {
                        *flag = true;
                    }
                }
                (dense, spec.behavior.as_str())
            }
            None => (Vec::new(), ""),
        };
        // Size the wheel to the worst-case hot-path look-ahead: a full
        // output buffer serialising ahead of this packet, plus the link,
        // plus every way an event can be deferred — retry backoff
        // (capped at max_delay) and the watchdog's next sweep. Sized
        // from the config rather than a 64×64-era constant, so Table 3
        // fabrics with long backoffs keep the heap out of steady state.
        let deferral = cfg
            .inject_retry
            .max_delay
            .max(cfg.reroute_retry.max_delay)
            .max(cfg.watchdog.as_ref().map_or(0, |w| w.check_period));
        let horizon = (u64::from(cfg.buffer_packets) + 2) * cfg.service_cycles.max(1)
            + cfg.link_latency
            + deferral
            + 1;
        Self {
            topo,
            live: faults.clone(),
            router,
            policy,
            marker,
            filter,
            cfg,
            queue: EventQueue::with_horizon(horizon),
            pkts: Pkts::new(),
            pending: VecDeque::new(),
            pending_peak: 0,
            cand_buf: Vec::new(),
            coords,
            ports,
            port_stride,
            now: SimTime::ZERO,
            stats: SimStats::default(),
            delivered: Vec::new(),
            drops: Vec::new(),
            degraded_since,
            pending_recovery: None,
            tele,
            live_count: 0,
            injected_total: 0,
            delivered_total: 0,
            dropped_total: 0,
            gone_info: (0, u32::MAX),
            last_progress: 0,
            watchdog_armed: false,
            finalized: false,
            checker,
            obs,
            compromised,
            adv_behavior,
            checking,
            shard: None,
            cur_cycle: 0,
            cur_rank: 0,
            cur_pkey: 0,
            emit_seq: 0,
        }
    }

    /// Schedules every event of a dynamic [`FaultSchedule`]. Call before
    /// scheduling traffic: the queue breaks time ties by insertion
    /// order, so faults registered first apply before same-cycle packet
    /// events.
    pub fn schedule_faults(&mut self, schedule: &FaultSchedule) {
        for (t, event) in schedule.iter() {
            self.queue.push(SimTime(t), EventKind::Fault { event });
        }
    }

    /// The live fault state (initial faults plus applied events).
    #[must_use]
    pub fn live_faults(&self) -> &FaultSet {
        &self.live
    }

    /// Schedules `packet` for injection at `time`. Returns its in-flight
    /// handle (useful only for debugging).
    pub fn schedule(&mut self, time: SimTime, packet: Packet) -> usize {
        let idx = self.pkts.len();
        let wire_mf = packet.header.identification.raw();
        // Decorrelate per-packet streams from the run seed with a
        // splitmix of the handle (golden-ratio increment).
        let rng = SmallRng::seed_from_u64(
            self.cfg.seed ^ (idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        self.pkts.push(InFlight {
            packet,
            state: RouteState::with_budget(self.router.misroute_budget()),
            rng,
            injected_at: time,
            path: Vec::new(),
            inject_attempts: 0,
            reroutes: 0,
            under_fault: false,
            launched: false,
            escaped: false,
            escaped_at: 0,
            last_hop_at: time.cycles(),
            last_node: u32::MAX,
            wire_mf,
        });
        self.queue.push(time, EventKind::Inject { pkt: idx });
        idx
    }

    /// Stages `packet` for injection at `time` **without** allocating
    /// its arena slot yet — the bounded-memory alternative to
    /// [`Simulation::schedule`] for Table-3-scale floods, where eagerly
    /// materialising millions of in-flight records (and their pending
    /// `Inject` events) would dominate memory before the first cycle
    /// runs. Staged packets materialise lazily, in FIFO order, as the
    /// clock reaches them; peak arena occupancy then tracks the number
    /// of packets genuinely in flight.
    ///
    /// Staged and eagerly scheduled runs of the same workload are
    /// *equivalent but not identical*: packet handles (and therefore
    /// per-packet RNG streams) are assigned in materialisation order
    /// rather than scheduling order, so conformance digests differ
    /// between the two modes while each mode stays bit-reproducible
    /// across engines and checkpoints.
    ///
    /// # Panics
    /// Panics if `time` precedes the previously staged injection —
    /// lazy materialisation requires a time-sorted stage order.
    pub fn stage(&mut self, time: SimTime, packet: Packet) {
        debug_assert!(time >= self.now, "staged injection in the past");
        if let Some(&(back, _)) = self.pending.back() {
            assert!(
                time.cycles() >= back,
                "staged injections must be time-sorted: {} after {back}",
                time.cycles()
            );
        }
        self.pending.push_back((time.cycles(), packet));
        self.pending_peak = self.pending_peak.max(self.pending.len() as u64);
    }

    /// Number of staged injections not yet materialised.
    #[must_use]
    pub fn staged_count(&self) -> usize {
        self.pending.len()
    }

    /// Materialises every staged injection due before the next queued
    /// event (all of them when the queue is idle, bounded by `limit`
    /// when segmenting). A staged packet appended at cycle `t` receives
    /// the highest handle so far *and* the highest queue sequence, so
    /// it sorts last among cycle-`t` packet events under both the
    /// serial (insertion-order) and canonical (pkey-order) tie-breaks —
    /// lazy materialisation is order-equivalent to materialising the
    /// whole backlog up front, which is exactly what the sharded
    /// engine's split does.
    fn pump_staged(&mut self, limit: Option<u64>) {
        while let Some(&(t, _)) = self.pending.front() {
            if limit.is_some_and(|l| t >= l) {
                return;
            }
            if self.queue.next_time().is_some_and(|nt| t > nt) {
                return;
            }
            let (t, p) = self.pending.pop_front().expect("front just probed");
            self.schedule(SimTime(t), p);
        }
    }

    /// Runs the event loop to quiescence and returns the statistics.
    pub fn run(&mut self) -> SimStats {
        // Observer and checker status are fixed for a run: hoist both
        // out of the per-event path (`checking` here, `self.obs` at
        // every emission site) so a telemetry-off run pays nothing.
        let profiling = self.tele.as_ref().is_some_and(|t| t.profiling());
        let checking = self.checking;
        loop {
            if !self.pending.is_empty() {
                self.pump_staged(None);
            }
            let Some(ev) = self.queue.pop() else { break };
            self.dispatch(ev, profiling, checking);
        }
        self.finalize_run();
        self.stats
    }

    /// Runs every pending event with fire time strictly below `limit` —
    /// one serial segment of a checkpointed run. Returns `true` once the
    /// run reached quiescence (the close-out has happened and
    /// [`Simulation::stats`] is final), `false` when it paused at the
    /// segment boundary with events still pending. Pausing between
    /// events is always safe: a [`Simulation::snapshot`] taken here and
    /// restored elsewhere continues bit-identically.
    /// Calling again after quiescence is a cheap no-op returning `true`
    /// — a resident driver (the attribution service) may race a stride
    /// against a completion it has not observed yet.
    pub fn run_until(&mut self, limit: u64) -> bool {
        if self.finalized {
            return true;
        }
        let profiling = self.tele.as_ref().is_some_and(|t| t.profiling());
        let checking = self.checking;
        loop {
            if !self.pending.is_empty() {
                self.pump_staged(Some(limit));
            }
            let Some(ev) = self.queue.pop_before(limit) else {
                break;
            };
            self.dispatch(ev, profiling, checking);
        }
        if self.queue.next_time().is_some() || !self.pending.is_empty() {
            return false;
        }
        self.finalize_run();
        true
    }

    /// Has the run reached quiescence (close-out done, stats final)?
    /// Once true, further [`Simulation::run_until`] calls are no-ops
    /// and [`Simulation::schedule`] must not be called.
    #[must_use]
    pub fn is_finalized(&self) -> bool {
        self.finalized
    }

    /// One serial event: advance time, run the handler, post-checks,
    /// optional phase profiling. Shared by [`Simulation::run`] and
    /// [`Simulation::run_until`].
    #[inline]
    fn dispatch(&mut self, ev: Event, profiling: bool, checking: bool) {
        debug_assert!(ev.time >= self.now, "time went backwards");
        self.now = ev.time;
        let t0 = profiling.then(Instant::now);
        let phase = match ev.kind {
            EventKind::Inject { pkt } => {
                self.handle_inject(pkt);
                "inject"
            }
            EventKind::Arrive { pkt, node, .. } => {
                self.handle_arrive(pkt, node);
                "arrive"
            }
            EventKind::Reroute { pkt, node } => {
                self.handle_reroute(pkt, node);
                "reroute"
            }
            EventKind::Fault { event } => {
                self.handle_fault(event);
                "fault"
            }
            EventKind::Watchdog => {
                self.handle_watchdog();
                "watchdog"
            }
        };
        if checking {
            self.post_event_checks(&ev);
        }
        if let Some(t0) = t0 {
            let elapsed = t0.elapsed();
            self.tele
                .as_mut()
                .expect("profiling implies telemetry")
                .profile(phase, elapsed);
        }
    }

    /// Close-out of a finished run: degraded-window accounting, the
    /// end-time stamp and the telemetry finish. Idempotent, so a
    /// segmented run finalizes exactly once.
    fn finalize_run(&mut self) {
        if self.finalized {
            return;
        }
        self.finalized = true;
        if let Some(t0) = self.degraded_since.take() {
            self.stats.faults.degraded_cycles += self.now.cycles() - t0;
        }
        self.stats.end_time = self.now.cycles();
        // Peak-memory telemetry: arena high-water mark plus the staged
        // backlog at its deepest, and the (static) port table. Kept out
        // of `SimStats`'s Debug form — the numbers are layout-dependent
        // and must not leak into conformance digests.
        self.stats.peak_arena_bytes = self.stats.peak_arena_bytes.max(
            self.pkts.peak_bytes
                + self.pending_peak * std::mem::size_of::<(u64, Packet)>() as u64,
        );
        self.stats.port_bytes = (self.ports.len() * std::mem::size_of::<u64>()) as u64;
        debug_assert_eq!(self.live_count, 0, "run ended with live packets");
        debug_assert!(self.stats.accounted(0), "packet conservation violated");
        if let Some(t) = self.tele.as_mut() {
            t.finish();
            if t.degraded() {
                self.stats.telemetry_degraded = true;
            }
        }
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Packets delivered so far, in delivery order — the victim's view.
    #[must_use]
    pub fn delivered(&self) -> &[Delivered] {
        &self.delivered
    }

    /// Drop log: `(packet id, reason)` in drop order.
    #[must_use]
    pub fn drops(&self) -> &[(ddpm_net::PacketId, DropReason)] {
        &self.drops
    }

    /// Consumes the simulation, returning the delivered list (avoids a
    /// clone for large runs).
    #[must_use]
    pub fn into_delivered(self) -> Vec<Delivered> {
        self.delivered
    }

    /// Live telemetry state, when enabled. Lets callers read event
    /// counts, the latency histogram and the phase profile after a run.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tele.as_deref()
    }

    /// Invariant violations detected this run (empty when correct, or
    /// when the checker is disabled).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// The trailing window of lifecycle events kept by the invariant
    /// checker for repro bundles, oldest first.
    #[must_use]
    pub fn trace_tail(&self) -> Vec<PacketEvent> {
        self.checker.tail_events()
    }

    /// Packets launched but not yet delivered or dropped.
    #[must_use]
    pub fn live_count(&self) -> u64 {
        self.live_count
    }

    // ------------------------------------------------------------------
    // Checkpoint support (`ddpm-checkpoint`): complete dynamic state
    // out, and back in, bit-identically.
    // ------------------------------------------------------------------

    /// Captures the complete dynamic state of this simulation as plain
    /// data — valid at any event boundary (between
    /// [`Simulation::run_until`] segments, or before the run starts).
    /// The static half (topology, router, marker, filter, config) is
    /// not captured; [`Simulation::restore`] expects it rebuilt from
    /// the scenario description.
    #[must_use]
    pub fn snapshot(&self) -> SimSnapshot {
        debug_assert!(self.shard.is_none(), "snapshot the master, not a shard");
        let (events, queue_seq) = self.queue.snapshot_events();
        let slots = (0..self.pkts.len())
            .map(|i| SlotSnap {
                generation: self.pkts.gens[i],
                flight: self.pkts.cold[i].as_ref().map(|c| FlightSnap {
                    packet: c.packet,
                    state: c.state,
                    rng: c.rng.state(),
                    injected_at: self.pkts.injected_at[i].cycles(),
                    path: c.path.clone(),
                    inject_attempts: self.pkts.inject_attempts[i],
                    reroutes: self.pkts.reroutes[i],
                    under_fault: self.pkts.flag(i, F_UNDER_FAULT),
                    launched: self.pkts.flag(i, F_LAUNCHED),
                    escaped: self.pkts.flag(i, F_ESCAPED),
                    escaped_at: self.pkts.escaped_at[i],
                    last_hop_at: self.pkts.last_hop_at[i],
                    last_node: self.pkts.last_node[i],
                    wire_mf: self.pkts.wire_mf[i],
                }),
            })
            .collect();
        let (failed_links, failed_switches) = self.live.to_parts();
        SimSnapshot {
            now: self.now.cycles(),
            events,
            queue_seq,
            slots,
            ports: self.ports.clone(),
            stats: self.stats,
            delivered: self.delivered.clone(),
            drops: self.drops.clone(),
            failed_links,
            failed_switches,
            degraded_since: self.degraded_since,
            pending_recovery: self.pending_recovery,
            live_count: self.live_count,
            injected_total: self.injected_total,
            delivered_total: self.delivered_total,
            dropped_total: self.dropped_total,
            gone_info: self.gone_info,
            last_progress: self.last_progress,
            watchdog_armed: self.watchdog_armed,
            pending: self.pending.iter().cloned().collect(),
            pending_peak: self.pending_peak,
            peak_arena_bytes: self.pkts.peak_bytes,
            violations: self.checker.violations().to_vec(),
            trace_tail: self.checker.tail_events(),
            selftest_fired: self.checker.selftest_fired(),
            // Populated by the scenario driver, which owns the
            // AdversaryModel; the core simulator never reads it.
            adversary: None,
        }
    }

    /// Reinstalls a [`SimSnapshot`] into this **freshly built**
    /// simulation. Do not [`Simulation::schedule`] packets or
    /// [`Simulation::schedule_faults`] first — the snapshot holds every
    /// pending event, including queued `Inject`s and the remaining
    /// fault schedule. Continuing with [`Simulation::run`] or
    /// [`Simulation::run_until`] is then bit-identical to the
    /// uninterrupted run, under either engine.
    ///
    /// # Panics
    /// If this simulation already scheduled packets or processed
    /// events, or if the snapshot's port table does not match the
    /// topology (the snapshot was taken in a different world).
    pub fn restore(&mut self, snap: SimSnapshot) {
        assert!(
            self.pkts.len() == 0 && self.queue.is_empty() && self.now == SimTime::ZERO,
            "restore target must be freshly built"
        );
        assert_eq!(
            snap.ports.len(),
            self.ports.len(),
            "snapshot was taken on a different topology"
        );
        self.queue = EventQueue::restore(self.queue.horizon(), snap.events, snap.queue_seq);
        self.pkts.ensure_len(snap.slots.len());
        for (i, slot) in snap.slots.into_iter().enumerate() {
            if let Some(f) = slot.flight {
                self.pkts.put(
                    i,
                    InFlight {
                        packet: f.packet,
                        state: f.state,
                        rng: SmallRng::from_state(f.rng),
                        injected_at: SimTime(f.injected_at),
                        path: f.path,
                        inject_attempts: f.inject_attempts,
                        reroutes: f.reroutes,
                        under_fault: f.under_fault,
                        launched: f.launched,
                        escaped: f.escaped,
                        escaped_at: f.escaped_at,
                        last_hop_at: f.last_hop_at,
                        last_node: f.last_node,
                        wire_mf: f.wire_mf,
                    },
                );
            }
            self.pkts.gens[i] = slot.generation;
        }
        // The restored high-water marks supersede anything accumulated
        // while re-populating — a resumed run's peaks continue the
        // uninterrupted run's exactly.
        self.pkts.peak_bytes = self.pkts.peak_bytes.max(snap.peak_arena_bytes);
        self.pending = snap.pending.into_iter().collect();
        self.pending_peak = snap.pending_peak.max(self.pending.len() as u64);
        self.ports = snap.ports;
        self.now = SimTime(snap.now);
        self.stats = snap.stats;
        self.delivered = snap.delivered;
        self.drops = snap.drops;
        self.live = FaultSet::from_parts(snap.failed_links, snap.failed_switches);
        self.degraded_since = snap.degraded_since;
        self.pending_recovery = snap.pending_recovery;
        self.live_count = snap.live_count;
        self.injected_total = snap.injected_total;
        self.delivered_total = snap.delivered_total;
        self.dropped_total = snap.dropped_total;
        self.gone_info = snap.gone_info;
        self.last_progress = snap.last_progress;
        self.watchdog_armed = snap.watchdog_armed;
        self.checker
            .restore_state(snap.violations, snap.trace_tail, snap.selftest_fired);
    }

    fn class_of(&self, pkt: usize) -> TrafficClass {
        self.pkts.packet(pkt).class
    }

    /// Dense index of a directed output port: `node * 2·ndims + dim·2 +
    /// sign` (hypercubes use only the `Plus` half of each pair).
    #[inline]
    fn port_index(&self, node: u32, dir: Direction) -> usize {
        let d = dir.dim() * 2 + usize::from(dir.sign == ddpm_topology::Sign::Minus);
        node as usize * self.port_stride + d
    }

    /// The next emission key for the event being processed (shard mode).
    #[inline]
    fn bump_key(&mut self) -> EventKey {
        let k = (self.cur_cycle, self.cur_rank, self.cur_pkey, self.emit_seq);
        self.emit_seq += 1;
        k
    }

    /// Records one lifecycle event for in-flight packet `pkt` at switch
    /// `node`. Serially this feeds telemetry (when events are on) and
    /// the checker's trace tail; in shard mode it is captured with its
    /// canonical key for the coordinator's merge. Only call behind
    /// `self.obs`.
    fn emit(&mut self, pkt: usize, node: u32, kind: TelEvent) {
        let id = self.pkts.packet(pkt).id.0;
        self.emit_id(id, node, kind);
    }

    /// [`Simulation::emit`] for a packet already freed from the arena
    /// (drop and delivery events fire after the storage is reclaimed).
    fn emit_id(&mut self, pkt_id: u64, node: u32, kind: TelEvent) {
        let ev = PacketEvent {
            cycle: self.now.cycles(),
            pkt: pkt_id,
            node,
            kind,
        };
        self.sink_event(ev);
    }

    fn sink_event(&mut self, ev: PacketEvent) {
        if self.shard.is_some() {
            let key = self.bump_key();
            self.shard
                .as_mut()
                .expect("just checked")
                .events
                .push((key, ev));
            return;
        }
        if let Some(t) = self.tele.as_mut() {
            if t.events_on() {
                t.record(ev);
            }
        }
        self.checker.record_tail(ev);
    }

    /// Records an invariant violation: telemetry event, trace tail,
    /// violation log — then panics if the config says so. A shard
    /// captures the violation (and its event, when observing) keyed for
    /// the merge instead, preserving the panic behaviour.
    fn report_violation(&mut self, pkt: u64, node: u32, invariant: &'static str, detail: String) {
        let cycle = self.now.cycles();
        let ev = PacketEvent {
            cycle,
            pkt,
            node,
            kind: TelEvent::Violation { invariant },
        };
        if self.shard.is_some() {
            let key = self.bump_key();
            let panic_now = self.checker.config().panic_on_violation;
            let ctx = self.shard.as_mut().expect("just checked");
            if ctx.capture {
                ctx.events.push((key, ev));
            }
            ctx.violations.push((
                key,
                Violation {
                    cycle,
                    pkt,
                    node,
                    invariant,
                    detail: detail.clone(),
                },
            ));
            if panic_now {
                panic!(
                    "invariant violation `{invariant}` at cycle {cycle}, pkt {pkt}, node {node}: {detail}"
                );
            }
            return;
        }
        if let Some(t) = self.tele.as_mut() {
            if t.events_on() {
                t.record(ev);
            }
        }
        self.checker.record_tail(ev);
        let panic_now = self.checker.report(Violation {
            cycle,
            pkt,
            node,
            invariant,
            detail,
        });
        if panic_now {
            let v = self.checker.violations().last().expect("just pushed");
            panic!(
                "invariant violation `{invariant}` at cycle {cycle}, pkt {pkt}, node {node}: {}",
                v.detail
            );
        }
    }

    /// Post-event invariant checks: conservation after every handled
    /// event, plus the synthetic self-test injection when configured.
    fn post_event_checks(&mut self, ev: &Event) {
        let (pkt_id, node) = match ev.kind {
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => {
                if self.pkts.is_resident(pkt) {
                    (self.pkts.packet(pkt).id.0, self.pkts.last_node[pkt])
                } else {
                    // The handler freed the packet (delivered or dropped
                    // it) during this very event.
                    self.gone_info
                }
            }
            EventKind::Fault { .. } | EventKind::Watchdog => (0, u32::MAX),
        };
        // O(1) conservation: the running totals mirror the per-class
        // stats counters; `SimStats::accounted` (a full counter fold)
        // remains the end-of-run cross-check.
        if self.injected_total != self.delivered_total + self.dropped_total + self.live_count {
            let t = self.stats.total();
            self.report_violation(
                pkt_id,
                node,
                "conservation",
                format!(
                    "injected {} != delivered {} + dropped {} + in_flight {}",
                    t.injected,
                    t.delivered,
                    t.dropped(),
                    self.live_count
                ),
            );
        }
        if let Some(at) = self.checker.selftest_pending() {
            if self.now.cycles() >= at {
                self.checker.mark_selftest_fired();
                self.report_violation(
                    pkt_id,
                    node,
                    "selftest",
                    format!("synthetic violation scheduled at cycle {at} (InvariantConfig::selftest_at)"),
                );
            }
        }
    }

    /// The state-and-stats half of a drop: kills the packet and bumps
    /// the typed per-class counter, with no log entry and no event.
    /// Shards use it alone for coordinator-ordered drops (fault claims,
    /// watchdog escalations) — the coordinator writes the log entry and
    /// the event into the master in serial order.
    fn account_drop(&mut self, pkt: usize, reason: DropReason) {
        // Frees the arena slot (reclaiming the path buffer and RNG) and
        // bumps its generation — a stale event for this handle can never
        // act on a resurrected packet.
        let flight = self.pkts.free(pkt);
        debug_assert!(flight.launched, "drop of an uninjected packet");
        self.gone_info = (flight.packet.id.0, flight.last_node);
        self.live_count -= 1;
        self.dropped_total += 1;
        let class = flight.packet.class;
        let c = self.stats.class_mut(class);
        match reason {
            DropReason::BufferOverflow => c.dropped_buffer += 1,
            DropReason::TtlExpired => c.dropped_ttl += 1,
            DropReason::Blocked => c.dropped_blocked += 1,
            DropReason::HopLimit => c.dropped_hop_limit += 1,
            DropReason::Filtered => c.dropped_filtered += 1,
            DropReason::Corrupted => c.dropped_corrupt += 1,
            DropReason::SwitchDown => c.dropped_switch_down += 1,
            DropReason::LinkDown => c.dropped_link_down += 1,
            DropReason::RerouteExhausted => c.dropped_reroute += 1,
            DropReason::SourceDown => c.dropped_source_down += 1,
            DropReason::LivelockEscaped => c.dropped_livelock += 1,
            DropReason::DeadlockVictim => c.dropped_deadlock += 1,
        }
    }

    fn drop_packet(&mut self, pkt: usize, node: u32, reason: DropReason) {
        let id = self.pkts.packet(pkt).id;
        self.account_drop(pkt, reason);
        let key = (self.cur_cycle, self.cur_rank, self.cur_pkey, 0);
        if let Some(ctx) = self.shard.as_mut() {
            ctx.drops.push((key, (id, reason)));
        } else {
            self.drops.push((id, reason));
        }
        if self.obs {
            self.emit_id(
                id.0,
                node,
                TelEvent::Drop {
                    reason: reason.as_str(),
                },
            );
        }
    }

    /// Applies one scheduled [`FaultEvent`] to the live fault state and
    /// enforces fail-stop semantics: packets committed to a component
    /// that just died are claimed now, with a typed drop — never
    /// silently lost.
    fn handle_fault(&mut self, ev: FaultEvent) {
        let was_healthy = self.live.is_empty();
        self.live.apply(self.topo, ev);
        self.stats.faults.events_applied += 1;
        match ev {
            FaultEvent::LinkDown { a, b } => {
                // Packets on the wire of this link die with it.
                let lost = self.queue.extract(|k| {
                    matches!(k, EventKind::Arrive { node, from, .. }
                        if (NodeId(*node), NodeId(*from)) == (a, b)
                            || (NodeId(*node), NodeId(*from)) == (b, a))
                });
                for e in lost {
                    if let EventKind::Arrive { pkt, node, .. } = e.kind {
                        self.drop_packet(pkt, node, DropReason::LinkDown);
                    }
                }
            }
            FaultEvent::SwitchDown { node } => {
                // Fail-stop: the switch's buffers vanish. That claims
                // packets in flight toward it, packets it had already
                // committed to an output port (future arrivals with
                // `from == node`), and packets parked at it awaiting a
                // reroute retry.
                let lost = self.queue.extract(|k| match k {
                    EventKind::Arrive { node: n, from, .. } => *n == node.0 || *from == node.0,
                    EventKind::Reroute { node: n, .. } => *n == node.0,
                    EventKind::Inject { .. } | EventKind::Fault { .. } | EventKind::Watchdog => {
                        false
                    }
                });
                for e in lost {
                    if let EventKind::Arrive { pkt, node, .. } | EventKind::Reroute { pkt, node } =
                        e.kind
                    {
                        self.drop_packet(pkt, node, DropReason::SwitchDown);
                    }
                }
            }
            FaultEvent::LinkUp { .. } | FaultEvent::SwitchUp { .. } => {}
        }
        if was_healthy && !self.live.is_empty() {
            self.degraded_since = Some(self.now.cycles());
        } else if !was_healthy && self.live.is_empty() {
            if let Some(t0) = self.degraded_since.take() {
                self.stats.faults.degraded_cycles += self.now.cycles() - t0;
            }
            self.pending_recovery = Some(self.now.cycles());
        }
    }

    /// Guard against an event firing on a packet that already died. In a
    /// correct run this never happens — every death path eagerly
    /// extracts the packet's pending events — so a hit is a simulator
    /// bug: the arena's generation bump makes it detectable, and it is
    /// reported as a typed `stale_handle` violation rather than a panic
    /// (and can never act on a resurrected packet).
    fn stale_event(&mut self, pkt: usize) -> bool {
        if self.pkts.is_resident(pkt) {
            return false;
        }
        if self.checking {
            self.report_violation(
                pkt as u64,
                u32::MAX,
                "stale_handle",
                format!("event fired for freed packet handle {pkt} (arena generation advanced)"),
            );
        }
        true
    }

    fn handle_inject(&mut self, pkt: usize) {
        if self.stale_event(pkt) {
            return;
        }
        let src_id = self.pkts.packet(pkt).true_source;
        let src = self.coord_of(src_id.0);
        self.pkts.last_node[pkt] = src_id.0;
        if self.pkts.inject_attempts[pkt] == 0 {
            self.pkts.set_flag(pkt, F_LAUNCHED, true);
            self.live_count += 1;
            self.injected_total += 1;
            self.stats.class_mut(self.class_of(pkt)).injected += 1;
            let under = !self.live.is_empty();
            self.pkts.set_flag(pkt, F_UNDER_FAULT, under);
            if under {
                self.stats.faults.window_injected += 1;
            }
        }
        // Lazy watchdog arming: the first injection of a quiet period
        // schedules the sweep cadence; `last_progress` starts *now* so a
        // late first injection is not misread as a historic stall. A
        // shard only notes the injection time — arming is coordinator
        // business (it takes the minimum across shards, which is exactly
        // the first injection the serial engine would have seen).
        if let Some(wd) = self.cfg.watchdog {
            let t = self.now.cycles();
            if let Some(ctx) = self.shard.as_mut() {
                ctx.min_inject = Some(ctx.min_inject.map_or(t, |m| m.min(t)));
            } else if !self.watchdog_armed {
                self.watchdog_armed = true;
                self.last_progress = t;
                self.queue
                    .push(SimTime(t + wd.check_period.max(1)), EventKind::Watchdog);
            }
        }
        // Source-side graceful degradation: a downed local switch makes
        // the compute node hold the packet and retry with exponential
        // backoff (the injection RetryPolicy) rather than lose it.
        if self.live.is_node_dead(src_id) {
            let attempt = self.pkts.inject_attempts[pkt];
            if attempt < self.cfg.inject_retry.retries {
                self.pkts.inject_attempts[pkt] = attempt + 1;
                let at = self.now.cycles() + self.cfg.inject_retry.delay(attempt);
                self.queue.push(SimTime(at), EventKind::Inject { pkt });
                if self.obs {
                    self.emit(
                        pkt,
                        src_id.0,
                        TelEvent::Retry {
                            what: RetryKind::Inject,
                            attempt,
                        },
                    );
                }
            } else {
                self.drop_packet(pkt, src_id.0, DropReason::SourceDown);
            }
            return;
        }
        if self.obs {
            self.emit(pkt, src_id.0, TelEvent::Inject);
        }
        if self.cfg.record_paths {
            self.pkts.cold_mut(pkt).path.push(src_id);
        }
        // The source switch resets the marking field (§5) — forged MF
        // values die here.
        let env = MarkEnv { topo: self.topo };
        let mf_before = self.pkts.packet(pkt).header.identification.raw();
        self.marker
            .on_inject(&mut self.pkts.cold_mut(pkt).packet, &src, &env);
        let mf_after = self.pkts.packet(pkt).header.identification.raw();
        if mf_after != mf_before && self.obs {
            let scheme = self.marker.name();
            self.emit(pkt, src_id.0, TelEvent::Mark { mf: mf_after, scheme });
        }
        if self.filter.block_at_injection(self.pkts.packet(pkt), &src) {
            self.drop_packet(pkt, src_id.0, DropReason::Filtered);
            return;
        }
        self.forward_from(pkt, src_id.0, &src);
    }

    fn handle_arrive(&mut self, pkt: usize, node: u32) {
        if self.stale_event(pkt) {
            return;
        }
        // Mark-in-transit invariant: links never rewrite the marking
        // field — it must arrive exactly as the previous switch sent it
        // (modelled bit errors happen below, at arrival processing).
        if self.checking {
            let got = self.pkts.packet(pkt).header.identification.raw();
            let sent = self.pkts.wire_mf[pkt];
            if got != sent {
                self.report_violation(
                    self.pkts.packet(pkt).id.0,
                    node,
                    "mark_in_transit",
                    format!("marking field changed on the wire: sent {sent:#06x}, arrived {got:#06x}"),
                );
            }
        }
        self.pkts.last_node[pkt] = node;
        // Link-level bit errors: flip one random header bit in transit;
        // the receiving switch checksums and discards the damaged packet.
        if self.cfg.bit_error_rate > 0.0 {
            let ber = self.cfg.bit_error_rate;
            let p = self.pkts.cold_mut(pkt);
            let corrupted = if p.rng.gen_bool(ber) {
                let mut bytes = p.packet.header.to_bytes();
                let bit = p.rng.gen_range(0..160u32);
                bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
                match ddpm_net::Ipv4Header::parse(&bytes) {
                    Ok(h) => {
                        // A flip that still parses (impossible for single-bit
                        // errors under RFC 1071, kept for defence in depth).
                        p.packet.header = h;
                        false
                    }
                    Err(_) => true,
                }
            } else {
                false
            };
            if corrupted {
                self.drop_packet(pkt, node, DropReason::Corrupted);
                return;
            }
        }
        let node_id = NodeId(node);
        let cur = self.coord_of(node);
        if self.cfg.record_paths {
            self.pkts.cold_mut(pkt).path.push(node_id);
        }
        if node_id == self.pkts.packet(pkt).dest_node {
            // The destination switch runs marking logic one final time
            // before delivery (needed by PPM's edge completion).
            let env = MarkEnv { topo: self.topo };
            let p = self.pkts.cold_mut(pkt);
            let mf_before = p.packet.header.identification.raw();
            self.marker.on_deliver(&mut p.packet, &cur, &env, &mut p.rng);
            let mf_after = p.packet.header.identification.raw();
            if mf_after != mf_before && self.obs {
                let scheme = self.marker.name();
                self.emit(pkt, node, TelEvent::Mark { mf: mf_after, scheme });
            }
            if self.filter.block_at_delivery(self.pkts.packet(pkt), &cur) {
                self.drop_packet(pkt, node, DropReason::Filtered);
                return;
            }
            // Commit: the packet leaves the arena here — its storage is
            // reclaimed in place and the slot generation advances, so no
            // stale event can ever resurrect it.
            let flight = self.pkts.free(pkt);
            self.gone_info = (flight.packet.id.0, node);
            if flight.under_fault {
                self.stats.faults.window_delivered += 1;
            }
            if let Some(t0) = self.pending_recovery.take() {
                self.stats.faults.recovery.record(self.now.cycles() - t0);
            }
            let c = self.stats.class_mut(flight.packet.class);
            c.delivered += 1;
            let latency = self.now - flight.injected_at;
            c.latency.record(latency);
            c.total_hops += u64::from(flight.state.hops);
            let hops = flight.state.hops;
            self.live_count -= 1;
            self.delivered_total += 1;
            self.last_progress = self.now.cycles();
            if self.checking && self.cfg.record_paths {
                let want = flight.state.hops as usize + 1;
                let got = flight.path.len();
                if got != want {
                    self.report_violation(
                        flight.packet.id.0,
                        node,
                        "path_consistency",
                        format!("recorded path has {got} nodes, expected hops+1 = {want}"),
                    );
                }
            }
            let pkt_id = flight.packet.id.0;
            let d = Delivered {
                packet: flight.packet,
                injected_at: flight.injected_at,
                delivered_at: self.now,
                hops,
                path: self.cfg.record_paths.then_some(flight.path),
            };
            let key = (self.cur_cycle, self.cur_rank, self.cur_pkey, 0);
            if let Some(ctx) = self.shard.as_mut() {
                ctx.delivered.push((key, d));
            } else {
                self.delivered.push(d);
            }
            if self.obs {
                self.emit_id(
                    pkt_id,
                    node,
                    TelEvent::Deliver {
                        mf: mf_after,
                        latency,
                        hops,
                    },
                );
            }
            return;
        }
        // Intermediate switch: TTL check, then forward.
        if !self.pkts.packet_mut(pkt).header.decrement_ttl() {
            self.drop_packet(pkt, node, DropReason::TtlExpired);
            return;
        }
        self.forward_from(pkt, node, &cur);
    }

    /// Looks up a node's coordinate, division-free when the dense cache
    /// is resident (it always is at Table 3 scale).
    #[inline]
    fn coord_of(&self, node: u32) -> Coord {
        match self.coords.get(node as usize) {
            Some(c) => *c,
            None => self.topo.coord(NodeId(node)),
        }
    }

    fn forward_from(&mut self, pkt: usize, node: u32, cur: &Coord) {
        if self.pkts.state(pkt).hops >= self.cfg.max_hops {
            self.drop_packet(pkt, node, DropReason::HopLimit);
            return;
        }
        let dst = self.coord_of(self.pkts.packet(pkt).dest_node.0);
        // Escaped packets travel the watchdog's recovery router under
        // deterministic selection; everyone else uses the configured
        // pair. `pick_for` upgrades `Random` to productive-first on
        // turn-model routers (the E-RESIL livelock fix).
        let (router, policy) = if self.pkts.flag(pkt, F_ESCAPED) {
            let esc = self
                .cfg
                .watchdog
                .and_then(|w| w.escape)
                .unwrap_or(self.router);
            (esc, SelectionPolicy::First)
        } else {
            (self.router, self.policy)
        };
        // Per-hop re-query against the LIVE fault state: links and
        // switches that died since the previous hop are excluded, ones
        // that healed are available again.
        let ctx = RouteCtx::new(self.topo, &self.live);
        // The candidate buffer lives on the simulation and is recycled
        // every hop — the forwarding hot path allocates nothing.
        let mut cands = std::mem::take(&mut self.cand_buf);
        router.candidates_into(&ctx, cur, &dst, self.pkts.state(pkt), &mut cands);
        let picked = policy.pick_for(&router, &cands, self.pkts.rng_mut(pkt));
        let chosen = picked.map(|i| cands[i]);
        cands.clear();
        self.cand_buf = cands;
        let Some(chosen) = chosen else {
            // Stranded. With a reroute budget the switch parks the
            // packet and retries after a backoff — transient faults may
            // heal. Without one (the default), this is a Blocked drop,
            // as before dynamic faults existed.
            let tried = self.pkts.reroutes[pkt];
            if tried < self.cfg.reroute_retry.retries {
                self.pkts.reroutes[pkt] = tried + 1;
                let at = self.now.cycles() + self.cfg.reroute_retry.delay(tried);
                self.queue.push(SimTime(at), EventKind::Reroute { pkt, node });
                if self.obs {
                    self.emit(
                        pkt,
                        node,
                        TelEvent::Retry {
                            what: RetryKind::Reroute,
                            attempt: tried,
                        },
                    );
                }
            } else if self.cfg.reroute_retry.retries > 0 {
                self.drop_packet(pkt, node, DropReason::RerouteExhausted);
            } else {
                self.drop_packet(pkt, node, DropReason::Blocked);
            }
            return;
        };

        // Fault-coherence invariant: routing already filtered faulty
        // links, so a chosen hop onto one is a simulator bug.
        if self.checking && self.live.is_faulty(self.topo, cur, &chosen.next) {
            self.report_violation(
                self.pkts.packet(pkt).id.0,
                node,
                "fault_coherence",
                format!("routing committed {cur} -> {} over a faulty link", chosen.next),
            );
        }

        // Output-port contention: the port serialises one packet per
        // `service_cycles`; backlog beyond `buffer_packets` is dropped.
        let port = self.port_index(node, chosen.dir);
        let busy_until = self.ports[port];
        let backlog = busy_until.saturating_sub(self.now.cycles()) / self.cfg.service_cycles.max(1);
        if backlog >= u64::from(self.cfg.buffer_packets) {
            self.drop_packet(pkt, node, DropReason::BufferOverflow);
            return;
        }

        // Switch-side marking happens once the output port is decided
        // (Fig. 4: Routing() first, then Δ computed and stored).
        let env = MarkEnv { topo: self.topo };
        let p = self.pkts.cold_mut(pkt);
        let mf_before = p.packet.header.identification.raw();
        self.marker
            .on_forward(&mut p.packet, cur, &chosen.next, &env, &mut p.rng);
        let mf_after = p.packet.header.identification.raw();
        p.state.record_hop(chosen.productive, chosen.dir);
        self.pkts.wire_mf[pkt] = mf_after;
        self.pkts.last_hop_at[pkt] = self.now.cycles();
        self.last_progress = self.now.cycles();

        let depart = busy_until.max(self.now.cycles()) + self.cfg.service_cycles;
        self.ports[port] = depart;
        let arrive = depart + self.cfg.link_latency;
        let next_id = self.topo.index(&chosen.next).0;
        if self.obs {
            if mf_after != mf_before {
                let scheme = self.marker.name();
                self.emit(pkt, node, TelEvent::Mark { mf: mf_after, scheme });
            }
            // Ground truth for adversarial runs: this forward crossed a
            // compromised marking plane (whether or not the field moved
            // — `skip` tampers by *not* moving it).
            if self.compromised.get(node as usize).copied().unwrap_or(false) {
                let behavior = self.adv_behavior;
                self.emit(pkt, node, TelEvent::MarkTamper { mf: mf_after, behavior });
            }
            self.emit(pkt, node, TelEvent::Forward { next: next_id });
        }
        // Cross-shard handoff: when the next switch belongs to another
        // shard, the packet travels through that shard's mailbox and the
        // Arrive fires there. Windows are bounded by one hop's latency
        // (`service_cycles + link_latency`), so the arrival can never
        // land inside the window being executed.
        let handoff_dest = self.shard.as_deref().and_then(|ctx| {
            let dest = ctx.part.owner(NodeId(next_id));
            (dest != ctx.shard).then_some(dest)
        });
        if let Some(dest) = handoff_dest {
            let flight = self.pkts.take(pkt);
            self.live_count -= 1;
            self.gone_info = (flight.packet.id.0, flight.last_node);
            let ctx = self.shard.as_deref_mut().expect("shard mode");
            ctx.inboxes[dest].lock().expect("inbox poisoned").push(Handoff {
                time: arrive,
                pkt,
                node: next_id,
                from: node,
                flight,
            });
            return;
        }
        self.queue.push(
            SimTime(arrive),
            EventKind::Arrive {
                pkt,
                node: next_id,
                from: node,
            },
        );
    }

    /// A parked packet's backoff expired: re-query routing against the
    /// live fault state.
    fn handle_reroute(&mut self, pkt: usize, node: u32) {
        if self.stale_event(pkt) {
            return;
        }
        let node_id = NodeId(node);
        debug_assert!(
            !self.live.is_node_dead(node_id),
            "SwitchDown claims parked packets eagerly"
        );
        let cur = self.coord_of(node);
        self.forward_from(pkt, node, &cur);
    }

    /// Removes every pending event belonging to a packet in `doomed`
    /// (its single Inject/Arrive/Reroute) so nothing fires on the dead.
    fn extract_events_of(&mut self, doomed: &HashSet<usize>) {
        self.queue.extract(|k| match k {
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => doomed.contains(pkt),
            EventKind::Fault { .. } | EventKind::Watchdog => false,
        });
    }

    /// One watchdog sweep: deadlock detection at network level, then
    /// per-packet age checks with two-stage escalation (escape route,
    /// then typed drop). Reschedules itself while packets are live.
    fn handle_watchdog(&mut self) {
        let Some(wd) = self.cfg.watchdog else {
            return;
        };
        if self.live_count == 0 {
            // Quiet network: disarm. The next injection re-arms.
            self.watchdog_armed = false;
            return;
        }
        self.stats.watchdog.checks += 1;
        let now = self.now.cycles();

        // Network-level stall: nothing delivered or forwarded for
        // `stall_cycles` while packets are live — every one of them is
        // parked or retrying against each other. Declare deadlock and
        // recover by claiming all victims with a typed drop.
        if now.saturating_sub(self.last_progress) >= wd.stall_cycles {
            self.stats.watchdog.deadlocks += 1;
            let victims: Vec<usize> = (0..self.pkts.len())
                .filter(|&i| self.pkts.is_resident(i) && self.pkts.flag(i, F_LAUNCHED))
                .collect();
            let doomed: HashSet<usize> = victims.iter().copied().collect();
            self.extract_events_of(&doomed);
            for pkt in victims {
                let node = self.pkts.last_node[pkt];
                if self.obs {
                    self.emit(
                        pkt,
                        node,
                        TelEvent::Watchdog {
                            action: "deadlock_detected",
                        },
                    );
                }
                self.drop_packet(pkt, node, DropReason::DeadlockVictim);
            }
            self.watchdog_armed = false;
            return;
        }

        // Per-packet age checks. A first breach of `max_age` is
        // classified (hopped recently = livelock, hop drought =
        // starvation) and escalated to the escape router. After the
        // escape, the typed drop fires only when the packet is past the
        // grace period *and* has stopped hopping — one still moving
        // under the (deterministic, deadlock-free) escape router is
        // converging on its destination, and `max_hops` bounds it
        // regardless.
        let mut detected: Vec<(usize, bool)> = Vec::new();
        let mut drop_now: Vec<usize> = Vec::new();
        for i in 0..self.pkts.len() {
            if !self.pkts.is_resident(i) || !self.pkts.flag(i, F_LAUNCHED) {
                continue;
            }
            let age = now.saturating_sub(self.pkts.injected_at[i].cycles());
            self.stats.watchdog.max_age_seen = self.stats.watchdog.max_age_seen.max(age);
            let drought = now.saturating_sub(self.pkts.last_hop_at[i]) >= wd.max_age;
            if !self.pkts.flag(i, F_ESCAPED) {
                if age >= wd.max_age {
                    detected.push((i, !drought));
                }
            } else if now.saturating_sub(self.pkts.escaped_at[i]) >= wd.max_age && drought {
                drop_now.push(i);
            }
        }

        for &(i, moving) in &detected {
            if moving {
                self.stats.watchdog.livelocks += 1;
            } else {
                self.stats.watchdog.starvations += 1;
            }
            if self.obs {
                let node = self.pkts.last_node[i];
                let action = if moving {
                    "livelock_detected"
                } else {
                    "starvation_detected"
                };
                self.emit(i, node, TelEvent::Watchdog { action });
            }
        }

        if wd.escape.is_some() {
            // Recovery stage: put detected packets on the escape router
            // with a fresh reroute allowance, and wake any that are
            // parked in a long retry backoff so the escape takes effect
            // promptly.
            let escaping: HashSet<usize> = detected.iter().map(|&(i, _)| i).collect();
            let parked = self
                .queue
                .extract(|k| matches!(k, EventKind::Reroute { pkt, .. } if escaping.contains(pkt)));
            for e in parked {
                if let EventKind::Reroute { pkt, node } = e.kind {
                    self.queue.push(SimTime(now + 1), EventKind::Reroute { pkt, node });
                }
            }
            for (i, _) in detected {
                self.stats.watchdog.escapes += 1;
                self.pkts.set_flag(i, F_ESCAPED, true);
                self.pkts.escaped_at[i] = now;
                self.pkts.reroutes[i] = 0;
                if self.obs {
                    let node = self.pkts.last_node[i];
                    self.emit(i, node, TelEvent::Watchdog { action: "escape" });
                }
            }
        } else {
            // No recovery router configured: escalate straight to the
            // typed drop.
            drop_now.extend(detected.iter().map(|&(i, _)| i));
        }

        if !drop_now.is_empty() {
            let doomed: HashSet<usize> = drop_now.iter().copied().collect();
            self.extract_events_of(&doomed);
            for pkt in drop_now {
                let node = self.pkts.last_node[pkt];
                self.drop_packet(pkt, node, DropReason::LivelockEscaped);
            }
        }

        if self.live_count > 0 {
            self.queue
                .push(SimTime(now + wd.check_period.max(1)), EventKind::Watchdog);
        } else {
            self.watchdog_armed = false;
        }
    }

    /// The configuration this simulation was built with.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The topology this simulation runs over (engine partitioning).
    #[doc(hidden)]
    #[must_use]
    pub fn topology(&self) -> &'a Topology {
        self.topo
    }

    // ------------------------------------------------------------------
    // Sharded-engine support (`ddpm-engine`). Everything below is
    // `#[doc(hidden)]` plumbing: a master simulation is split into
    // per-shard simulations that execute bounded cycle windows, and the
    // coordinator merges their captured artefacts back into the master
    // in canonical order — bit-identical to a serial run.
    // ------------------------------------------------------------------

    /// Splits this simulation into one simulation per shard of `part`,
    /// moving every in-flight packet and its pending event to the shard
    /// that will process the event: `Inject`s go to the owner of the
    /// packet's source switch, `Arrive`/`Reroute`s (present when the
    /// master was restored from a mid-run checkpoint) to the owner of
    /// the event's switch. Returns the shard simulations, the drained
    /// fault schedule (coordinator-owned, in schedule order), and the
    /// pending watchdog sweep time, if one was armed.
    #[doc(hidden)]
    pub fn engine_split(
        &mut self,
        part: &Arc<Partition>,
        inboxes: &Inboxes,
    ) -> (Vec<Simulation<'a>>, Vec<(u64, FaultEvent)>, Option<u64>) {
        let capture = self.obs;
        // Staged (bounded-memory) injections materialise here, in FIFO
        // order — identical handle/seed assignment to the serial pump,
        // so staged runs stay bit-reproducible across engines.
        while let Some((t, p)) = self.pending.pop_front() {
            self.schedule(SimTime(t), p);
        }
        let selftest_at = if self.checking {
            self.checker.selftest_pending()
        } else {
            None
        };
        let mut shard_cfg = self.cfg.clone();
        // Shards never own sinks or profilers; the master replays the
        // merged event stream into its own telemetry.
        shard_cfg.telemetry = TelemetryConfig::default();
        let mut sims: Vec<Simulation<'a>> = (0..part.shards())
            .map(|s| {
                let mut sim = Simulation::with_filter(
                    self.topo,
                    &self.live,
                    self.router,
                    self.policy,
                    self.marker,
                    self.filter,
                    shard_cfg.clone(),
                );
                sim.obs = capture;
                // Degraded-window accounting is coordinator-owned.
                sim.degraded_since = None;
                // Port busy times carry over on a restored master (all
                // zero on a fresh split); a shard only ever touches the
                // ports of switches it owns.
                sim.ports.copy_from_slice(&self.ports);
                sim.gone_info = self.gone_info;
                sim.shard = Some(Box::new(ShardCtx {
                    shard: s,
                    part: Arc::clone(part),
                    inboxes: Arc::clone(inboxes),
                    capture,
                    selftest_at,
                    selftest_done: false,
                    events: Vec::new(),
                    delivered: Vec::new(),
                    drops: Vec::new(),
                    violations: Vec::new(),
                    selftest_candidate: None,
                    min_inject: None,
                    max_processed: None,
                }));
                sim.pkts.ensure_len(self.pkts.len());
                sim
            })
            .collect();
        let mut faults: Vec<(u64, FaultEvent)> = Vec::new();
        let mut wd_due: Option<u64> = None;
        // Which shard will fire each packet's (single) pending event —
        // the shard that must also hold the packet's storage.
        let mut owner_of: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        while let Some(ev) = self.queue.pop() {
            match ev.kind {
                EventKind::Inject { pkt } => {
                    let owner = part.owner(self.pkts.packet(pkt).true_source);
                    owner_of.insert(pkt, owner);
                    sims[owner].queue.push(ev.time, EventKind::Inject { pkt });
                }
                EventKind::Arrive { pkt, node, from } => {
                    let owner = part.owner(NodeId(node));
                    owner_of.insert(pkt, owner);
                    sims[owner]
                        .queue
                        .push(ev.time, EventKind::Arrive { pkt, node, from });
                }
                EventKind::Reroute { pkt, node } => {
                    let owner = part.owner(NodeId(node));
                    owner_of.insert(pkt, owner);
                    sims[owner].queue.push(ev.time, EventKind::Reroute { pkt, node });
                }
                EventKind::Fault { event } => faults.push((ev.time.0, event)),
                EventKind::Watchdog => wd_due = Some(ev.time.0),
            }
        }
        for idx in 0..self.pkts.len() {
            if let Some(flight) = self.pkts.take_if_resident(idx) {
                let owner = owner_of
                    .get(&idx)
                    .copied()
                    .unwrap_or_else(|| part.owner(flight.packet.true_source));
                // Already-launched packets (restored mid-flight) count
                // toward the owning shard's live total from the start;
                // fresh packets are counted at their injection event.
                if flight.launched {
                    sims[owner].live_count += 1;
                }
                sims[owner].pkts.put(idx, flight);
            }
        }
        (sims, faults, wd_due)
    }

    /// Runs every pending event with fire time strictly below `end` —
    /// one conservative window. Shard mode only.
    #[doc(hidden)]
    pub fn run_window(&mut self, end: u64) {
        debug_assert!(self.shard.is_some(), "run_window outside shard mode");
        while let Some(ev) = self.queue.pop_before(end) {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            let (cycle, rank, pkey, _) = ev.canonical_key();
            self.cur_cycle = cycle;
            self.cur_rank = rank;
            self.cur_pkey = pkey;
            self.emit_seq = 0;
            if let Some(ctx) = self.shard.as_deref_mut() {
                ctx.max_processed = Some(cycle);
            }
            match ev.kind {
                EventKind::Inject { pkt } => self.handle_inject(pkt),
                EventKind::Arrive { pkt, node, .. } => self.handle_arrive(pkt, node),
                EventKind::Reroute { pkt, node } => self.handle_reroute(pkt, node),
                EventKind::Fault { .. } | EventKind::Watchdog => {
                    unreachable!("global events are coordinator-owned in shard mode")
                }
            }
            self.window_post_event(&ev);
        }
    }

    /// Shard-mode post-event hook: captures the first self-test
    /// candidate. (The per-event conservation check moves to the
    /// engine's barrier, where the terms of the global sum exist.)
    fn window_post_event(&mut self, ev: &Event) {
        let Some(ctx) = self.shard.as_deref() else {
            return;
        };
        let Some(at) = ctx.selftest_at else { return };
        if ctx.selftest_done || self.now.cycles() < at {
            return;
        }
        let (pkt_id, node) = match ev.kind {
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => {
                if self.pkts.is_resident(pkt) {
                    (self.pkts.packet(pkt).id.0, self.pkts.last_node[pkt])
                } else {
                    // The event's packet just left this shard mid-event —
                    // freed on delivery/drop, or handed off.
                    self.gone_info
                }
            }
            EventKind::Fault { .. } | EventKind::Watchdog => (0, u32::MAX),
        };
        // `u32::MAX` sorts the candidate after every emission of its
        // event — where the serial post-event check fires.
        let key = (self.cur_cycle, self.cur_rank, self.cur_pkey, u32::MAX);
        let ctx = self.shard.as_deref_mut().expect("shard mode");
        ctx.selftest_done = true;
        ctx.selftest_candidate = Some((key, pkt_id, node));
    }

    /// Drains this shard's mailbox: installs handed-off packets and
    /// queues their arrivals. Call after the handoff barrier (every
    /// sender finished writing) and before reporting.
    #[doc(hidden)]
    pub fn install_inbox(&mut self) {
        let Some(ctx) = self.shard.as_deref() else {
            return;
        };
        let items: Vec<Handoff> =
            std::mem::take(&mut *ctx.inboxes[ctx.shard].lock().expect("inbox poisoned"));
        for h in items {
            self.pkts.put(h.pkt, h.flight);
            self.live_count += 1;
            self.queue.push(
                SimTime(h.time),
                EventKind::Arrive {
                    pkt: h.pkt,
                    node: h.node,
                    from: h.from,
                },
            );
        }
    }

    /// Drains the capture buffers and snapshots progress state for the
    /// coordinator. Shard mode only.
    #[doc(hidden)]
    pub fn take_window_report(&mut self) -> WindowReport {
        let next_time = self.queue.next_time();
        let live = self.live_count;
        let last_progress = self.last_progress;
        let (injected, delivered_total, dropped_total) =
            (self.injected_total, self.delivered_total, self.dropped_total);
        let ctx = self.shard.as_deref_mut().expect("shard mode");
        WindowReport {
            next_time,
            min_inject: ctx.min_inject.take(),
            last_progress,
            live,
            injected,
            delivered_total,
            dropped_total,
            max_processed: ctx.max_processed,
            events: std::mem::take(&mut ctx.events),
            delivered: std::mem::take(&mut ctx.delivered),
            drops: std::mem::take(&mut ctx.drops),
            violations: std::mem::take(&mut ctx.violations),
            selftest: ctx.selftest_candidate.take(),
        }
    }

    /// Fire time of the earliest pending event (engine scheduling).
    #[doc(hidden)]
    #[must_use]
    pub fn next_event_time(&self) -> Option<u64> {
        self.queue.next_time()
    }

    /// Applies one coordinator-ordered fault to this shard: updates the
    /// live fault state and claims doomed events from the local queue,
    /// killing their packets silently (stats only). Returns the victims
    /// so the coordinator can write the drop log and events in serial
    /// order.
    #[doc(hidden)]
    pub fn shard_apply_fault(&mut self, ev: FaultEvent) -> Vec<FaultVictim> {
        self.live.apply(self.topo, ev);
        let (lost, reason) = match ev {
            FaultEvent::LinkDown { a, b } => (
                self.queue.extract(|k| {
                    matches!(k, EventKind::Arrive { node, from, .. }
                        if (NodeId(*node), NodeId(*from)) == (a, b)
                            || (NodeId(*node), NodeId(*from)) == (b, a))
                }),
                DropReason::LinkDown,
            ),
            FaultEvent::SwitchDown { node } => (
                self.queue.extract(|k| match k {
                    EventKind::Arrive { node: n, from, .. } => *n == node.0 || *from == node.0,
                    EventKind::Reroute { node: n, .. } => *n == node.0,
                    EventKind::Inject { .. } | EventKind::Fault { .. } | EventKind::Watchdog => {
                        false
                    }
                }),
                DropReason::SwitchDown,
            ),
            FaultEvent::LinkUp { .. } | FaultEvent::SwitchUp { .. } => return Vec::new(),
        };
        lost.into_iter()
            .filter_map(|e| match e.kind {
                EventKind::Arrive { pkt, node, .. } | EventKind::Reroute { pkt, node } => {
                    let pkt_id = self.pkts.packet(pkt).id.0;
                    self.account_drop(pkt, reason);
                    Some(FaultVictim {
                        time: e.time.0,
                        handle: pkt,
                        pkt_id,
                        node,
                    })
                }
                _ => None,
            })
            .collect()
    }

    /// Gathers watchdog-relevant state for every live launched packet in
    /// this shard, in handle order.
    #[doc(hidden)]
    #[must_use]
    pub fn watchdog_report(&self) -> Vec<WdPacket> {
        (0..self.pkts.len())
            .filter(|&i| self.pkts.is_resident(i) && self.pkts.flag(i, F_LAUNCHED))
            .map(|handle| WdPacket {
                handle,
                pkt_id: self.pkts.packet(handle).id.0,
                injected_at: self.pkts.injected_at[handle].cycles(),
                last_hop_at: self.pkts.last_hop_at[handle],
                escaped: self.pkts.flag(handle, F_ESCAPED),
                escaped_at: self.pkts.escaped_at[handle],
                last_node: self.pkts.last_node[handle],
            })
            .collect()
    }

    /// Executes coordinator-ordered watchdog actions against resident
    /// packets (non-resident handles are another shard's business).
    /// Drops are silent here — the coordinator writes the log.
    #[doc(hidden)]
    pub fn exec_wd_actions(&mut self, actions: &[WdAction], now: u64) {
        for a in actions {
            let pkt = a.handle;
            if !self.pkts.is_resident(pkt) {
                continue;
            }
            match a.kind {
                WdActionKind::Escape => {
                    // Wake a parked retry so the escape takes effect
                    // promptly, exactly like the serial sweep.
                    let parked = self
                        .queue
                        .extract(|k| matches!(k, EventKind::Reroute { pkt: p, .. } if *p == pkt));
                    for e in parked {
                        if let EventKind::Reroute { pkt, node } = e.kind {
                            self.queue
                                .push(SimTime(now + 1), EventKind::Reroute { pkt, node });
                        }
                    }
                    self.pkts.set_flag(pkt, F_ESCAPED, true);
                    self.pkts.escaped_at[pkt] = now;
                    self.pkts.reroutes[pkt] = 0;
                }
                WdActionKind::Drop(reason) => {
                    self.queue.extract(|k| match k {
                        EventKind::Inject { pkt: p }
                        | EventKind::Arrive { pkt: p, .. }
                        | EventKind::Reroute { pkt: p, .. } => *p == pkt,
                        EventKind::Fault { .. } | EventKind::Watchdog => false,
                    });
                    self.account_drop(pkt, reason);
                }
            }
        }
    }

    // --- master-side merge sinks -------------------------------------

    /// Is the master observing lifecycle events? Mirrors what the
    /// shards captured.
    #[doc(hidden)]
    #[must_use]
    pub fn observing(&self) -> bool {
        self.obs
    }

    /// Replays one merged lifecycle event into the master's telemetry
    /// and trace tail.
    #[doc(hidden)]
    pub fn merged_event(&mut self, ev: PacketEvent) {
        if let Some(t) = self.tele.as_mut() {
            if t.events_on() {
                t.record(ev);
            }
        }
        self.checker.record_tail(ev);
    }

    /// Appends one merged delivery to the master's delivered log.
    #[doc(hidden)]
    pub fn merged_delivered(&mut self, d: Delivered) {
        self.delivered.push(d);
    }

    /// Appends one merged drop to the master's drop log (with its event,
    /// when observing). Used for drops the coordinator ordered itself.
    #[doc(hidden)]
    pub fn merged_drop(&mut self, cycle: u64, id: PacketId, node: u32, reason: DropReason) {
        self.drops.push((id, reason));
        if self.obs {
            self.merged_event(PacketEvent {
                cycle,
                pkt: id.0,
                node,
                kind: TelEvent::Drop {
                    reason: reason.as_str(),
                },
            });
        }
    }

    /// Appends one merged drop whose `Drop` event already travelled in
    /// the merged event stream (shard-captured drops).
    #[doc(hidden)]
    pub fn merged_drop_entry(&mut self, id: PacketId, reason: DropReason) {
        self.drops.push((id, reason));
    }

    /// Records a merged violation in the master's checker, preserving
    /// the serial panic behaviour. The violation's telemetry event
    /// travels separately in the merged event stream.
    #[doc(hidden)]
    pub fn merged_violation(&mut self, v: Violation) {
        let (invariant, cycle, pkt, node) = (v.invariant, v.cycle, v.pkt, v.node);
        let panic_now = self.checker.report(v);
        if panic_now {
            let v = self.checker.violations().last().expect("just pushed");
            panic!(
                "invariant violation `{invariant}` at cycle {cycle}, pkt {pkt}, node {node}: {}",
                v.detail
            );
        }
    }

    /// The master's pending self-test cycle, if the checker is armed.
    #[doc(hidden)]
    #[must_use]
    pub fn selftest_pending(&self) -> Option<u64> {
        if self.checking {
            self.checker.selftest_pending()
        } else {
            None
        }
    }

    /// Marks the master's self-test as fired (coordinator election).
    #[doc(hidden)]
    pub fn mark_selftest_fired(&mut self) {
        self.checker.mark_selftest_fired();
    }

    /// The master's current simulated time, in cycles (coordinator
    /// seeding and checkpoint-cycle reporting).
    #[doc(hidden)]
    #[must_use]
    pub fn now_cycles(&self) -> u64 {
        self.now.cycles()
    }

    /// The master's `(degraded_since, pending_recovery)` cycles — the
    /// coordinator seeds its own copies from these so a resumed run
    /// continues the open degraded window exactly.
    #[doc(hidden)]
    #[must_use]
    pub fn degraded_state(&self) -> (Option<u64>, Option<u64>) {
        (self.degraded_since, self.pending_recovery)
    }

    /// Cycle of the master's last recorded global progress (coordinator
    /// arming floor on resume).
    #[doc(hidden)]
    #[must_use]
    pub fn progress_cycle(&self) -> u64 {
        self.last_progress
    }

    /// Merges the shard simulations and the coordinator's residual
    /// state back into this master, restoring the exact serial form of
    /// the system state: a gathered master snapshots, finalizes and
    /// resumes identically under either engine. Consumes the shards.
    #[doc(hidden)]
    pub fn engine_gather(&mut self, mut shards: Vec<Simulation<'a>>, r: EngineResidual) {
        // Rebuild the master queue from scratch: the split drained the
        // old one, advancing its floor past the fire times of events
        // that are still pending in the shards. Insertion order —
        // faults in schedule order, then the watchdog, then packet
        // events — reproduces the serial queue's tie-breaks: `Fault`
        // rank sorts first with sequence order among equals, the
        // watchdog is unique, and a live packet has exactly one pending
        // event so packet keys never tie.
        let mut q = EventQueue::with_horizon(self.queue.horizon());
        for &(t, ev) in &r.faults {
            q.push(SimTime(t), EventKind::Fault { event: ev });
        }
        if let Some(t) = r.wd_due {
            q.push(SimTime(t), EventKind::Watchdog);
        }
        let mut live = 0u64;
        let mut last_progress = self.last_progress;
        let mut latest: Option<(u64, (u64, u32))> = None;
        for shard in &mut shards {
            // Port busy-until times: a shard only ever touches the ports
            // of switches it owns, so copying each shard's owned slices
            // reassembles the exact serial port table (reservations can
            // extend past the pause barrier into the next segment).
            {
                let ctx = shard.shard.as_ref().expect("gather expects shard sims");
                for n in 0..self.topo.num_nodes() as usize {
                    if ctx.part.owner(NodeId(n as u32)) == ctx.shard {
                        let a = n * self.port_stride;
                        let b = a + self.port_stride;
                        self.ports[a..b].copy_from_slice(&shard.ports[a..b]);
                    }
                }
            }
            while let Some(ev) = shard.queue.pop() {
                q.push(ev.time, ev.kind);
            }
            for idx in 0..shard.pkts.len() {
                // Generations are per-slot free counts: the master's
                // base plus the shard's delta equals the serial count.
                let delta = shard.pkts.gens[idx];
                if delta != 0 {
                    let base = self.pkts.gens[idx];
                    self.pkts.gens[idx] = base.wrapping_add(delta);
                }
                if let Some(flight) = shard.pkts.take_if_resident(idx) {
                    self.pkts.put(idx, flight);
                }
            }
            self.pkts.peak_bytes = self.pkts.peak_bytes.max(shard.pkts.peak_bytes);
            live += shard.live_count;
            last_progress = last_progress.max(shard.last_progress);
            let t = shard.now.cycles();
            if latest.is_none_or(|(prev, _)| t >= prev) {
                latest = Some((t, shard.gone_info));
            }
            let s = &shard.stats;
            self.stats.benign.absorb(&s.benign);
            self.stats.attack.absorb(&s.attack);
            self.stats.faults.window_injected += s.faults.window_injected;
            self.stats.faults.window_delivered += s.faults.window_delivered;
            self.injected_total += shard.injected_total;
            self.delivered_total += shard.delivered_total;
            self.dropped_total += shard.dropped_total;
        }
        self.queue = q;
        self.live_count = live;
        self.last_progress = last_progress;
        if let Some((_, gone)) = latest {
            self.gone_info = gone;
        }
        self.now = SimTime(self.now.cycles().max(r.end_time));
        self.watchdog_armed = r.wd_due.is_some();
        self.live = r.live_faults;
        self.degraded_since = r.degraded_since;
        self.pending_recovery = r.pending_recovery;
        self.stats.faults.events_applied += r.fstats.events_applied;
        self.stats.faults.degraded_cycles += r.fstats.degraded_cycles;
        self.stats.faults.recovery.merge(&r.fstats.recovery);
        self.stats.watchdog.checks += r.wstats.checks;
        self.stats.watchdog.livelocks += r.wstats.livelocks;
        self.stats.watchdog.starvations += r.wstats.starvations;
        self.stats.watchdog.deadlocks += r.wstats.deadlocks;
        self.stats.watchdog.escapes += r.wstats.escapes;
        self.stats.watchdog.max_age_seen =
            self.stats.watchdog.max_age_seen.max(r.wstats.max_age_seen);
    }

    /// Mutable telemetry access for the engine profile attachment.
    #[doc(hidden)]
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.tele.as_deref_mut()
    }

    /// Is the invariant checker active? The coordinator mirrors the
    /// serial engine's hoisted `checking` flag with this.
    #[doc(hidden)]
    #[must_use]
    pub fn checking(&self) -> bool {
        self.checking
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use crate::mark::NoMarking;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, L4};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId, class: TrafficClass) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(4000, 53),
            true_source: src,
            dest_node: dst,
            class,
        }
    }

    #[test]
    fn single_packet_delivery_latency() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let cfg = SimConfig {
            link_latency: 2,
            service_cycles: 4,
            ..SimConfig::default()
        };
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // (0,0) -> (3,0): 3 hops, each hop = 4 service + 2 link = 6.
        sim.schedule(
            SimTime(10),
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        assert_eq!(sim.delivered().len(), 1);
        let d = &sim.delivered()[0];
        assert_eq!(d.hops, 3);
        assert_eq!(d.latency(), 18);
        assert_eq!(d.delivered_at, SimTime(28));
    }

    #[test]
    fn paths_recorded_when_enabled() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default().with_paths(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        sim.run();
        let d = &sim.delivered()[0];
        let path = d.path.as_ref().unwrap();
        // (0,0) -> (1,0) -> (1,1): dimension order.
        assert_eq!(path, &[NodeId(0), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn port_serialisation_queues_packets() {
        // Two packets leaving the same switch on the same port: the
        // second is delayed by one service time.
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        for id in 0..2 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(4), TrafficClass::Benign),
            );
        }
        sim.run();
        let times: Vec<u64> = sim.delivered().iter().map(|d| d.delivered_at.0).collect();
        assert_eq!(times, vec![11, 21]);
    }

    #[test]
    fn buffer_overflow_drops_under_flood() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            buffer_packets: 4,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // 20 packets injected simultaneously into one port of capacity 4.
        for id in 0..20 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(4), TrafficClass::Attack),
            );
        }
        let stats = sim.run();
        assert!(stats.attack.dropped_buffer > 0, "flood must overflow");
        assert_eq!(
            stats.attack.delivered + stats.attack.dropped(),
            stats.attack.injected
        );
    }

    #[test]
    fn ttl_expiry_drops() {
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        let mut p = mk_packet(&map, 1, NodeId(0), NodeId(63), TrafficClass::Benign);
        p.header.ttl = 3; // needs 14 hops
        sim.schedule(SimTime::ZERO, p);
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_ttl, 1);
        assert_eq!(stats.benign.delivered, 0);
    }

    #[test]
    fn blocked_routing_drops() {
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        // Isolate (0,0) partially: XY from (0,0) to (2,0) needs east.
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_blocked, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::mesh2d(6);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                &topo,
                &faults,
                Router::fully_adaptive_for(&topo),
                SelectionPolicy::Random,
                &marker,
                SimConfig::seeded(seed).with_paths(),
            );
            for id in 0..50u64 {
                let s = NodeId((id % 36) as u32);
                let d = NodeId(((id * 7 + 3) % 36) as u32);
                if s == d {
                    continue;
                }
                let mut p = mk_packet(&map, id, s, d, TrafficClass::Benign);
                p.header.ttl = 64;
                sim.schedule(SimTime(id), p);
            }
            sim.run();
            sim.delivered()
                .iter()
                .map(|d| (d.packet.id, d.delivered_at, d.path.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123), "same seed must reproduce exactly");
        assert_ne!(run(123), run(456), "different seeds should diverge");
    }

    #[test]
    fn injection_filter_quarantines_source() {
        struct BlockNode0;
        impl Filter for BlockNode0 {
            fn block_at_injection(&self, _pkt: &Packet, src: &Coord) -> bool {
                *src == Coord::new(&[0, 0])
            }
        }
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let filter = BlockNode0;
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            &filter,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Attack),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 2, NodeId(1), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
        assert_eq!(stats.benign.delivered, 1);
    }

    #[test]
    fn adaptive_routing_spreads_over_multiple_paths() {
        // §4.1: "Depending on the network's state and the adaptivity of
        // the routing, packets with the same source and the same
        // destination may take very different paths."
        let topo = Topology::mesh2d(6);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &marker,
            SimConfig::seeded(5).with_paths(),
        );
        for id in 0..40u64 {
            sim.schedule(
                SimTime(id * 3),
                mk_packet(&map, id, NodeId(0), NodeId(35), TrafficClass::Benign),
            );
        }
        sim.run();
        let distinct: std::collections::HashSet<_> = sim
            .delivered()
            .iter()
            .map(|d| d.path.clone().unwrap())
            .collect();
        assert!(distinct.len() > 5, "expected many distinct paths");
    }

    #[test]
    fn link_down_mid_flight_claims_packet() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        // Injected at 0, the packet departs (0,0) at cycle 4 and is on
        // the wire to (1,0) until cycle 6. The link dies at cycle 5.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            5,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_link_down, 1, "lost on the wire");
        assert_eq!(stats.benign.delivered, 0);
        assert_eq!(sim.drops(), &[(ddpm_net::PacketId(1), DropReason::LinkDown)]);
        assert_eq!(stats.faults.events_applied, 1);
        assert!(stats.accounted(0), "fail-stop, never silent loss");
    }

    #[test]
    fn switch_down_fail_stop_claims_queued_packets() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // Switch (1,0) dies at cycle 15 with a backlog serialising
        // through it; everything committed to it is claimed.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            15,
            FaultEvent::SwitchDown { node: NodeId(4) },
        )]));
        for id in 0..6 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(8), TrafficClass::Benign),
            );
        }
        let stats = sim.run();
        assert!(stats.benign.dropped_switch_down > 0, "fail-stop losses");
        assert!(
            stats.benign.delivered < 6,
            "the outage must cost deliveries"
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn reroute_retry_rides_out_a_transient_fault() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(8, 4, 64))
                .build(),
        );
        // XY from (0,0) to (2,0) needs the east link, down during
        // [1, 50): without retries this is a Blocked drop (see
        // `blocked_routing_drops`); with them the switch parks the
        // packet until the repair.
        sim.schedule_faults(&FaultSchedule::from_events(vec![
            (
                1,
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(4),
                },
            ),
            (
                50,
                FaultEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(4),
                },
            ),
        ]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1, "the packet waits out the outage");
        assert_eq!(stats.benign.dropped(), 0);
        assert_eq!(stats.faults.window_injected, 1);
        assert_eq!(stats.faults.window_delivered, 1);
        assert_eq!(stats.faults.window_delivery_ratio(), 1.0);
        assert_eq!(stats.faults.recovery.count, 1, "time-to-recovery sampled");
        assert!(stats.faults.degraded_cycles >= 49);
    }

    #[test]
    fn reroute_exhaustion_is_a_typed_drop() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(2, 4, 32))
                .build(),
        );
        // The east link never comes back: the budget runs dry.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_reroute, 1);
        assert_eq!(stats.benign.dropped_blocked, 0, "typed, not generic");
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::RerouteExhausted)]
        );
    }

    #[test]
    fn inject_retry_waits_out_a_source_switch_outage() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(8, 4, 64))
                .build(),
        );
        sim.schedule_faults(&FaultSchedule::from_events(vec![
            (1, FaultEvent::SwitchDown { node: NodeId(0) }),
            (40, FaultEvent::SwitchUp { node: NodeId(0) }),
        ]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.injected, 1, "counted once across retries");
        assert_eq!(stats.benign.delivered, 1);
        assert!(
            sim.delivered()[0].delivered_at > SimTime(40),
            "held until the switch came back"
        );
    }

    #[test]
    fn source_down_without_retries_is_a_typed_drop() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::SwitchDown { node: NodeId(0) },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_source_down, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::SourceDown)]
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn adaptive_routing_detours_around_a_dynamic_fault() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        // The per-hop live re-query in action: an adaptive router picks
        // a different productive port when its preferred link dies
        // mid-journey — no retries needed.
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::First,
            &marker,
            SimConfig::default().with_paths(),
        );
        // Kill the (0,0)–(1,0) link before the packet leaves; minimal
        // adaptive still has the (0,0)–(0,1) productive hop.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        let path = sim.delivered()[0].path.as_ref().unwrap();
        assert_eq!(
            path,
            &[NodeId(0), NodeId(1), NodeId(5)],
            "detoured via (0,1)"
        );
    }

    #[test]
    fn watchdog_starvation_escape_rescues_a_blocked_packet() {
        use crate::watchdog::WatchdogConfig;
        // XY from (0,0) to (1,1) is blocked by a dead east link and a
        // huge retry backoff parks the packet far beyond max_age. The
        // watchdog classifies it starved (no hop progress) and escapes
        // it onto minimal-adaptive, which detours via (0,1) — rescued,
        // not dropped.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(100, 512, 512))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 64,
                stall_cycles: 1 << 40,
                escape: Some(Router::MinimalAdaptive),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1, "escape route rescued it");
        assert_eq!(stats.benign.dropped(), 0);
        assert_eq!(stats.watchdog.starvations, 1);
        assert_eq!(stats.watchdog.escapes, 1);
        assert_eq!(stats.watchdog.livelocks, 0);
        assert!(stats.watchdog.checks >= 4);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn watchdog_deadlock_is_a_typed_drop_never_a_hang() {
        use crate::watchdog::WatchdogConfig;
        // Same blocked packet, but the stall detector is armed tighter
        // than the retry backoff: the network makes no progress, so the
        // watchdog declares deadlock and claims the packet with a typed
        // reason instead of letting retries spin.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(1000, 512, 512))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 1 << 40,
                stall_cycles: 128,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_deadlock, 1);
        assert_eq!(stats.watchdog.deadlocks, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::DeadlockVictim)]
        );
        assert!(stats.accounted(0));
        assert!(
            stats.end_time < 1000,
            "deadlock recovery must cut the retry spin short"
        );
    }

    #[test]
    fn watchdog_escalates_to_livelock_escaped_when_escape_also_fails() {
        use crate::watchdog::WatchdogConfig;
        // The escape router is dimension-order — blocked by the same
        // dead link. One max_age after the escape, the second escalation
        // stage fires: the typed LivelockEscaped drop.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(1000, 32, 32))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 64,
                stall_cycles: 1 << 40,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_livelock, 1);
        assert_eq!(stats.watchdog.escapes, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::LivelockEscaped)]
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn watchdog_classifies_a_moving_overage_packet_as_livelock() {
        use crate::watchdog::WatchdogConfig;
        // With max_age tightened below normal transit time, a healthy
        // long-haul packet is over age *while still making hops* — the
        // livelock classification — and the DOR escape still lands it.
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .watchdog(WatchdogConfig {
                check_period: 4,
                max_age: 8,
                stall_cycles: 1 << 40,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(63), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        assert_eq!(stats.watchdog.livelocks, 1);
        assert_eq!(stats.watchdog.starvations, 0);
        assert!(stats.watchdog.max_age_seen >= 8);
    }

    #[test]
    fn invariant_selftest_injects_a_recorded_violation() {
        use crate::invariant::InvariantConfig;
        // The chaos self-test: a synthetic violation at a chosen cycle
        // proves the detection → record → trace-tail pipeline works
        // end-to-end (the soak harness replays bundles through this).
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .invariants(InvariantConfig {
                selftest_at: Some(10),
                ..InvariantConfig::recording()
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        sim.run();
        let vs = sim.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].invariant, "selftest");
        assert!(vs[0].cycle >= 10);
        assert!(
            !sim.trace_tail().is_empty(),
            "the repro tail captured events"
        );
        // Determinism: a second identical run reports the identical
        // violation identity — the property replay relies on.
        let mut sim2 = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .invariants(InvariantConfig {
                    selftest_at: Some(10),
                    ..InvariantConfig::recording()
                })
                .build(),
        );
        sim2.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        sim2.run();
        assert_eq!(sim2.violations()[0].identity(), vs[0].identity());
    }

    #[test]
    fn link_corruption_is_detected_and_dropped() {
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            bit_error_rate: 0.05,
            ..SimConfig::seeded(13)
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        for id in 0..300u64 {
            sim.schedule(
                SimTime(id * 4),
                mk_packet(&map, id, NodeId(0), NodeId(63), TrafficClass::Benign),
            );
        }
        let stats = sim.run();
        assert!(
            stats.benign.dropped_corrupt > 0,
            "5% BER over 14 hops must corrupt some packets"
        );
        assert!(stats.benign.delivered > 0, "most packets still arrive");
        assert!(stats.accounted(0));
        // Single-bit damage is always caught: no delivered packet can
        // carry a corrupted header (checksum would have failed).
        for d in sim.delivered() {
            assert!(ddpm_net::Ipv4Header::parse(&d.packet.header.to_bytes()).is_ok());
        }
    }
}
