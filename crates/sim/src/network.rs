//! The simulation engine.

use crate::config::SimConfig;
use crate::event::{Event, EventKind, EventQueue};
use crate::filter::{Filter, NoFilter};
use crate::invariant::{InvariantChecker, Violation};
use crate::mark::{MarkEnv, Marker};
use crate::stats::SimStats;
use crate::time::SimTime;
use ddpm_net::{Packet, TrafficClass};
use ddpm_routing::{RouteCtx, RouteState, Router, SelectionPolicy};
use ddpm_telemetry::{EventKind as TelEvent, PacketEvent, RetryKind, Telemetry};
use ddpm_topology::{Coord, Direction, FaultEvent, FaultSchedule, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Why a packet was discarded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DropReason {
    /// Output buffer full — congestion loss, the resource DDoS exhausts.
    BufferOverflow,
    /// TTL reached zero.
    TtlExpired,
    /// Routing offered no admissible output port (Fig. 2 blocking).
    Blocked,
    /// Per-packet hop limit hit (livelock guard).
    HopLimit,
    /// Discarded by an installed mitigation filter.
    Filtered,
    /// Header damaged in transit; checksum verification failed at the
    /// receiving switch.
    Corrupted,
    /// Lost fail-stop at a switch that failed: the packet was queued at
    /// the switch or committed to one of its links when it died.
    SwitchDown,
    /// Lost on the wire of a link that failed mid-flight.
    LinkDown,
    /// Stranded by faults with no admissible output port; the reroute
    /// retry budget ([`crate::RetryPolicy`]) ran out before the network
    /// healed.
    RerouteExhausted,
    /// The packet's source switch was down at injection time and the
    /// injection retry budget ran out.
    SourceDown,
    /// The liveness watchdog escalated: the packet exceeded
    /// [`crate::WatchdogConfig::max_age`], was rerouted onto the escape
    /// router, and still failed to arrive within another `max_age`.
    LivelockEscaped,
    /// The liveness watchdog declared a network-wide deadlock (no
    /// delivery or forward for [`crate::WatchdogConfig::stall_cycles`])
    /// and dropped every live packet — a typed outcome where a lesser
    /// simulator would hang.
    DeadlockVictim,
}

impl DropReason {
    /// Stable identifier used in telemetry `drop` events.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Self::BufferOverflow => "buffer_overflow",
            Self::TtlExpired => "ttl_expired",
            Self::Blocked => "blocked",
            Self::HopLimit => "hop_limit",
            Self::Filtered => "filtered",
            Self::Corrupted => "corrupted",
            Self::SwitchDown => "switch_down",
            Self::LinkDown => "link_down",
            Self::RerouteExhausted => "reroute_exhausted",
            Self::SourceDown => "source_down",
            Self::LivelockEscaped => "livelock_escaped",
            Self::DeadlockVictim => "deadlock_victim",
        }
    }
}

/// A packet that reached its destination compute node.
#[derive(Clone, Debug)]
pub struct Delivered {
    /// The packet as received — its header carries the final marking
    /// field the victim analyses.
    pub packet: Packet,
    /// When the source compute node injected it.
    pub injected_at: SimTime,
    /// When the destination compute node received it.
    pub delivered_at: SimTime,
    /// Switch-to-switch hops taken.
    pub hops: u32,
    /// Full node path, present when [`SimConfig::record_paths`] is set.
    pub path: Option<Vec<NodeId>>,
}

impl Delivered {
    /// End-to-end latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.delivered_at - self.injected_at
    }
}

struct InFlight {
    packet: Packet,
    state: RouteState,
    injected_at: SimTime,
    path: Vec<NodeId>,
    /// Injection attempts made against a downed source switch.
    inject_attempts: u32,
    /// Reroute retries consumed while stranded (cumulative per packet).
    reroutes: u32,
    /// True if injected while at least one fault was active (feeds the
    /// fault-window delivery ratio).
    under_fault: bool,
    /// False once delivered or dropped. Guards handlers against stale
    /// events (defence in depth next to eager queue extraction).
    alive: bool,
    /// True once the injection was counted (`injected` incremented) —
    /// only launched packets participate in conservation and watchdog
    /// accounting.
    launched: bool,
    /// True once the watchdog rerouted the packet onto the escape
    /// router.
    escaped: bool,
    /// Cycle of the escape (starts the second `max_age` grace period).
    escaped_at: u64,
    /// Cycle of the packet's most recent hop (injection counts as hop
    /// zero). Recent hops with an over-age packet mean livelock; a long
    /// hop drought means starvation — and, after an escape, a drought
    /// is what escalates to the typed drop (a packet still hopping
    /// under the escape router is converging and is left alone).
    last_hop_at: u64,
    /// Last switch that handled the packet — where watchdog actions and
    /// drops are attributed.
    last_node: u32,
    /// Marking-field value when the packet was committed to the wire;
    /// the checker asserts links never rewrite it.
    wire_mf: u16,
}

/// A discrete-event simulation run over one network.
///
/// Typical usage:
/// 1. build with [`Simulation::new`] (or [`Simulation::with_filter`]);
/// 2. optionally [`Simulation::schedule_faults`] a dynamic
///    [`FaultSchedule`];
/// 3. [`Simulation::schedule`] packets at their injection times;
/// 4. [`Simulation::run`] to quiescence;
/// 5. inspect [`Simulation::stats`], [`Simulation::delivered`] and
///    [`Simulation::drops`].
///
/// The `faults` argument seeds the simulation's **live** fault state;
/// every per-hop routing decision consults the live state, so scheduled
/// [`FaultEvent`]s take effect on packets already in the network.
pub struct Simulation<'a> {
    topo: &'a Topology,
    /// Live fault state: the initial `FaultSet` plus every applied
    /// [`FaultEvent`] so far.
    live: FaultSet,
    router: Router,
    policy: SelectionPolicy,
    marker: &'a dyn Marker,
    filter: &'a dyn Filter,
    cfg: SimConfig,
    rng: SmallRng,
    queue: EventQueue,
    pkts: Vec<InFlight>,
    /// Per directed output port: the cycle until which it is busy.
    ports: HashMap<(u32, Direction), u64>,
    now: SimTime,
    stats: SimStats,
    delivered: Vec<Delivered>,
    drops: Vec<(ddpm_net::PacketId, DropReason)>,
    /// When the current degraded period started, if one is open.
    degraded_since: Option<u64>,
    /// Set when the last repair restored full health; cleared (and
    /// recorded as time-to-recovery) by the next delivery.
    pending_recovery: Option<u64>,
    /// Live telemetry, `None` when [`SimConfig::telemetry`] is off — the
    /// zero-cost path: every hook below is one `Option` check.
    tele: Option<Box<Telemetry>>,
    /// Packets launched (injection counted) but not yet delivered or
    /// dropped — the `in_flight` term of the conservation invariant.
    live_count: u64,
    /// Cycle of the last delivery or forward: the network-level
    /// progress signal the watchdog's deadlock detector watches.
    last_progress: u64,
    /// True while a watchdog sweep is scheduled. The watchdog arms at
    /// the first injection and disarms when nothing is live.
    watchdog_armed: bool,
    /// Runtime invariant checker (violation log + trace tail).
    checker: InvariantChecker,
}

static NO_FILTER: NoFilter = NoFilter;

impl<'a> Simulation<'a> {
    /// Builds a simulation without mitigation filters.
    #[must_use]
    pub fn new(
        topo: &'a Topology,
        faults: &FaultSet,
        router: Router,
        policy: SelectionPolicy,
        marker: &'a dyn Marker,
        cfg: SimConfig,
    ) -> Self {
        Self::with_filter(topo, faults, router, policy, marker, &NO_FILTER, cfg)
    }

    /// Builds a simulation with a mitigation [`Filter`] installed.
    #[must_use]
    pub fn with_filter(
        topo: &'a Topology,
        faults: &FaultSet,
        router: Router,
        policy: SelectionPolicy,
        marker: &'a dyn Marker,
        filter: &'a dyn Filter,
        cfg: SimConfig,
    ) -> Self {
        let degraded_since = (!faults.is_empty()).then_some(0);
        let tele = Telemetry::from_config(&cfg.telemetry).map(Box::new);
        let checker = InvariantChecker::new(cfg.invariants);
        Self {
            topo,
            live: faults.clone(),
            router,
            policy,
            marker,
            filter,
            rng: SmallRng::seed_from_u64(cfg.seed),
            cfg,
            queue: EventQueue::new(),
            pkts: Vec::new(),
            ports: HashMap::new(),
            now: SimTime::ZERO,
            stats: SimStats::default(),
            delivered: Vec::new(),
            drops: Vec::new(),
            degraded_since,
            pending_recovery: None,
            tele,
            live_count: 0,
            last_progress: 0,
            watchdog_armed: false,
            checker,
        }
    }

    /// Schedules every event of a dynamic [`FaultSchedule`]. Call before
    /// scheduling traffic: the queue breaks time ties by insertion
    /// order, so faults registered first apply before same-cycle packet
    /// events.
    pub fn schedule_faults(&mut self, schedule: &FaultSchedule) {
        for (t, event) in schedule.iter() {
            self.queue.push(SimTime(t), EventKind::Fault { event });
        }
    }

    /// The live fault state (initial faults plus applied events).
    #[must_use]
    pub fn live_faults(&self) -> &FaultSet {
        &self.live
    }

    /// Schedules `packet` for injection at `time`. Returns its in-flight
    /// handle (useful only for debugging).
    pub fn schedule(&mut self, time: SimTime, packet: Packet) -> usize {
        let idx = self.pkts.len();
        let wire_mf = packet.header.identification.raw();
        self.pkts.push(InFlight {
            packet,
            state: RouteState::with_budget(self.router.misroute_budget()),
            injected_at: time,
            path: Vec::new(),
            inject_attempts: 0,
            reroutes: 0,
            under_fault: false,
            alive: true,
            launched: false,
            escaped: false,
            escaped_at: 0,
            last_hop_at: time.cycles(),
            last_node: u32::MAX,
            wire_mf,
        });
        self.queue.push(time, EventKind::Inject { pkt: idx });
        idx
    }

    /// Runs the event loop to quiescence and returns the statistics.
    pub fn run(&mut self) -> SimStats {
        let profiling = self.tele.as_ref().is_some_and(|t| t.profiling());
        while let Some(ev) = self.queue.pop() {
            debug_assert!(ev.time >= self.now, "time went backwards");
            self.now = ev.time;
            let t0 = profiling.then(Instant::now);
            let phase = match ev.kind {
                EventKind::Inject { pkt } => {
                    self.handle_inject(pkt);
                    "inject"
                }
                EventKind::Arrive { pkt, node, .. } => {
                    self.handle_arrive(pkt, node);
                    "arrive"
                }
                EventKind::Reroute { pkt, node } => {
                    self.handle_reroute(pkt, node);
                    "reroute"
                }
                EventKind::Fault { event } => {
                    self.handle_fault(event);
                    "fault"
                }
                EventKind::Watchdog => {
                    self.handle_watchdog();
                    "watchdog"
                }
            };
            if self.checker.enabled() {
                self.post_event_checks(&ev);
            }
            if let Some(t0) = t0 {
                let elapsed = t0.elapsed();
                self.tele
                    .as_mut()
                    .expect("profiling implies telemetry")
                    .profile(phase, elapsed);
            }
        }
        if let Some(t0) = self.degraded_since.take() {
            self.stats.faults.degraded_cycles += self.now.cycles() - t0;
        }
        self.stats.end_time = self.now.cycles();
        debug_assert_eq!(self.live_count, 0, "run ended with live packets");
        debug_assert!(self.stats.accounted(0), "packet conservation violated");
        if let Some(t) = self.tele.as_mut() {
            t.finish();
        }
        self.stats
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Packets delivered so far, in delivery order — the victim's view.
    #[must_use]
    pub fn delivered(&self) -> &[Delivered] {
        &self.delivered
    }

    /// Drop log: `(packet id, reason)` in drop order.
    #[must_use]
    pub fn drops(&self) -> &[(ddpm_net::PacketId, DropReason)] {
        &self.drops
    }

    /// Consumes the simulation, returning the delivered list (avoids a
    /// clone for large runs).
    #[must_use]
    pub fn into_delivered(self) -> Vec<Delivered> {
        self.delivered
    }

    /// Live telemetry state, when enabled. Lets callers read event
    /// counts, the latency histogram and the phase profile after a run.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tele.as_deref()
    }

    /// Invariant violations detected this run (empty when correct, or
    /// when the checker is disabled).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        self.checker.violations()
    }

    /// The trailing window of lifecycle events kept by the invariant
    /// checker for repro bundles, oldest first.
    #[must_use]
    pub fn trace_tail(&self) -> Vec<PacketEvent> {
        self.checker.tail_events()
    }

    /// Packets launched but not yet delivered or dropped.
    #[must_use]
    pub fn live_count(&self) -> u64 {
        self.live_count
    }

    fn class_of(&self, pkt: usize) -> TrafficClass {
        self.pkts[pkt].packet.class
    }

    /// Are lifecycle events being recorded by telemetry?
    #[inline]
    fn tele_on(&self) -> bool {
        self.tele.as_ref().is_some_and(|t| t.events_on())
    }

    /// Is anyone observing lifecycle events — telemetry, the invariant
    /// checker's trace tail, or both? The single check guarding every
    /// emission site.
    #[inline]
    fn obs_on(&self) -> bool {
        self.tele_on() || self.checker.tail_on()
    }

    /// Records one lifecycle event for in-flight packet `pkt` at switch
    /// `node`, feeding both telemetry (when events are on) and the
    /// checker's trace tail. Only call behind [`Simulation::obs_on`].
    fn emit(&mut self, pkt: usize, node: u32, kind: TelEvent) {
        let ev = PacketEvent {
            cycle: self.now.cycles(),
            pkt: self.pkts[pkt].packet.id.0,
            node,
            kind,
        };
        if let Some(t) = self.tele.as_mut() {
            if t.events_on() {
                t.record(ev);
            }
        }
        self.checker.record_tail(ev);
    }

    /// Records an invariant violation: telemetry event, trace tail,
    /// violation log — then panics if the config says so.
    fn report_violation(&mut self, pkt: u64, node: u32, invariant: &'static str, detail: String) {
        let cycle = self.now.cycles();
        let ev = PacketEvent {
            cycle,
            pkt,
            node,
            kind: TelEvent::Violation { invariant },
        };
        if let Some(t) = self.tele.as_mut() {
            if t.events_on() {
                t.record(ev);
            }
        }
        self.checker.record_tail(ev);
        let panic_now = self.checker.report(Violation {
            cycle,
            pkt,
            node,
            invariant,
            detail,
        });
        if panic_now {
            let v = self.checker.violations().last().expect("just pushed");
            panic!(
                "invariant violation `{invariant}` at cycle {cycle}, pkt {pkt}, node {node}: {}",
                v.detail
            );
        }
    }

    /// Post-event invariant checks: conservation after every handled
    /// event, plus the synthetic self-test injection when configured.
    fn post_event_checks(&mut self, ev: &Event) {
        let (pkt_id, node) = match ev.kind {
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => {
                (self.pkts[pkt].packet.id.0, self.pkts[pkt].last_node)
            }
            EventKind::Fault { .. } | EventKind::Watchdog => (0, u32::MAX),
        };
        if !self.stats.accounted(self.live_count) {
            let t = self.stats.total();
            self.report_violation(
                pkt_id,
                node,
                "conservation",
                format!(
                    "injected {} != delivered {} + dropped {} + in_flight {}",
                    t.injected,
                    t.delivered,
                    t.dropped(),
                    self.live_count
                ),
            );
        }
        if let Some(at) = self.checker.selftest_pending() {
            if self.now.cycles() >= at {
                self.checker.mark_selftest_fired();
                self.report_violation(
                    pkt_id,
                    node,
                    "selftest",
                    format!("synthetic violation scheduled at cycle {at} (InvariantConfig::selftest_at)"),
                );
            }
        }
    }

    fn drop_packet(&mut self, pkt: usize, node: u32, reason: DropReason) {
        debug_assert!(self.pkts[pkt].alive, "double drop of packet {pkt}");
        debug_assert!(self.pkts[pkt].launched, "drop of an uninjected packet");
        self.pkts[pkt].alive = false;
        self.live_count -= 1;
        let class = self.class_of(pkt);
        let c = self.stats.class_mut(class);
        match reason {
            DropReason::BufferOverflow => c.dropped_buffer += 1,
            DropReason::TtlExpired => c.dropped_ttl += 1,
            DropReason::Blocked => c.dropped_blocked += 1,
            DropReason::HopLimit => c.dropped_hop_limit += 1,
            DropReason::Filtered => c.dropped_filtered += 1,
            DropReason::Corrupted => c.dropped_corrupt += 1,
            DropReason::SwitchDown => c.dropped_switch_down += 1,
            DropReason::LinkDown => c.dropped_link_down += 1,
            DropReason::RerouteExhausted => c.dropped_reroute += 1,
            DropReason::SourceDown => c.dropped_source_down += 1,
            DropReason::LivelockEscaped => c.dropped_livelock += 1,
            DropReason::DeadlockVictim => c.dropped_deadlock += 1,
        }
        self.drops.push((self.pkts[pkt].packet.id, reason));
        if self.obs_on() {
            self.emit(
                pkt,
                node,
                TelEvent::Drop {
                    reason: reason.as_str(),
                },
            );
        }
    }

    /// Applies one scheduled [`FaultEvent`] to the live fault state and
    /// enforces fail-stop semantics: packets committed to a component
    /// that just died are claimed now, with a typed drop — never
    /// silently lost.
    fn handle_fault(&mut self, ev: FaultEvent) {
        let was_healthy = self.live.is_empty();
        self.live.apply(self.topo, ev);
        self.stats.faults.events_applied += 1;
        match ev {
            FaultEvent::LinkDown { a, b } => {
                // Packets on the wire of this link die with it.
                let lost = self.queue.extract(|k| {
                    matches!(k, EventKind::Arrive { node, from, .. }
                        if (NodeId(*node), NodeId(*from)) == (a, b)
                            || (NodeId(*node), NodeId(*from)) == (b, a))
                });
                for e in lost {
                    if let EventKind::Arrive { pkt, node, .. } = e.kind {
                        self.drop_packet(pkt, node, DropReason::LinkDown);
                    }
                }
            }
            FaultEvent::SwitchDown { node } => {
                // Fail-stop: the switch's buffers vanish. That claims
                // packets in flight toward it, packets it had already
                // committed to an output port (future arrivals with
                // `from == node`), and packets parked at it awaiting a
                // reroute retry.
                let lost = self.queue.extract(|k| match k {
                    EventKind::Arrive { node: n, from, .. } => *n == node.0 || *from == node.0,
                    EventKind::Reroute { node: n, .. } => *n == node.0,
                    EventKind::Inject { .. } | EventKind::Fault { .. } | EventKind::Watchdog => {
                        false
                    }
                });
                for e in lost {
                    if let EventKind::Arrive { pkt, node, .. } | EventKind::Reroute { pkt, node } =
                        e.kind
                    {
                        self.drop_packet(pkt, node, DropReason::SwitchDown);
                    }
                }
            }
            FaultEvent::LinkUp { .. } | FaultEvent::SwitchUp { .. } => {}
        }
        if was_healthy && !self.live.is_empty() {
            self.degraded_since = Some(self.now.cycles());
        } else if !was_healthy && self.live.is_empty() {
            if let Some(t0) = self.degraded_since.take() {
                self.stats.faults.degraded_cycles += self.now.cycles() - t0;
            }
            self.pending_recovery = Some(self.now.cycles());
        }
    }

    fn handle_inject(&mut self, pkt: usize) {
        if !self.pkts[pkt].alive {
            return;
        }
        let src_id = self.pkts[pkt].packet.true_source;
        let src = self.topo.coord(src_id);
        self.pkts[pkt].last_node = src_id.0;
        if self.pkts[pkt].inject_attempts == 0 {
            self.pkts[pkt].launched = true;
            self.live_count += 1;
            self.stats.class_mut(self.class_of(pkt)).injected += 1;
            let under = !self.live.is_empty();
            self.pkts[pkt].under_fault = under;
            if under {
                self.stats.faults.window_injected += 1;
            }
        }
        // Lazy watchdog arming: the first injection of a quiet period
        // schedules the sweep cadence; `last_progress` starts *now* so a
        // late first injection is not misread as a historic stall.
        if let Some(wd) = self.cfg.watchdog {
            if !self.watchdog_armed {
                self.watchdog_armed = true;
                self.last_progress = self.now.cycles();
                self.queue.push(
                    SimTime(self.now.cycles() + wd.check_period.max(1)),
                    EventKind::Watchdog,
                );
            }
        }
        // Source-side graceful degradation: a downed local switch makes
        // the compute node hold the packet and retry with exponential
        // backoff (the injection RetryPolicy) rather than lose it.
        if self.live.is_node_dead(src_id) {
            let attempt = self.pkts[pkt].inject_attempts;
            if attempt < self.cfg.inject_retry.retries {
                self.pkts[pkt].inject_attempts = attempt + 1;
                let at = self.now.cycles() + self.cfg.inject_retry.delay(attempt);
                self.queue.push(SimTime(at), EventKind::Inject { pkt });
                if self.obs_on() {
                    self.emit(
                        pkt,
                        src_id.0,
                        TelEvent::Retry {
                            what: RetryKind::Inject,
                            attempt,
                        },
                    );
                }
            } else {
                self.drop_packet(pkt, src_id.0, DropReason::SourceDown);
            }
            return;
        }
        if self.obs_on() {
            self.emit(pkt, src_id.0, TelEvent::Inject);
        }
        if self.cfg.record_paths {
            self.pkts[pkt].path.push(src_id);
        }
        // The source switch resets the marking field (§5) — forged MF
        // values die here.
        let env = MarkEnv { topo: self.topo };
        let mf_before = self.pkts[pkt].packet.header.identification.raw();
        self.marker
            .on_inject(&mut self.pkts[pkt].packet, &src, &env);
        let mf_after = self.pkts[pkt].packet.header.identification.raw();
        if mf_after != mf_before && self.obs_on() {
            self.emit(pkt, src_id.0, TelEvent::Mark { mf: mf_after });
        }
        if self.filter.block_at_injection(&self.pkts[pkt].packet, &src) {
            self.drop_packet(pkt, src_id.0, DropReason::Filtered);
            return;
        }
        self.forward_from(pkt, &src);
    }

    fn handle_arrive(&mut self, pkt: usize, node: u32) {
        if !self.pkts[pkt].alive {
            return;
        }
        // Mark-in-transit invariant: links never rewrite the marking
        // field — it must arrive exactly as the previous switch sent it
        // (modelled bit errors happen below, at arrival processing).
        if self.checker.enabled() {
            let got = self.pkts[pkt].packet.header.identification.raw();
            let sent = self.pkts[pkt].wire_mf;
            if got != sent {
                self.report_violation(
                    self.pkts[pkt].packet.id.0,
                    node,
                    "mark_in_transit",
                    format!("marking field changed on the wire: sent {sent:#06x}, arrived {got:#06x}"),
                );
            }
        }
        self.pkts[pkt].last_node = node;
        // Link-level bit errors: flip one random header bit in transit;
        // the receiving switch checksums and discards the damaged packet.
        if self.cfg.bit_error_rate > 0.0 && self.rng.gen_bool(self.cfg.bit_error_rate) {
            let mut bytes = self.pkts[pkt].packet.header.to_bytes();
            let bit = self.rng.gen_range(0..160u32);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            match ddpm_net::Ipv4Header::parse(&bytes) {
                Ok(h) => {
                    // A flip that still parses (impossible for single-bit
                    // errors under RFC 1071, kept for defence in depth).
                    self.pkts[pkt].packet.header = h;
                }
                Err(_) => {
                    self.drop_packet(pkt, node, DropReason::Corrupted);
                    return;
                }
            }
        }
        let node_id = NodeId(node);
        let cur = self.topo.coord(node_id);
        if self.cfg.record_paths {
            self.pkts[pkt].path.push(node_id);
        }
        if node_id == self.pkts[pkt].packet.dest_node {
            // The destination switch runs marking logic one final time
            // before delivery (needed by PPM's edge completion).
            let env = MarkEnv { topo: self.topo };
            let mf_before = self.pkts[pkt].packet.header.identification.raw();
            self.marker
                .on_deliver(&mut self.pkts[pkt].packet, &cur, &env, &mut self.rng);
            let mf_after = self.pkts[pkt].packet.header.identification.raw();
            if mf_after != mf_before && self.obs_on() {
                self.emit(pkt, node, TelEvent::Mark { mf: mf_after });
            }
            if self.filter.block_at_delivery(&self.pkts[pkt].packet, &cur) {
                self.drop_packet(pkt, node, DropReason::Filtered);
                return;
            }
            let class = self.class_of(pkt);
            let inflight = &self.pkts[pkt];
            if inflight.under_fault {
                self.stats.faults.window_delivered += 1;
            }
            if let Some(t0) = self.pending_recovery.take() {
                self.stats.faults.recovery.record(self.now.cycles() - t0);
            }
            let c = self.stats.class_mut(class);
            c.delivered += 1;
            let latency = self.now - inflight.injected_at;
            c.latency.record(latency);
            c.total_hops += u64::from(inflight.state.hops);
            let hops = inflight.state.hops;
            self.delivered.push(Delivered {
                packet: inflight.packet,
                injected_at: inflight.injected_at,
                delivered_at: self.now,
                hops,
                path: self.cfg.record_paths.then(|| inflight.path.clone()),
            });
            self.pkts[pkt].alive = false;
            self.live_count -= 1;
            self.last_progress = self.now.cycles();
            if self.checker.enabled() && self.cfg.record_paths {
                let want = self.pkts[pkt].state.hops as usize + 1;
                let got = self.pkts[pkt].path.len();
                if got != want {
                    self.report_violation(
                        self.pkts[pkt].packet.id.0,
                        node,
                        "path_consistency",
                        format!("recorded path has {got} nodes, expected hops+1 = {want}"),
                    );
                }
            }
            if self.obs_on() {
                self.emit(
                    pkt,
                    node,
                    TelEvent::Deliver {
                        mf: mf_after,
                        latency,
                        hops,
                    },
                );
            }
            return;
        }
        // Intermediate switch: TTL check, then forward.
        if !self.pkts[pkt].packet.header.decrement_ttl() {
            self.drop_packet(pkt, node, DropReason::TtlExpired);
            return;
        }
        self.forward_from(pkt, &cur);
    }

    fn forward_from(&mut self, pkt: usize, cur: &Coord) {
        let node = self.topo.index(cur).0;
        if self.pkts[pkt].state.hops >= self.cfg.max_hops {
            self.drop_packet(pkt, node, DropReason::HopLimit);
            return;
        }
        let dst = self.topo.coord(self.pkts[pkt].packet.dest_node);
        // Escaped packets travel the watchdog's recovery router under
        // deterministic selection; everyone else uses the configured
        // pair. `pick_for` upgrades `Random` to productive-first on
        // turn-model routers (the E-RESIL livelock fix).
        let (router, policy) = if self.pkts[pkt].escaped {
            let esc = self
                .cfg
                .watchdog
                .and_then(|w| w.escape)
                .unwrap_or(self.router);
            (esc, SelectionPolicy::First)
        } else {
            (self.router, self.policy)
        };
        // Per-hop re-query against the LIVE fault state: links and
        // switches that died since the previous hop are excluded, ones
        // that healed are available again.
        let ctx = RouteCtx::new(self.topo, &self.live);
        let candidates = router.candidates(&ctx, cur, &dst, &self.pkts[pkt].state);
        let Some(i) = policy.pick_for(&router, &candidates, &mut self.rng) else {
            // Stranded. With a reroute budget the switch parks the
            // packet and retries after a backoff — transient faults may
            // heal. Without one (the default), this is a Blocked drop,
            // as before dynamic faults existed.
            let tried = self.pkts[pkt].reroutes;
            if tried < self.cfg.reroute_retry.retries {
                self.pkts[pkt].reroutes = tried + 1;
                let at = self.now.cycles() + self.cfg.reroute_retry.delay(tried);
                self.queue.push(SimTime(at), EventKind::Reroute { pkt, node });
                if self.obs_on() {
                    self.emit(
                        pkt,
                        node,
                        TelEvent::Retry {
                            what: RetryKind::Reroute,
                            attempt: tried,
                        },
                    );
                }
            } else if self.cfg.reroute_retry.retries > 0 {
                self.drop_packet(pkt, node, DropReason::RerouteExhausted);
            } else {
                self.drop_packet(pkt, node, DropReason::Blocked);
            }
            return;
        };
        let chosen = candidates[i];

        // Fault-coherence invariant: routing already filtered faulty
        // links, so a chosen hop onto one is a simulator bug.
        if self.checker.enabled() && self.live.is_faulty(self.topo, cur, &chosen.next) {
            self.report_violation(
                self.pkts[pkt].packet.id.0,
                node,
                "fault_coherence",
                format!("routing committed {cur} -> {} over a faulty link", chosen.next),
            );
        }

        // Output-port contention: the port serialises one packet per
        // `service_cycles`; backlog beyond `buffer_packets` is dropped.
        let key = (node, chosen.dir);
        let busy_until = self.ports.get(&key).copied().unwrap_or(0);
        let backlog = busy_until.saturating_sub(self.now.cycles()) / self.cfg.service_cycles.max(1);
        if backlog >= u64::from(self.cfg.buffer_packets) {
            self.drop_packet(pkt, node, DropReason::BufferOverflow);
            return;
        }

        // Switch-side marking happens once the output port is decided
        // (Fig. 4: Routing() first, then Δ computed and stored).
        let env = MarkEnv { topo: self.topo };
        let mf_before = self.pkts[pkt].packet.header.identification.raw();
        self.marker.on_forward(
            &mut self.pkts[pkt].packet,
            cur,
            &chosen.next,
            &env,
            &mut self.rng,
        );
        let mf_after = self.pkts[pkt].packet.header.identification.raw();
        self.pkts[pkt]
            .state
            .record_hop(chosen.productive, chosen.dir);
        self.pkts[pkt].wire_mf = mf_after;
        self.pkts[pkt].last_hop_at = self.now.cycles();
        self.last_progress = self.now.cycles();

        let depart = busy_until.max(self.now.cycles()) + self.cfg.service_cycles;
        self.ports.insert(key, depart);
        let arrive = depart + self.cfg.link_latency;
        let next_id = self.topo.index(&chosen.next).0;
        if self.obs_on() {
            if mf_after != mf_before {
                self.emit(pkt, node, TelEvent::Mark { mf: mf_after });
            }
            self.emit(pkt, node, TelEvent::Forward { next: next_id });
        }
        self.queue.push(
            SimTime(arrive),
            EventKind::Arrive {
                pkt,
                node: next_id,
                from: node,
            },
        );
    }

    /// A parked packet's backoff expired: re-query routing against the
    /// live fault state.
    fn handle_reroute(&mut self, pkt: usize, node: u32) {
        if !self.pkts[pkt].alive {
            return;
        }
        let node_id = NodeId(node);
        debug_assert!(
            !self.live.is_node_dead(node_id),
            "SwitchDown claims parked packets eagerly"
        );
        let cur = self.topo.coord(node_id);
        self.forward_from(pkt, &cur);
    }

    /// Removes every pending event belonging to a packet in `doomed`
    /// (its single Inject/Arrive/Reroute) so nothing fires on the dead.
    fn extract_events_of(&mut self, doomed: &HashSet<usize>) {
        self.queue.extract(|k| match k {
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => doomed.contains(pkt),
            EventKind::Fault { .. } | EventKind::Watchdog => false,
        });
    }

    /// One watchdog sweep: deadlock detection at network level, then
    /// per-packet age checks with two-stage escalation (escape route,
    /// then typed drop). Reschedules itself while packets are live.
    fn handle_watchdog(&mut self) {
        let Some(wd) = self.cfg.watchdog else {
            return;
        };
        if self.live_count == 0 {
            // Quiet network: disarm. The next injection re-arms.
            self.watchdog_armed = false;
            return;
        }
        self.stats.watchdog.checks += 1;
        let now = self.now.cycles();

        // Network-level stall: nothing delivered or forwarded for
        // `stall_cycles` while packets are live — every one of them is
        // parked or retrying against each other. Declare deadlock and
        // recover by claiming all victims with a typed drop.
        if now.saturating_sub(self.last_progress) >= wd.stall_cycles {
            self.stats.watchdog.deadlocks += 1;
            let victims: Vec<usize> = self
                .pkts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.alive && p.launched)
                .map(|(i, _)| i)
                .collect();
            let doomed: HashSet<usize> = victims.iter().copied().collect();
            self.extract_events_of(&doomed);
            for pkt in victims {
                let node = self.pkts[pkt].last_node;
                if self.obs_on() {
                    self.emit(
                        pkt,
                        node,
                        TelEvent::Watchdog {
                            action: "deadlock_detected",
                        },
                    );
                }
                self.drop_packet(pkt, node, DropReason::DeadlockVictim);
            }
            self.watchdog_armed = false;
            return;
        }

        // Per-packet age checks. A first breach of `max_age` is
        // classified (hopped recently = livelock, hop drought =
        // starvation) and escalated to the escape router. After the
        // escape, the typed drop fires only when the packet is past the
        // grace period *and* has stopped hopping — one still moving
        // under the (deterministic, deadlock-free) escape router is
        // converging on its destination, and `max_hops` bounds it
        // regardless.
        let mut detected: Vec<(usize, bool)> = Vec::new();
        let mut drop_now: Vec<usize> = Vec::new();
        for (i, p) in self.pkts.iter_mut().enumerate() {
            if !(p.alive && p.launched) {
                continue;
            }
            let age = now.saturating_sub(p.injected_at.cycles());
            self.stats.watchdog.max_age_seen = self.stats.watchdog.max_age_seen.max(age);
            let drought = now.saturating_sub(p.last_hop_at) >= wd.max_age;
            if !p.escaped {
                if age >= wd.max_age {
                    detected.push((i, !drought));
                }
            } else if now.saturating_sub(p.escaped_at) >= wd.max_age && drought {
                drop_now.push(i);
            }
        }

        for &(i, moving) in &detected {
            if moving {
                self.stats.watchdog.livelocks += 1;
            } else {
                self.stats.watchdog.starvations += 1;
            }
            if self.obs_on() {
                let node = self.pkts[i].last_node;
                let action = if moving {
                    "livelock_detected"
                } else {
                    "starvation_detected"
                };
                self.emit(i, node, TelEvent::Watchdog { action });
            }
        }

        if wd.escape.is_some() {
            // Recovery stage: put detected packets on the escape router
            // with a fresh reroute allowance, and wake any that are
            // parked in a long retry backoff so the escape takes effect
            // promptly.
            let escaping: HashSet<usize> = detected.iter().map(|&(i, _)| i).collect();
            let parked = self
                .queue
                .extract(|k| matches!(k, EventKind::Reroute { pkt, .. } if escaping.contains(pkt)));
            for e in parked {
                if let EventKind::Reroute { pkt, node } = e.kind {
                    self.queue.push(SimTime(now + 1), EventKind::Reroute { pkt, node });
                }
            }
            for (i, _) in detected {
                self.stats.watchdog.escapes += 1;
                self.pkts[i].escaped = true;
                self.pkts[i].escaped_at = now;
                self.pkts[i].reroutes = 0;
                if self.obs_on() {
                    let node = self.pkts[i].last_node;
                    self.emit(i, node, TelEvent::Watchdog { action: "escape" });
                }
            }
        } else {
            // No recovery router configured: escalate straight to the
            // typed drop.
            drop_now.extend(detected.iter().map(|&(i, _)| i));
        }

        if !drop_now.is_empty() {
            let doomed: HashSet<usize> = drop_now.iter().copied().collect();
            self.extract_events_of(&doomed);
            for pkt in drop_now {
                let node = self.pkts[pkt].last_node;
                self.drop_packet(pkt, node, DropReason::LivelockEscaped);
            }
        }

        if self.live_count > 0 {
            self.queue
                .push(SimTime(now + wd.check_period.max(1)), EventKind::Watchdog);
        } else {
            self.watchdog_armed = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use crate::mark::NoMarking;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, L4};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId, class: TrafficClass) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(4000, 53),
            true_source: src,
            dest_node: dst,
            class,
        }
    }

    #[test]
    fn single_packet_delivery_latency() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let cfg = SimConfig {
            link_latency: 2,
            service_cycles: 4,
            ..SimConfig::default()
        };
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // (0,0) -> (3,0): 3 hops, each hop = 4 service + 2 link = 6.
        sim.schedule(
            SimTime(10),
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        assert_eq!(sim.delivered().len(), 1);
        let d = &sim.delivered()[0];
        assert_eq!(d.hops, 3);
        assert_eq!(d.latency(), 18);
        assert_eq!(d.delivered_at, SimTime(28));
    }

    #[test]
    fn paths_recorded_when_enabled() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default().with_paths(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        sim.run();
        let d = &sim.delivered()[0];
        let path = d.path.as_ref().unwrap();
        // (0,0) -> (1,0) -> (1,1): dimension order.
        assert_eq!(path, &[NodeId(0), NodeId(4), NodeId(5)]);
    }

    #[test]
    fn port_serialisation_queues_packets() {
        // Two packets leaving the same switch on the same port: the
        // second is delayed by one service time.
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        for id in 0..2 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(4), TrafficClass::Benign),
            );
        }
        sim.run();
        let times: Vec<u64> = sim.delivered().iter().map(|d| d.delivered_at.0).collect();
        assert_eq!(times, vec![11, 21]);
    }

    #[test]
    fn buffer_overflow_drops_under_flood() {
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            buffer_packets: 4,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // 20 packets injected simultaneously into one port of capacity 4.
        for id in 0..20 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(4), TrafficClass::Attack),
            );
        }
        let stats = sim.run();
        assert!(stats.attack.dropped_buffer > 0, "flood must overflow");
        assert_eq!(
            stats.attack.delivered + stats.attack.dropped(),
            stats.attack.injected
        );
    }

    #[test]
    fn ttl_expiry_drops() {
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        let mut p = mk_packet(&map, 1, NodeId(0), NodeId(63), TrafficClass::Benign);
        p.header.ttl = 3; // needs 14 hops
        sim.schedule(SimTime::ZERO, p);
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_ttl, 1);
        assert_eq!(stats.benign.delivered, 0);
    }

    #[test]
    fn blocked_routing_drops() {
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        // Isolate (0,0) partially: XY from (0,0) to (2,0) needs east.
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_blocked, 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Topology::mesh2d(6);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let run = |seed: u64| {
            let mut sim = Simulation::new(
                &topo,
                &faults,
                Router::fully_adaptive_for(&topo),
                SelectionPolicy::Random,
                &marker,
                SimConfig::seeded(seed).with_paths(),
            );
            for id in 0..50u64 {
                let s = NodeId((id % 36) as u32);
                let d = NodeId(((id * 7 + 3) % 36) as u32);
                if s == d {
                    continue;
                }
                let mut p = mk_packet(&map, id, s, d, TrafficClass::Benign);
                p.header.ttl = 64;
                sim.schedule(SimTime(id), p);
            }
            sim.run();
            sim.delivered()
                .iter()
                .map(|d| (d.packet.id, d.delivered_at, d.path.clone()))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(123), run(123), "same seed must reproduce exactly");
        assert_ne!(run(123), run(456), "different seeds should diverge");
    }

    #[test]
    fn injection_filter_quarantines_source() {
        struct BlockNode0;
        impl Filter for BlockNode0 {
            fn block_at_injection(&self, _pkt: &Packet, src: &Coord) -> bool {
                *src == Coord::new(&[0, 0])
            }
        }
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let filter = BlockNode0;
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            &filter,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Attack),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 2, NodeId(1), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
        assert_eq!(stats.benign.delivered, 1);
    }

    #[test]
    fn adaptive_routing_spreads_over_multiple_paths() {
        // §4.1: "Depending on the network's state and the adaptivity of
        // the routing, packets with the same source and the same
        // destination may take very different paths."
        let topo = Topology::mesh2d(6);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &marker,
            SimConfig::seeded(5).with_paths(),
        );
        for id in 0..40u64 {
            sim.schedule(
                SimTime(id * 3),
                mk_packet(&map, id, NodeId(0), NodeId(35), TrafficClass::Benign),
            );
        }
        sim.run();
        let distinct: std::collections::HashSet<_> = sim
            .delivered()
            .iter()
            .map(|d| d.path.clone().unwrap())
            .collect();
        assert!(distinct.len() > 5, "expected many distinct paths");
    }

    #[test]
    fn link_down_mid_flight_claims_packet() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        // Injected at 0, the packet departs (0,0) at cycle 4 and is on
        // the wire to (1,0) until cycle 6. The link dies at cycle 5.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            5,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_link_down, 1, "lost on the wire");
        assert_eq!(stats.benign.delivered, 0);
        assert_eq!(sim.drops(), &[(ddpm_net::PacketId(1), DropReason::LinkDown)]);
        assert_eq!(stats.faults.events_applied, 1);
        assert!(stats.accounted(0), "fail-stop, never silent loss");
    }

    #[test]
    fn switch_down_fail_stop_claims_queued_packets() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            link_latency: 1,
            service_cycles: 10,
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        // Switch (1,0) dies at cycle 15 with a backlog serialising
        // through it; everything committed to it is claimed.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            15,
            FaultEvent::SwitchDown { node: NodeId(4) },
        )]));
        for id in 0..6 {
            sim.schedule(
                SimTime::ZERO,
                mk_packet(&map, id, NodeId(0), NodeId(8), TrafficClass::Benign),
            );
        }
        let stats = sim.run();
        assert!(stats.benign.dropped_switch_down > 0, "fail-stop losses");
        assert!(
            stats.benign.delivered < 6,
            "the outage must cost deliveries"
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn reroute_retry_rides_out_a_transient_fault() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(8, 4, 64))
                .build(),
        );
        // XY from (0,0) to (2,0) needs the east link, down during
        // [1, 50): without retries this is a Blocked drop (see
        // `blocked_routing_drops`); with them the switch parks the
        // packet until the repair.
        sim.schedule_faults(&FaultSchedule::from_events(vec![
            (
                1,
                FaultEvent::LinkDown {
                    a: NodeId(0),
                    b: NodeId(4),
                },
            ),
            (
                50,
                FaultEvent::LinkUp {
                    a: NodeId(0),
                    b: NodeId(4),
                },
            ),
        ]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1, "the packet waits out the outage");
        assert_eq!(stats.benign.dropped(), 0);
        assert_eq!(stats.faults.window_injected, 1);
        assert_eq!(stats.faults.window_delivered, 1);
        assert_eq!(stats.faults.window_delivery_ratio(), 1.0);
        assert_eq!(stats.faults.recovery.count, 1, "time-to-recovery sampled");
        assert!(stats.faults.degraded_cycles >= 49);
    }

    #[test]
    fn reroute_exhaustion_is_a_typed_drop() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(2, 4, 32))
                .build(),
        );
        // The east link never comes back: the budget runs dry.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_reroute, 1);
        assert_eq!(stats.benign.dropped_blocked, 0, "typed, not generic");
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::RerouteExhausted)]
        );
    }

    #[test]
    fn inject_retry_waits_out_a_source_switch_outage() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .fault_tolerance(RetryPolicy::capped(8, 4, 64))
                .build(),
        );
        sim.schedule_faults(&FaultSchedule::from_events(vec![
            (1, FaultEvent::SwitchDown { node: NodeId(0) }),
            (40, FaultEvent::SwitchUp { node: NodeId(0) }),
        ]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.injected, 1, "counted once across retries");
        assert_eq!(stats.benign.delivered, 1);
        assert!(
            sim.delivered()[0].delivered_at > SimTime(40),
            "held until the switch came back"
        );
    }

    #[test]
    fn source_down_without_retries_is_a_typed_drop() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::default(),
        );
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::SwitchDown { node: NodeId(0) },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_source_down, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::SourceDown)]
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn adaptive_routing_detours_around_a_dynamic_fault() {
        use ddpm_topology::{FaultEvent, FaultSchedule};
        // The per-hop live re-query in action: an adaptive router picks
        // a different productive port when its preferred link dies
        // mid-journey — no retries needed.
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::First,
            &marker,
            SimConfig::default().with_paths(),
        );
        // Kill the (0,0)–(1,0) link before the packet leaves; minimal
        // adaptive still has the (0,0)–(0,1) productive hop.
        sim.schedule_faults(&FaultSchedule::from_events(vec![(
            1,
            FaultEvent::LinkDown {
                a: NodeId(0),
                b: NodeId(4),
            },
        )]));
        sim.schedule(
            SimTime(5),
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        let path = sim.delivered()[0].path.as_ref().unwrap();
        assert_eq!(
            path,
            &[NodeId(0), NodeId(1), NodeId(5)],
            "detoured via (0,1)"
        );
    }

    #[test]
    fn watchdog_starvation_escape_rescues_a_blocked_packet() {
        use crate::watchdog::WatchdogConfig;
        // XY from (0,0) to (1,1) is blocked by a dead east link and a
        // huge retry backoff parks the packet far beyond max_age. The
        // watchdog classifies it starved (no hop progress) and escapes
        // it onto minimal-adaptive, which detours via (0,1) — rescued,
        // not dropped.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(100, 512, 512))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 64,
                stall_cycles: 1 << 40,
                escape: Some(Router::MinimalAdaptive),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(5), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1, "escape route rescued it");
        assert_eq!(stats.benign.dropped(), 0);
        assert_eq!(stats.watchdog.starvations, 1);
        assert_eq!(stats.watchdog.escapes, 1);
        assert_eq!(stats.watchdog.livelocks, 0);
        assert!(stats.watchdog.checks >= 4);
        assert!(sim.violations().is_empty());
    }

    #[test]
    fn watchdog_deadlock_is_a_typed_drop_never_a_hang() {
        use crate::watchdog::WatchdogConfig;
        // Same blocked packet, but the stall detector is armed tighter
        // than the retry backoff: the network makes no progress, so the
        // watchdog declares deadlock and claims the packet with a typed
        // reason instead of letting retries spin.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(1000, 512, 512))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 1 << 40,
                stall_cycles: 128,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_deadlock, 1);
        assert_eq!(stats.watchdog.deadlocks, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::DeadlockVictim)]
        );
        assert!(stats.accounted(0));
        assert!(
            stats.end_time < 1000,
            "deadlock recovery must cut the retry spin short"
        );
    }

    #[test]
    fn watchdog_escalates_to_livelock_escaped_when_escape_also_fails() {
        use crate::watchdog::WatchdogConfig;
        // The escape router is dimension-order — blocked by the same
        // dead link. One max_age after the escape, the second escalation
        // stage fires: the typed LivelockEscaped drop.
        let topo = Topology::mesh2d(4);
        let mut faults = FaultSet::none();
        faults.add(&topo, &Coord::new(&[0, 0]), &Coord::new(&[1, 0]));
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .fault_tolerance(RetryPolicy::capped(1000, 32, 32))
            .watchdog(WatchdogConfig {
                check_period: 16,
                max_age: 64,
                stall_cycles: 1 << 40,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(8), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.dropped_livelock, 1);
        assert_eq!(stats.watchdog.escapes, 1);
        assert_eq!(
            sim.drops(),
            &[(ddpm_net::PacketId(1), DropReason::LivelockEscaped)]
        );
        assert!(stats.accounted(0));
    }

    #[test]
    fn watchdog_classifies_a_moving_overage_packet_as_livelock() {
        use crate::watchdog::WatchdogConfig;
        // With max_age tightened below normal transit time, a healthy
        // long-haul packet is over age *while still making hops* — the
        // livelock classification — and the DOR escape still lands it.
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .watchdog(WatchdogConfig {
                check_period: 4,
                max_age: 8,
                stall_cycles: 1 << 40,
                escape: Some(Router::DimensionOrder),
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(63), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.benign.delivered, 1);
        assert_eq!(stats.watchdog.livelocks, 1);
        assert_eq!(stats.watchdog.starvations, 0);
        assert!(stats.watchdog.max_age_seen >= 8);
    }

    #[test]
    fn invariant_selftest_injects_a_recorded_violation() {
        use crate::invariant::InvariantConfig;
        // The chaos self-test: a synthetic violation at a chosen cycle
        // proves the detection → record → trace-tail pipeline works
        // end-to-end (the soak harness replays bundles through this).
        let topo = Topology::mesh2d(4);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig::builder()
            .invariants(InvariantConfig {
                selftest_at: Some(10),
                ..InvariantConfig::recording()
            })
            .build();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        sim.run();
        let vs = sim.violations();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].invariant, "selftest");
        assert!(vs[0].cycle >= 10);
        assert!(
            !sim.trace_tail().is_empty(),
            "the repro tail captured events"
        );
        // Determinism: a second identical run reports the identical
        // violation identity — the property replay relies on.
        let mut sim2 = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            SimConfig::builder()
                .invariants(InvariantConfig {
                    selftest_at: Some(10),
                    ..InvariantConfig::recording()
                })
                .build(),
        );
        sim2.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(12), TrafficClass::Benign),
        );
        sim2.run();
        assert_eq!(sim2.violations()[0].identity(), vs[0].identity());
    }

    #[test]
    fn link_corruption_is_detected_and_dropped() {
        let topo = Topology::mesh2d(8);
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(&topo);
        let marker = NoMarking;
        let cfg = SimConfig {
            bit_error_rate: 0.05,
            ..SimConfig::seeded(13)
        };
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            cfg,
        );
        for id in 0..300u64 {
            sim.schedule(
                SimTime(id * 4),
                mk_packet(&map, id, NodeId(0), NodeId(63), TrafficClass::Benign),
            );
        }
        let stats = sim.run();
        assert!(
            stats.benign.dropped_corrupt > 0,
            "5% BER over 14 hops must corrupt some packets"
        );
        assert!(stats.benign.delivered > 0, "most packets still arrive");
        assert!(stats.accounted(0));
        // Single-bit damage is always caught: no delivered packet can
        // carry a corrupted header (checksum would have failed).
        for d in sim.delivered() {
            assert!(ddpm_net::Ipv4Header::parse(&d.packet.header.to_bytes()).is_ok());
        }
    }
}
