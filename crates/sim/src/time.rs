//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in switch cycles.
///
/// One cycle is the simulator's base unit; [`crate::SimConfig`] expresses
/// link latency and per-packet service time in cycles.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The raw cycle count.
    #[must_use]
    pub fn cycles(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    #[must_use]
    pub fn since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, rhs: SimTime) -> u64 {
        self.0.saturating_sub(rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cyc", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime(10);
        assert_eq!(t + 5, SimTime(15));
        assert_eq!(SimTime(15) - t, 5);
        assert_eq!(t - SimTime(15), 0, "saturating");
        assert_eq!(SimTime(15).since(t), 5);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime::ZERO, SimTime(0));
    }
}
