//! The event queue.

use crate::time::SimTime;
use ddpm_topology::FaultEvent;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A compute node hands a packet to its local switch.
    Inject {
        /// In-flight packet handle.
        pkt: usize,
    },
    /// A packet arrives at the switch of `node`.
    Arrive {
        /// In-flight packet handle.
        pkt: usize,
        /// Dense index of the switch it arrives at.
        node: u32,
        /// Dense index of the switch it departed from (`node` itself for
        /// source-switch entry). Identifies the traversed link so a
        /// mid-flight link failure can claim the packet.
        from: u32,
    },
    /// A stranded packet retries routing at the switch of `node` after a
    /// backoff (graceful degradation under faults).
    Reroute {
        /// In-flight packet handle.
        pkt: usize,
        /// Dense index of the switch holding the packet.
        node: u32,
    },
    /// A scheduled change to the network's health is applied.
    Fault {
        /// The change.
        event: FaultEvent,
    },
    /// A liveness-watchdog sweep (see [`crate::WatchdogConfig`]): checks
    /// network progress and per-packet ages, then reschedules itself
    /// while packets are live.
    Watchdog,
}

/// A scheduled event, ordered by the **canonical key**
/// `(time, rank, packet, seq)`:
///
/// * `rank` — fault events first, then the watchdog sweep, then packet
///   events. Global events at a cycle always precede packet events at
///   that cycle, in every engine.
/// * `packet` — the in-flight handle, for packet events. A live packet
///   has at most one pending event, so `(time, packet)` is unique and
///   the same-cycle order is identical however events were inserted —
///   the property that lets the sharded engine (`ddpm-engine`) merge
///   per-shard streams bit-identically to the serial run.
/// * `seq` — insertion sequence, the final tie-break (same-cycle fault
///   events apply in schedule order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number (final tie-breaker).
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// The canonical ordering key shared by every engine.
    #[must_use]
    pub fn canonical_key(&self) -> (u64, u8, u64, u64) {
        let (rank, pkey) = match self.kind {
            EventKind::Fault { .. } => (0, 0),
            EventKind::Watchdog => (1, 0),
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => (2, pkt as u64),
        };
        (self.time.0, rank, pkey, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.canonical_key().cmp(&self.canonical_key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// Removes and returns every pending event matching `pred`, in
    /// canonical `(time, rank, packet, seq)` order. Used for fail-stop
    /// semantics: when a switch or link dies, the packets committed to
    /// it are claimed (and counted) instead of silently firing later.
    pub fn extract(&mut self, mut pred: impl FnMut(&EventKind) -> bool) -> Vec<Event> {
        let (out, keep): (Vec<Event>, Vec<Event>) = std::mem::take(&mut self.heap)
            .into_vec()
            .into_iter()
            .partition(|e| pred(&e.kind));
        self.heap = keep.into();
        let mut out = out;
        out.sort_by_key(Event::canonical_key);
        out
    }

    /// Fire time of the earliest pending event, without popping it. The
    /// sharded engine uses this to bound its cycle windows.
    #[must_use]
    pub fn next_time(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time.0)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), EventKind::Inject { pkt: 0 });
        q.push(SimTime(1), EventKind::Inject { pkt: 1 });
        q.push(SimTime(3), EventKind::Inject { pkt: 2 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), EventKind::Inject { pkt: 10 });
        q.push(SimTime(7), EventKind::Inject { pkt: 20 });
        q.push(SimTime(7), EventKind::Inject { pkt: 30 });
        let pkts: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Inject { pkt }
                | EventKind::Arrive { pkt, .. }
                | EventKind::Reroute { pkt, .. } => pkt,
                EventKind::Fault { .. } | EventKind::Watchdog => {
                    unreachable!("no faults or watchdog ticks queued")
                }
            })
            .collect();
        assert_eq!(pkts, vec![10, 20, 30]);
    }

    #[test]
    fn extract_claims_matching_events_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(9), EventKind::Arrive { pkt: 0, node: 7, from: 3 });
        q.push(SimTime(2), EventKind::Arrive { pkt: 1, node: 5, from: 7 });
        q.push(SimTime(4), EventKind::Arrive { pkt: 2, node: 7, from: 6 });
        q.push(SimTime(1), EventKind::Inject { pkt: 3 });
        let claimed = q.extract(|k| matches!(k, EventKind::Arrive { node, from, .. } if *node == 7 || *from == 7));
        let pkts: Vec<usize> = claimed
            .iter()
            .map(|e| match e.kind {
                EventKind::Arrive { pkt, .. } => pkt,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pkts, vec![1, 2, 0], "claimed in (time, seq) order");
        assert_eq!(q.len(), 1, "unrelated events survive");
        // The queue still pops correctly after the rebuild.
        assert_eq!(q.pop().unwrap().kind, EventKind::Inject { pkt: 3 });
    }

    #[test]
    fn canonical_order_is_insertion_independent() {
        use ddpm_topology::NodeId;
        // Same cycle, inserted in scrambled order: faults first (in
        // schedule order), then the watchdog, then packet events by
        // handle — regardless of insertion sequence.
        let mut q = EventQueue::new();
        q.push(SimTime(4), EventKind::Inject { pkt: 9 });
        q.push(SimTime(4), EventKind::Watchdog);
        q.push(
            SimTime(4),
            EventKind::Fault {
                event: FaultEvent::SwitchDown { node: NodeId(1) },
            },
        );
        q.push(SimTime(4), EventKind::Arrive { pkt: 2, node: 1, from: 0 });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Fault { .. }));
        assert!(matches!(kinds[1], EventKind::Watchdog));
        assert!(matches!(kinds[2], EventKind::Arrive { pkt: 2, .. }));
        assert!(matches!(kinds[3], EventKind::Inject { pkt: 9 }));
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime(9), EventKind::Inject { pkt: 0 });
        q.push(SimTime(3), EventKind::Inject { pkt: 1 });
        assert_eq!(q.next_time(), Some(3));
        assert_eq!(q.len(), 2, "peek leaves the queue intact");
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(0), EventKind::Inject { pkt: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
