//! The event queue and the packet arena.
//!
//! Both structures here are hot-path replacements introduced by the
//! single-core overhaul (DESIGN.md §9) and both are pinned by the
//! conformance corpus (`tests/conformance.rs`): they must reproduce the
//! original `BinaryHeap` + `Box`-per-packet behaviour bit-for-bit.
//!
//! * [`EventQueue`] — a bucketed cycle-wheel: O(1) schedule/pop for the
//!   bounded `service + latency` scheduling horizon of a switch fabric,
//!   with a heap fallback for far-future timers (watchdog sweeps, fault
//!   schedules, retry backoffs). Ties drain in the canonical
//!   `(cycle, rank, pkey, seq)` order — the same key the sharded engine
//!   merges on.
//! * [`Slab`] — an append-only arena with generation-checked handles
//!   for in-flight packet state. Indices are **never** recycled (the
//!   index doubles as the canonical `pkey` tie-breaker and the
//!   per-packet RNG seed, so recycling would reorder same-cycle ties);
//!   what is reclaimed on death is the payload, and the bumped slot
//!   generation turns any later access through a stale handle into
//!   `None` — surfaced by the simulator as a typed `stale_handle`
//!   violation, never a resurrected packet.

use crate::time::SimTime;
use ddpm_topology::FaultEvent;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A compute node hands a packet to its local switch.
    Inject {
        /// In-flight packet handle.
        pkt: usize,
    },
    /// A packet arrives at the switch of `node`.
    Arrive {
        /// In-flight packet handle.
        pkt: usize,
        /// Dense index of the switch it arrives at.
        node: u32,
        /// Dense index of the switch it departed from (`node` itself for
        /// source-switch entry). Identifies the traversed link so a
        /// mid-flight link failure can claim the packet.
        from: u32,
    },
    /// A stranded packet retries routing at the switch of `node` after a
    /// backoff (graceful degradation under faults).
    Reroute {
        /// In-flight packet handle.
        pkt: usize,
        /// Dense index of the switch holding the packet.
        node: u32,
    },
    /// A scheduled change to the network's health is applied.
    Fault {
        /// The change.
        event: FaultEvent,
    },
    /// A liveness-watchdog sweep (see [`crate::WatchdogConfig`]): checks
    /// network progress and per-packet ages, then reschedules itself
    /// while packets are live.
    Watchdog,
}

/// A scheduled event, ordered by the **canonical key**
/// `(time, rank, packet, seq)`:
///
/// * `rank` — fault events first, then the watchdog sweep, then packet
///   events. Global events at a cycle always precede packet events at
///   that cycle, in every engine.
/// * `packet` — the in-flight handle, for packet events. A live packet
///   has at most one pending event, so `(time, packet)` is unique and
///   the same-cycle order is identical however events were inserted —
///   the property that lets the sharded engine (`ddpm-engine`) merge
///   per-shard streams bit-identically to the serial run.
/// * `seq` — insertion sequence, the final tie-break (same-cycle fault
///   events apply in schedule order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// When the event fires.
    pub time: SimTime,
    /// Insertion sequence number (final tie-breaker).
    pub seq: u64,
    /// What happens.
    pub kind: EventKind,
}

impl Event {
    /// The canonical ordering key shared by every engine.
    #[must_use]
    pub fn canonical_key(&self) -> (u64, u8, u64, u64) {
        let (rank, pkey) = match self.kind {
            EventKind::Fault { .. } => (0, 0),
            EventKind::Watchdog => (1, 0),
            EventKind::Inject { pkt }
            | EventKind::Arrive { pkt, .. }
            | EventKind::Reroute { pkt, .. } => (2, pkt as u64),
        };
        (self.time.0, rank, pkey, self.seq)
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other.canonical_key().cmp(&self.canonical_key())
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list, laid out as a bucketed
/// **cycle-wheel** with a heap spillover.
///
/// A switch fabric schedules almost every event within a bounded
/// look-ahead of the current cycle (`buffer · service + latency`), so
/// the queue keeps a ring of per-cycle buckets covering that horizon:
/// scheduling is a `Vec::push` into the bucket `time % horizon`, and
/// popping drains one bucket at a time. Only genuinely far-future
/// events — watchdog sweeps, fault schedules, deep retry backoffs, and
/// the up-front injection timeline — spill into a conventional binary
/// heap, off the per-packet hot path.
///
/// Drain order is **identical** to the old all-heap queue: when a cycle
/// activates, its bucket is merged with any heap spillover due the same
/// cycle and sorted once by the canonical key; same-cycle insertions
/// during the drain binary-insert into the sorted remainder, which is
/// exactly the order a heap would have produced for them.
pub struct EventQueue {
    /// Events of the active cycle, sorted *descending* by canonical key
    /// (pop takes from the back). All share `time == cur_time`.
    cur: Vec<Event>,
    /// The active (or most recently activated) cycle.
    cur_time: u64,
    /// The ring: bucket `t & mask` holds events for cycle `t`, valid
    /// only for `t` in `[floor, floor + horizon)`.
    wheel: Vec<Vec<Event>>,
    mask: u64,
    /// Lower bound on every pending event's time; the wheel covers
    /// `[floor, floor + horizon)`.
    floor: u64,
    /// First wheel cycle the next activation scan needs to look at
    /// (cycles in `[floor, scan_from)` are known empty).
    scan_from: u64,
    /// Far-future spillover (`time >= floor + horizon` at push time).
    overflow: BinaryHeap<Event>,
    len: usize,
    seq: u64,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::with_horizon(64)
    }
}

impl EventQueue {
    /// An empty queue with the default wheel horizon.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty queue whose wheel covers at least `horizon` cycles of
    /// look-ahead (rounded up to a power of two, clamped to a sane
    /// range). Callers size this as `buffer · service + latency` plus
    /// any retry/watchdog deferral so the hot-path arrivals never touch
    /// the spillover heap. The ceiling admits the look-ahead the
    /// Table 3 maxima need (a 128×128 mesh re-injects across a
    /// 254-hop diameter with backoff); one wheel slot is one `Vec`, so
    /// even the full 65 536-slot wheel is a few MiB of empty vectors.
    #[must_use]
    pub fn with_horizon(horizon: u64) -> Self {
        let h = horizon.clamp(4, 65_536).next_power_of_two().max(64);
        Self {
            cur: Vec::new(),
            cur_time: 0,
            wheel: (0..h).map(|_| Vec::new()).collect(),
            mask: h - 1,
            floor: 0,
            scan_from: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            seq: 0,
        }
    }

    /// The wheel's look-ahead span in cycles.
    #[must_use]
    pub fn horizon(&self) -> u64 {
        self.mask + 1
    }

    /// Schedules `kind` at `time`.
    pub fn push(&mut self, time: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.insert(Event { time, seq, kind });
        self.len += 1;
    }

    /// Places an already-sequenced event (push and the `extract`
    /// rebuild share this; `len` is maintained by the callers).
    fn insert(&mut self, ev: Event) {
        let t = ev.time.0;
        if t == self.cur_time && !self.cur.is_empty() {
            // Same-cycle insertion while the cycle is draining: keep
            // `cur` sorted (descending) so the remaining pops stay in
            // canonical order — a heap would do exactly this.
            let key = ev.canonical_key();
            let pos = self.cur.partition_point(|e| e.canonical_key() > key);
            self.cur.insert(pos, ev);
        } else if t >= self.floor + self.horizon() {
            self.overflow.push(ev);
        } else {
            debug_assert!(t >= self.floor, "event scheduled into the past: {t} < floor {}", self.floor);
            self.wheel[(t & self.mask) as usize].push(ev);
            if t < self.scan_from {
                self.scan_from = t;
            }
        }
    }

    /// The cycle the next activation will land on, advancing the scan
    /// cursor past buckets it proves empty. `None` iff the queue is
    /// empty.
    fn peek_cycle(&mut self) -> Option<u64> {
        if let Some(e) = self.cur.last() {
            return Some(e.time.0);
        }
        if self.len == 0 {
            return None;
        }
        let over_t = self.overflow.peek().map(|e| e.time.0);
        let end = self.floor + self.horizon();
        while self.scan_from < end {
            if !self.wheel[(self.scan_from & self.mask) as usize].is_empty() {
                let w = self.scan_from;
                return Some(over_t.map_or(w, |o| o.min(w)));
            }
            self.scan_from += 1;
        }
        over_t
    }

    /// Activates cycle `t`: merges its wheel bucket with same-cycle
    /// heap spillover into `cur`, sorted descending by canonical key.
    fn activate(&mut self, t: u64) {
        debug_assert!(self.cur.is_empty());
        if t < self.floor + self.horizon() {
            let slot = &mut self.wheel[(t & self.mask) as usize];
            std::mem::swap(&mut self.cur, slot);
        }
        while self.overflow.peek().is_some_and(|e| e.time.0 == t) {
            self.cur.push(self.overflow.pop().expect("peeked"));
        }
        self.cur
            .sort_unstable_by_key(|e| std::cmp::Reverse(e.canonical_key()));
        self.cur_time = t;
        self.floor = t;
        self.scan_from = t + 1;
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        if self.cur.is_empty() {
            let t = self.peek_cycle()?;
            self.activate(t);
        }
        self.len -= 1;
        self.cur.pop()
    }

    /// Pops the earliest event iff it fires strictly before `end` —
    /// the sharded engine's window drain, without a separate peek scan.
    pub fn pop_before(&mut self, end: u64) -> Option<Event> {
        if self.cur.is_empty() {
            let t = self.peek_cycle()?;
            if t >= end {
                return None;
            }
            self.activate(t);
        } else if self.cur_time >= end {
            return None;
        }
        self.len -= 1;
        self.cur.pop()
    }

    /// Removes and returns every pending event matching `pred`, in
    /// canonical `(time, rank, packet, seq)` order. Used for fail-stop
    /// semantics: when a switch or link dies, the packets committed to
    /// it are claimed (and counted) instead of silently firing later.
    pub fn extract(&mut self, mut pred: impl FnMut(&EventKind) -> bool) -> Vec<Event> {
        let mut all: Vec<Event> = Vec::with_capacity(self.len);
        all.append(&mut self.cur);
        for slot in &mut self.wheel {
            all.append(slot);
        }
        all.extend(std::mem::take(&mut self.overflow));
        let (mut out, keep): (Vec<Event>, Vec<Event>) =
            all.into_iter().partition(|e| pred(&e.kind));
        self.len = keep.len();
        for ev in keep {
            // Original `seq` values are preserved, so the surviving
            // events keep their canonical order exactly.
            self.insert(ev);
        }
        out.sort_by_key(Event::canonical_key);
        out
    }

    /// Fire time of the earliest pending event, without popping it. The
    /// sharded engine uses this to bound its cycle windows.
    #[must_use]
    pub fn next_time(&self) -> Option<u64> {
        if let Some(e) = self.cur.last() {
            return Some(e.time.0);
        }
        if self.len == 0 {
            return None;
        }
        let over_t = self.overflow.peek().map(|e| e.time.0);
        let end = self.floor + self.horizon();
        let mut t = self.scan_from;
        while t < end {
            if !self.wheel[(t & self.mask) as usize].is_empty() {
                return Some(over_t.map_or(t, |o| o.min(t)));
            }
            t += 1;
        }
        over_t
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Every pending event in canonical `(time, rank, packet, seq)`
    /// order, plus the sequence counter — the queue's complete logical
    /// state, without disturbing it. Feed both through
    /// [`EventQueue::restore`] to rebuild an equivalent queue.
    #[must_use]
    pub fn snapshot_events(&self) -> (Vec<Event>, u64) {
        let mut all: Vec<Event> = Vec::with_capacity(self.len);
        all.extend(self.cur.iter().copied());
        for slot in &self.wheel {
            all.extend(slot.iter().copied());
        }
        all.extend(self.overflow.iter().copied());
        all.sort_by_key(Event::canonical_key);
        (all, self.seq)
    }

    /// Rebuilds a queue from a [`EventQueue::snapshot_events`] capture.
    /// Placement (wheel bucket vs spillover) may differ from the
    /// original queue, but drain order is canonical-key driven and
    /// therefore identical; `seq` continues the original counter so
    /// later pushes keep their tie-break position.
    #[must_use]
    pub fn restore(horizon: u64, events: Vec<Event>, seq: u64) -> Self {
        let mut q = Self::with_horizon(horizon);
        q.len = events.len();
        q.seq = seq;
        for ev in events {
            q.insert(ev);
        }
        q
    }
}

/// A generation-checked handle into a [`Slab`]. Copyable and cheap;
/// resolving it after the slot was freed yields `None` instead of a
/// different (or resurrected) value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SlabHandle {
    idx: u32,
    gen: u32,
}

impl SlabHandle {
    /// The dense slot index (stable for the lifetime of the slab — the
    /// simulator uses it as the canonical `pkey`).
    #[must_use]
    pub fn index(self) -> usize {
        self.idx as usize
    }

    /// The generation this handle was minted at.
    #[must_use]
    pub fn generation(self) -> u32 {
        self.gen
    }
}

struct Slot<T> {
    gen: u32,
    val: Option<T>,
}

/// An append-only arena for in-flight packet state.
///
/// * `insert` appends and returns a [`SlabHandle`]; indices are never
///   recycled for new values, so a handle index is a stable identity.
/// * `free` declares **death**: it drops the payload in place (the
///   packet's path buffer and RNG are reclaimed immediately) and bumps
///   the slot generation, invalidating every outstanding handle.
/// * `take`/`put` move the payload without declaring death — the
///   sharded engine's cross-shard handoff — and leave the generation
///   untouched, so handles stay valid across a migration.
///
/// Accessing a freed slot through a stale handle returns `None`; the
/// simulator reports that as a typed `stale_handle` violation rather
/// than panicking (or worse, acting on a resurrected packet).
pub struct Slab<T> {
    slots: Vec<Slot<T>>,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self { slots: Vec::new() }
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of slots ever created (live + freed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no slot was ever created.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Appends a value, returning its handle. The index equals the
    /// number of slots created before it — dense and stable.
    pub fn insert(&mut self, val: T) -> SlabHandle {
        let idx = u32::try_from(self.slots.len()).expect("slab capacity");
        self.slots.push(Slot { gen: 0, val: Some(val) });
        SlabHandle { idx, gen: 0 }
    }

    /// Extends the slab with empty slots up to `len` (the sharded
    /// engine mirrors globally-assigned indices into per-shard slabs).
    pub fn ensure_len(&mut self, len: usize) {
        while self.slots.len() < len {
            self.slots.push(Slot { gen: 0, val: None });
        }
    }

    /// The current-generation handle for a raw index, if the slot holds
    /// a value.
    #[must_use]
    pub fn handle_at(&self, idx: usize) -> Option<SlabHandle> {
        let slot = self.slots.get(idx)?;
        slot.val.as_ref()?;
        Some(SlabHandle {
            idx: u32::try_from(idx).expect("slab capacity"),
            gen: slot.gen,
        })
    }

    /// Resolves a handle; `None` if the slot was freed (any stale
    /// generation) or its payload is mid-migration.
    #[must_use]
    pub fn get(&self, h: SlabHandle) -> Option<&T> {
        let slot = self.slots.get(h.index())?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_ref()
    }

    /// Mutable [`Slab::get`].
    pub fn get_mut(&mut self, h: SlabHandle) -> Option<&mut T> {
        let slot = self.slots.get_mut(h.index())?;
        if slot.gen != h.gen {
            return None;
        }
        slot.val.as_mut()
    }

    /// Resolves a raw index against the *current* generation — the
    /// simulator's event payloads carry bare indices (they double as
    /// `pkey`), and an index is unambiguous because slots are never
    /// recycled. `None` means the packet already died.
    #[must_use]
    pub fn get_idx(&self, idx: usize) -> Option<&T> {
        self.slots.get(idx)?.val.as_ref()
    }

    /// Mutable [`Slab::get_idx`].
    pub fn get_idx_mut(&mut self, idx: usize) -> Option<&mut T> {
        self.slots.get_mut(idx)?.val.as_mut()
    }

    /// Declares the slot dead: drops the payload in place, bumps the
    /// generation (invalidating all outstanding handles) and returns
    /// the value. `None` if it was already freed or never filled.
    pub fn free_idx(&mut self, idx: usize) -> Option<T> {
        let slot = self.slots.get_mut(idx)?;
        let val = slot.val.take()?;
        // Wrapping: at u32::MAX the counter rolls over rather than
        // panicking. Slots are never refilled after death, so a rolled
        // generation can still never falsely match a live payload.
        slot.gen = slot.gen.wrapping_add(1);
        Some(val)
    }

    /// Handle-checked [`Slab::free_idx`]: a stale handle frees nothing.
    pub fn free(&mut self, h: SlabHandle) -> Option<T> {
        let slot = self.slots.get_mut(h.index())?;
        if slot.gen != h.gen {
            return None;
        }
        let val = slot.val.take()?;
        slot.gen = slot.gen.wrapping_add(1);
        Some(val)
    }

    /// The slot's current generation counter, if the slot exists.
    /// Snapshot/restore and the wraparound tests need the raw counter;
    /// normal callers go through [`SlabHandle`]s.
    #[must_use]
    pub fn generation_of(&self, idx: usize) -> Option<u32> {
        self.slots.get(idx).map(|s| s.gen)
    }

    /// Overwrites the slot's generation counter (checkpoint restore and
    /// wraparound tests). The slot must already exist.
    ///
    /// # Panics
    /// Panics if `idx` is out of bounds.
    pub fn set_generation(&mut self, idx: usize, gen: u32) {
        self.slots[idx].gen = gen;
    }

    /// Moves the payload out *without* declaring death (generation
    /// unchanged) — one side of a cross-shard handoff.
    pub fn take_idx(&mut self, idx: usize) -> Option<T> {
        self.slots.get_mut(idx)?.val.take()
    }

    /// Re-seats a payload moved by [`Slab::take_idx`]. Panics if the
    /// slot is occupied (two packets may never share an identity).
    pub fn put_idx(&mut self, idx: usize, val: T) {
        self.ensure_len(idx + 1);
        let slot = &mut self.slots[idx];
        assert!(slot.val.is_none(), "slab slot {idx} already occupied");
        slot.val = Some(val);
    }

    /// Iterates live entries as `(index, &value)`.
    pub fn iter_live(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.val.as_ref().map(|v| (i, v)))
    }

    /// Iterates live entries as `(index, &mut value)`.
    pub fn iter_live_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, s)| s.val.as_mut().map(|v| (i, v)))
    }

    /// Number of live (filled) slots.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.slots.iter().filter(|s| s.val.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), EventKind::Inject { pkt: 0 });
        q.push(SimTime(1), EventKind::Inject { pkt: 1 });
        q.push(SimTime(3), EventKind::Inject { pkt: 2 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(7), EventKind::Inject { pkt: 10 });
        q.push(SimTime(7), EventKind::Inject { pkt: 20 });
        q.push(SimTime(7), EventKind::Inject { pkt: 30 });
        let pkts: Vec<usize> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Inject { pkt }
                | EventKind::Arrive { pkt, .. }
                | EventKind::Reroute { pkt, .. } => pkt,
                EventKind::Fault { .. } | EventKind::Watchdog => {
                    unreachable!("no faults or watchdog ticks queued")
                }
            })
            .collect();
        assert_eq!(pkts, vec![10, 20, 30]);
    }

    #[test]
    fn extract_claims_matching_events_in_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(9), EventKind::Arrive { pkt: 0, node: 7, from: 3 });
        q.push(SimTime(2), EventKind::Arrive { pkt: 1, node: 5, from: 7 });
        q.push(SimTime(4), EventKind::Arrive { pkt: 2, node: 7, from: 6 });
        q.push(SimTime(1), EventKind::Inject { pkt: 3 });
        let claimed = q.extract(|k| matches!(k, EventKind::Arrive { node, from, .. } if *node == 7 || *from == 7));
        let pkts: Vec<usize> = claimed
            .iter()
            .map(|e| match e.kind {
                EventKind::Arrive { pkt, .. } => pkt,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(pkts, vec![1, 2, 0], "claimed in (time, seq) order");
        assert_eq!(q.len(), 1, "unrelated events survive");
        // The queue still pops correctly after the rebuild.
        assert_eq!(q.pop().unwrap().kind, EventKind::Inject { pkt: 3 });
    }

    #[test]
    fn canonical_order_is_insertion_independent() {
        use ddpm_topology::NodeId;
        // Same cycle, inserted in scrambled order: faults first (in
        // schedule order), then the watchdog, then packet events by
        // handle — regardless of insertion sequence.
        let mut q = EventQueue::new();
        q.push(SimTime(4), EventKind::Inject { pkt: 9 });
        q.push(SimTime(4), EventKind::Watchdog);
        q.push(
            SimTime(4),
            EventKind::Fault {
                event: FaultEvent::SwitchDown { node: NodeId(1) },
            },
        );
        q.push(SimTime(4), EventKind::Arrive { pkt: 2, node: 1, from: 0 });
        let kinds: Vec<EventKind> = std::iter::from_fn(|| q.pop()).map(|e| e.kind).collect();
        assert!(matches!(kinds[0], EventKind::Fault { .. }));
        assert!(matches!(kinds[1], EventKind::Watchdog));
        assert!(matches!(kinds[2], EventKind::Arrive { pkt: 2, .. }));
        assert!(matches!(kinds[3], EventKind::Inject { pkt: 9 }));
    }

    #[test]
    fn next_time_peeks_without_popping() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime(9), EventKind::Inject { pkt: 0 });
        q.push(SimTime(3), EventKind::Inject { pkt: 1 });
        assert_eq!(q.next_time(), Some(3));
        assert_eq!(q.len(), 2, "peek leaves the queue intact");
    }

    #[test]
    fn len_tracks() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime(0), EventKind::Inject { pkt: 0 });
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_events_round_trip_through_the_spillover_heap() {
        // Events far beyond the wheel horizon (watchdog sweeps, fault
        // schedules) spill to the heap and still pop in order, merged
        // with near events — including a same-cycle wheel/heap merge.
        let mut q = EventQueue::with_horizon(8);
        let h = q.horizon();
        q.push(SimTime(10 * h), EventKind::Inject { pkt: 0 });
        q.push(SimTime(2), EventKind::Inject { pkt: 1 });
        q.push(SimTime(3 * h + 5), EventKind::Watchdog);
        q.push(SimTime(h - 1), EventKind::Inject { pkt: 2 });
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![2, h - 1, 3 * h + 5, 10 * h]);
    }

    #[test]
    fn spillover_merges_with_wheel_bucket_at_the_same_cycle() {
        let mut q = EventQueue::with_horizon(8);
        let h = q.horizon();
        let t = 2 * h + 3;
        // Scheduled while `t` is beyond the horizon → heap.
        q.push(SimTime(t), EventKind::Inject { pkt: 7 });
        // Advance the wheel close to `t`...
        q.push(SimTime(t - 2), EventKind::Inject { pkt: 1 });
        assert_eq!(q.pop().unwrap().time.0, t - 2);
        // ...so this lands in the wheel bucket for the same cycle `t`.
        q.push(SimTime(t), EventKind::Inject { pkt: 3 });
        let pkts: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.canonical_key().2)
            .collect();
        assert_eq!(pkts, vec![3, 7], "same cycle drains by pkey, not by origin");
    }

    #[test]
    fn same_cycle_push_during_drain_keeps_canonical_order() {
        let mut q = EventQueue::new();
        q.push(SimTime(5), EventKind::Inject { pkt: 2 });
        q.push(SimTime(5), EventKind::Inject { pkt: 8 });
        assert_eq!(q.pop().unwrap().canonical_key().2, 2);
        // Mid-drain insertions at the active cycle, straddling pkt 8.
        q.push(SimTime(5), EventKind::Inject { pkt: 4 });
        q.push(SimTime(5), EventKind::Inject { pkt: 9 });
        let pkts: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.canonical_key().2)
            .collect();
        assert_eq!(pkts, vec![4, 8, 9]);
    }

    #[test]
    fn push_at_just_drained_cycle_is_not_lost() {
        let mut q = EventQueue::new();
        q.push(SimTime(3), EventKind::Inject { pkt: 0 });
        assert_eq!(q.pop().unwrap().time.0, 3);
        assert!(q.is_empty());
        // A handler firing at cycle 3 schedules more same-cycle work
        // after the bucket drained.
        q.push(SimTime(3), EventKind::Reroute { pkt: 0, node: 1 });
        assert_eq!(q.next_time(), Some(3));
        assert_eq!(q.pop().unwrap().time.0, 3);
    }

    #[test]
    fn pop_before_respects_the_window_edge() {
        let mut q = EventQueue::new();
        q.push(SimTime(4), EventKind::Inject { pkt: 0 });
        q.push(SimTime(9), EventKind::Inject { pkt: 1 });
        assert_eq!(q.pop_before(9).unwrap().time.0, 4);
        assert!(q.pop_before(9).is_none(), "event at the edge stays queued");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_before(10).unwrap().time.0, 9);
        assert!(q.pop_before(u64::MAX).is_none());
    }

    #[test]
    fn extract_spans_wheel_spillover_and_active_cycle() {
        let mut q = EventQueue::with_horizon(8);
        let h = q.horizon();
        q.push(SimTime(1), EventKind::Arrive { pkt: 0, node: 7, from: 7 });
        q.push(SimTime(1), EventKind::Arrive { pkt: 1, node: 2, from: 2 });
        q.push(SimTime(3), EventKind::Arrive { pkt: 2, node: 7, from: 1 });
        q.push(SimTime(5 * h), EventKind::Arrive { pkt: 3, node: 7, from: 4 });
        // Activate cycle 1 so one match sits in `cur` mid-drain.
        assert_eq!(q.pop().unwrap().canonical_key().2, 0);
        let claimed = q.extract(|k| matches!(k, EventKind::Arrive { node, .. } if *node == 7));
        let pkts: Vec<u64> = claimed.iter().map(|e| e.canonical_key().2).collect();
        assert_eq!(pkts, vec![2, 3], "claimed across wheel and heap in order");
        // The survivor (pkt 1 at the active cycle) still pops.
        assert_eq!(q.pop().unwrap().canonical_key().2, 1);
        assert!(q.is_empty());
    }

    // ---- Slab ----

    #[test]
    fn slab_insert_get_free_round_trip() {
        let mut s = Slab::new();
        let a = s.insert("alpha");
        let b = s.insert("beta");
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(s.get(a), Some(&"alpha"));
        assert_eq!(s.get_idx(1), Some(&"beta"));
        assert_eq!(s.free(a), Some("alpha"));
        assert_eq!(s.live_count(), 1);
        let live: Vec<usize> = s.iter_live().map(|(i, _)| i).collect();
        assert_eq!(live, vec![1]);
    }

    #[test]
    fn stale_handle_does_not_resurrect_a_freed_slot() {
        let mut s = Slab::new();
        let h = s.insert(42u32);
        assert_eq!(s.free_idx(h.index()), Some(42));
        // The handle minted before the death no longer resolves —
        // generation mismatch, not a panic, and never a stale value.
        assert_eq!(s.get(h), None);
        assert_eq!(s.get_mut(h), None);
        assert_eq!(s.free(h), None, "double-free through a stale handle is a no-op");
        assert_eq!(s.get_idx(h.index()), None);
        assert_eq!(s.handle_at(h.index()), None);
    }

    #[test]
    fn generation_distinguishes_death_from_migration() {
        let mut s = Slab::new();
        let h = s.insert(7u8);
        // Cross-shard handoff: take + put leave the generation alone,
        // so the handle stays valid across the migration.
        let v = s.take_idx(h.index()).unwrap();
        assert_eq!(s.get(h), None, "mid-migration slot is empty");
        s.put_idx(h.index(), v);
        assert_eq!(s.get(h), Some(&7), "same handle resolves after re-seat");
        // Death bumps the generation: the same slot index with a fresh
        // lookup now reports gone.
        s.free(h).unwrap();
        assert_eq!(s.get(h), None);
    }

    #[test]
    #[should_panic(expected = "already occupied")]
    fn put_into_an_occupied_slot_panics() {
        let mut s = Slab::new();
        let h = s.insert(1u8);
        s.put_idx(h.index(), 2u8);
    }

    #[test]
    fn snapshot_restore_preserves_drain_order_and_seq() {
        use ddpm_topology::NodeId;
        let mut q = EventQueue::with_horizon(8);
        let h = q.horizon();
        q.push(SimTime(4), EventKind::Inject { pkt: 3 });
        q.push(SimTime(4), EventKind::Watchdog);
        q.push(
            SimTime(4),
            EventKind::Fault {
                event: FaultEvent::SwitchDown { node: NodeId(2) },
            },
        );
        q.push(SimTime(9 * h), EventKind::Inject { pkt: 1 }); // spillover
        q.push(SimTime(2), EventKind::Arrive { pkt: 0, node: 1, from: 1 });
        // Partially drain so `cur` holds active-cycle residue.
        assert_eq!(q.pop().unwrap().time.0, 2);

        let (events, seq) = q.snapshot_events();
        assert_eq!(events.len(), q.len());
        let mut r = EventQueue::restore(h, events, seq);
        // Future pushes continue the original tie-break counter.
        q.push(SimTime(4), EventKind::Inject { pkt: 5 });
        r.push(SimTime(4), EventKind::Inject { pkt: 5 });
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.canonical_key()).collect();
        let b: Vec<_> = std::iter::from_fn(|| r.pop()).map(|e| e.canonical_key()).collect();
        assert_eq!(a, b, "restored queue drains identically");
    }

    #[test]
    fn generation_wraps_at_max_without_panic_or_false_match() {
        let mut s = Slab::new();
        let h = s.insert("payload");
        s.set_generation(h.index(), u32::MAX);
        // The pre-bump handle (gen 0) is already stale against MAX.
        assert_eq!(s.get(h), None);
        let live = s.handle_at(h.index()).expect("slot is live");
        assert_eq!(live.generation(), u32::MAX);
        assert_eq!(s.get(live), Some(&"payload"));
        // Freeing at the counter's edge wraps to 0 instead of panicking.
        assert_eq!(s.free(live), Some("payload"));
        assert_eq!(s.generation_of(h.index()), Some(0));
        // Neither the max-generation handle nor the wrapped-to-zero
        // original can resurrect the slot: the payload is gone.
        assert_eq!(s.get(live), None);
        assert_eq!(s.get(h), None, "gen matches but the value is dead");
        assert_eq!(s.free(h), None);
        assert_eq!(s.get_idx(h.index()), None);
    }

    #[test]
    fn free_idx_wraps_generation_at_max() {
        let mut s = Slab::new();
        let h = s.insert(1u8);
        s.set_generation(h.index(), u32::MAX);
        assert_eq!(s.free_idx(h.index()), Some(1));
        assert_eq!(s.generation_of(h.index()), Some(0), "wrapped, not panicked");
        assert_eq!(s.handle_at(h.index()), None);
    }

    #[test]
    fn ensure_len_mirrors_sparse_indices() {
        let mut s: Slab<u8> = Slab::new();
        s.ensure_len(4);
        assert_eq!(s.len(), 4);
        assert_eq!(s.live_count(), 0);
        s.put_idx(6, 9); // auto-extends
        assert_eq!(s.len(), 7);
        assert_eq!(s.get_idx(6), Some(&9));
        assert_eq!(s.handle_at(6).map(SlabHandle::generation), Some(0));
    }
}
