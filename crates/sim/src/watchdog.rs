//! Liveness watchdog: configuration and statistics.
//!
//! The watchdog is the simulator's answer to the three classic
//! interconnect liveness failures:
//!
//! * **deadlock** — the whole network stops making progress (no packet
//!   delivered or forwarded for [`WatchdogConfig::stall_cycles`]);
//! * **livelock** — a packet keeps moving but never arrives (its age
//!   exceeds [`WatchdogConfig::max_age`] while its hop count still
//!   grows), the turn-model + random-selection pathology documented in
//!   EXPERIMENTS.md E-RESIL;
//! * **starvation** — a packet sits parked (retry backoff, contention)
//!   past [`WatchdogConfig::max_age`] while the rest of the network
//!   progresses.
//!
//! Escalation is two-staged and always ends in a **typed outcome**,
//! never a silent hang: an overage packet is first rerouted onto the
//! [`WatchdogConfig::escape`] router (deadlock-free dimension-order by
//! default) with a fresh reroute allowance; if it is still unresolved
//! one `max_age` later it is dropped as
//! [`crate::DropReason::LivelockEscaped`]. A network-wide stall drops
//! every live packet as [`crate::DropReason::DeadlockVictim`].

use ddpm_routing::Router;

/// Tunable liveness-watchdog parameters. Install via
/// [`crate::SimConfigBuilder::watchdog`]; `None` (the default) disables
/// the watchdog entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogConfig {
    /// Cycles between watchdog sweeps. The watchdog arms itself lazily
    /// at the first injection and disarms when nothing is in flight, so
    /// an idle network pays nothing.
    pub check_period: u64,
    /// A packet older than this (cycles since injection) is considered
    /// livelocked or starved and is escalated. Also the grace period an
    /// escaped packet gets on the escape router before the typed drop.
    pub max_age: u64,
    /// If no packet is delivered *or forwarded* for this many cycles
    /// while packets are live, the network is declared deadlocked and
    /// every live packet is dropped as a
    /// [`crate::DropReason::DeadlockVictim`]. Keep this comfortably
    /// above the largest retry backoff ([`crate::RetryPolicy`]'s
    /// `max_delay`) so legitimate waits are not misdiagnosed.
    pub stall_cycles: u64,
    /// Recovery router for escalated packets. `Some(router)` reroutes
    /// the packet over it (selection forced to deterministic `First`);
    /// `None` skips the recovery stage and drops immediately.
    pub escape: Option<Router>,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            check_period: 128,
            max_age: 4096,
            stall_cycles: 2048,
            escape: Some(Router::DimensionOrder),
        }
    }
}

/// What the watchdog saw and did during one run. Lives in
/// [`crate::SimStats::watchdog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WatchdogStats {
    /// Sweeps performed.
    pub checks: u64,
    /// Packets detected livelocked: over age and still accumulating
    /// hops — wandering without arriving.
    pub livelocks: u64,
    /// Packets detected starved: over age with no hop progress since
    /// the previous sweep while the network as a whole progressed.
    pub starvations: u64,
    /// Network-wide deadlock declarations (each drops all live packets).
    pub deadlocks: u64,
    /// Packets rerouted onto the escape router.
    pub escapes: u64,
    /// Oldest in-flight age observed at any sweep, in cycles.
    pub max_age_seen: u64,
}

impl WatchdogStats {
    /// Total liveness detections across all three failure classes.
    #[must_use]
    pub fn detections(&self) -> u64 {
        self.livelocks + self.starvations + self.deadlocks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_leave_room_for_retry_backoff() {
        let wd = WatchdogConfig::default();
        assert!(wd.stall_cycles > 256, "must exceed default retry max_delay");
        assert!(wd.max_age > wd.stall_cycles);
        assert!(wd.check_period < wd.stall_cycles);
        assert_eq!(wd.escape, Some(Router::DimensionOrder));
    }

    #[test]
    fn detections_sum_all_classes() {
        let s = WatchdogStats {
            livelocks: 2,
            starvations: 1,
            deadlocks: 1,
            ..WatchdogStats::default()
        };
        assert_eq!(s.detections(), 4);
    }
}
