//! Simulator configuration.

/// A bounded exponential-backoff retry policy, used for graceful
/// degradation under dynamic faults: source-side injection retries when
/// the local switch is down, and in-network reroute retries when a
/// packet is stranded with no admissible output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries before the packet is dropped (0 = fail
    /// immediately, the pre-fault-tolerance behaviour).
    pub retries: u32,
    /// Delay before the first retry, in cycles. Doubles per attempt.
    pub backoff: u64,
    /// Upper bound on the per-attempt delay, in cycles.
    pub max_delay: u64,
}

impl RetryPolicy {
    /// No retries: fail on first contact with a fault.
    pub const OFF: Self = Self {
        retries: 0,
        backoff: 0,
        max_delay: 0,
    };

    /// `retries` attempts with exponential backoff starting at `backoff`
    /// cycles, capped at `max_delay`.
    #[must_use]
    pub fn capped(retries: u32, backoff: u64, max_delay: u64) -> Self {
        Self {
            retries,
            backoff,
            max_delay,
        }
    }

    /// Delay before retry number `attempt` (0-based):
    /// `min(backoff · 2^attempt, max_delay)`, and at least one cycle so
    /// retries always advance simulated time.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> u64 {
        let shifted = self.backoff.saturating_mul(1u64 << attempt.min(32));
        shifted.min(self.max_delay).max(1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::OFF
    }
}

/// Tunable parameters of a simulation run.
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Propagation latency of one link, in cycles.
    pub link_latency: u64,
    /// Serialisation time of one packet through one output port, in
    /// cycles (1/port bandwidth).
    pub service_cycles: u64,
    /// Output-buffer capacity per port, in packets. When a port's backlog
    /// reaches this depth, further packets are dropped — the resource the
    /// volumetric DDoS attacks of §1 exhaust.
    pub buffer_packets: u32,
    /// Hard per-packet hop limit (livelock guard, in addition to TTL).
    pub max_hops: u32,
    /// Record the full node path of every delivered packet. Costs memory;
    /// used by path-reconstruction experiments and debugging.
    pub record_paths: bool,
    /// Per-traversal probability that a link flips one random bit of the
    /// 20-byte IP header. The receiving switch verifies the Internet
    /// checksum and discards damaged packets (every single-bit error is
    /// detected by RFC 1071 arithmetic), so corruption costs delivery,
    /// never correctness.
    pub bit_error_rate: f64,
    /// Source-side injection retry policy: when a packet's local switch
    /// is down at injection time, the compute node re-offers the packet
    /// after a backoff instead of losing it. [`RetryPolicy::OFF`]
    /// (default) drops immediately.
    pub inject_retry: RetryPolicy,
    /// In-network reroute retry policy: when routing offers no admissible
    /// output port (a transient fault may heal), the switch parks the
    /// packet and re-queries the *live* fault state after a backoff.
    /// [`RetryPolicy::OFF`] (default) drops as `Blocked` immediately —
    /// the pre-fault-tolerance behaviour.
    pub reroute_retry: RetryPolicy,
    /// RNG seed. Identical configs + identical injections ⇒ identical
    /// runs.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            link_latency: 2,
            service_cycles: 4,
            buffer_packets: 16,
            max_hops: 256,
            record_paths: false,
            bit_error_rate: 0.0,
            inject_retry: RetryPolicy::OFF,
            reroute_retry: RetryPolicy::OFF,
            seed: 0xDD9A,
        }
    }
}

impl SimConfig {
    /// Config with a given seed, other parameters default.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Config with paths recorded (reconstruction experiments).
    #[must_use]
    pub fn with_paths(mut self) -> Self {
        self.record_paths = true;
        self
    }

    /// Config with graceful degradation enabled: `retries` reroute and
    /// injection attempts each, with exponential backoff starting at one
    /// service time and capped at `cap` cycles.
    #[must_use]
    pub fn with_fault_tolerance(mut self, retries: u32, cap: u64) -> Self {
        self.inject_retry = RetryPolicy::capped(retries, self.service_cycles.max(1), cap);
        self.reroute_retry = RetryPolicy::capped(retries, self.service_cycles.max(1), cap);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = SimConfig::seeded(42).with_paths();
        assert_eq!(c.seed, 42);
        assert!(c.record_paths);
        assert_eq!(c.link_latency, SimConfig::default().link_latency);
        assert_eq!(c.reroute_retry, RetryPolicy::OFF);
        let ft = c.with_fault_tolerance(4, 100);
        assert_eq!(ft.reroute_retry.retries, 4);
        assert_eq!(ft.inject_retry.retries, 4);
    }

    #[test]
    fn retry_delay_doubles_and_caps() {
        let p = RetryPolicy::capped(6, 8, 50);
        assert_eq!(p.delay(0), 8);
        assert_eq!(p.delay(1), 16);
        assert_eq!(p.delay(2), 32);
        assert_eq!(p.delay(3), 50, "capped");
        assert_eq!(p.delay(63), 50, "huge attempts saturate, no overflow");
        assert_eq!(RetryPolicy::OFF.delay(0), 1, "time always advances");
    }
}
