//! Simulator configuration.

use serde::{Deserialize, Serialize};

/// Tunable parameters of a simulation run.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Propagation latency of one link, in cycles.
    pub link_latency: u64,
    /// Serialisation time of one packet through one output port, in
    /// cycles (1/port bandwidth).
    pub service_cycles: u64,
    /// Output-buffer capacity per port, in packets. When a port's backlog
    /// reaches this depth, further packets are dropped — the resource the
    /// volumetric DDoS attacks of §1 exhaust.
    pub buffer_packets: u32,
    /// Hard per-packet hop limit (livelock guard, in addition to TTL).
    pub max_hops: u32,
    /// Record the full node path of every delivered packet. Costs memory;
    /// used by path-reconstruction experiments and debugging.
    pub record_paths: bool,
    /// Per-traversal probability that a link flips one random bit of the
    /// 20-byte IP header. The receiving switch verifies the Internet
    /// checksum and discards damaged packets (every single-bit error is
    /// detected by RFC 1071 arithmetic), so corruption costs delivery,
    /// never correctness.
    pub bit_error_rate: f64,
    /// RNG seed. Identical configs + identical injections ⇒ identical
    /// runs.
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            link_latency: 2,
            service_cycles: 4,
            buffer_packets: 16,
            max_hops: 256,
            record_paths: false,
            bit_error_rate: 0.0,
            seed: 0xDD9A,
        }
    }
}

impl SimConfig {
    /// Config with a given seed, other parameters default.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Config with paths recorded (reconstruction experiments).
    #[must_use]
    pub fn with_paths(mut self) -> Self {
        self.record_paths = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders() {
        let c = SimConfig::seeded(42).with_paths();
        assert_eq!(c.seed, 42);
        assert!(c.record_paths);
        assert_eq!(c.link_latency, SimConfig::default().link_latency);
    }
}
