//! Simulator configuration.

use crate::adversary::AdversarySpec;
use crate::invariant::InvariantConfig;
use crate::scheme::SchemeSpec;
use crate::watchdog::WatchdogConfig;
use ddpm_telemetry::TelemetryConfig;

/// A bounded exponential-backoff retry policy, used for graceful
/// degradation under dynamic faults: source-side injection retries when
/// the local switch is down, and in-network reroute retries when a
/// packet is stranded with no admissible output port.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retries before the packet is dropped (0 = fail
    /// immediately, the pre-fault-tolerance behaviour).
    pub retries: u32,
    /// Delay before the first retry, in cycles. Doubles per attempt.
    pub backoff: u64,
    /// Upper bound on the per-attempt delay, in cycles.
    pub max_delay: u64,
}

impl RetryPolicy {
    /// No retries: fail on first contact with a fault.
    pub const OFF: Self = Self {
        retries: 0,
        backoff: 0,
        max_delay: 0,
    };

    /// `retries` attempts with exponential backoff starting at `backoff`
    /// cycles, capped at `max_delay`.
    #[must_use]
    pub fn capped(retries: u32, backoff: u64, max_delay: u64) -> Self {
        Self {
            retries,
            backoff,
            max_delay,
        }
    }

    /// Delay before retry number `attempt` (0-based):
    /// `min(backoff · 2^attempt, max_delay)`, and at least one cycle so
    /// retries always advance simulated time.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> u64 {
        let shifted = self.backoff.saturating_mul(1u64 << attempt.min(32));
        shifted.min(self.max_delay).max(1)
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::OFF
    }
}

/// Crash-consistent checkpointing knobs. The simulator itself is
/// checkpoint-agnostic — it only exposes [`crate::Simulation::snapshot`]
/// and `run_until` — so this block is pure driver configuration: the
/// scenario runner (`ddpm-bench`) reads it and calls into
/// `ddpm-checkpoint` to write snapshots at the configured cadence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Cycles between checkpoints. A checkpoint is written at the first
    /// opportunity at or after each multiple of `every`.
    pub every: u64,
    /// Directory checkpoints are written into (created if absent).
    pub dir: std::path::PathBuf,
    /// How many of the most recent checkpoints to retain (older ones
    /// are pruned after each successful write). Minimum 1.
    pub keep: usize,
    /// Test hook: abort the process (simulating a crash) once simulated
    /// time reaches this cycle, *without* writing a final checkpoint —
    /// everything since the last on-disk checkpoint is genuinely lost.
    pub crash_at: Option<u64>,
}

impl CheckpointConfig {
    /// Checkpoints every `every` cycles into `dir`, keeping the default
    /// two most recent files (so a torn final write always leaves a
    /// usable predecessor).
    #[must_use]
    pub fn new(every: u64, dir: impl Into<std::path::PathBuf>) -> Self {
        Self {
            every: every.max(1),
            dir: dir.into(),
            keep: 2,
            crash_at: None,
        }
    }
}

/// Which execution engine runs the event loop.
///
/// The engines are **deterministically equivalent**: for a given config
/// and injection schedule, delivered packets, typed drops, marks,
/// statistics and invariant verdicts are bit-identical. `Sharded` only
/// changes wall-clock cost, never results — the property the
/// `ddpm-engine` equivalence suite pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Engine {
    /// The single-threaded event loop (`Simulation::run`).
    #[default]
    Serial,
    /// The conservative spatially-sharded parallel engine
    /// (`ddpm-engine`): switches are partitioned into `shards` shards,
    /// each with its own event queue and worker, synchronizing on cycle
    /// windows bounded by the 1-hop lookahead.
    Sharded {
        /// Number of spatial shards (clamped to at least 1; a value of
        /// 1 falls back to the serial loop).
        shards: usize,
    },
}

impl Engine {
    /// Parses the scenario-file / CLI spelling: `serial` or `sharded`
    /// (shard count supplied separately).
    pub fn parse(name: &str, shards: usize) -> Result<Self, String> {
        match name {
            "serial" => Ok(Self::Serial),
            "sharded" => Ok(Self::Sharded {
                shards: shards.max(1),
            }),
            other => Err(format!("unknown engine `{other}` (serial|sharded)")),
        }
    }

    /// Stable name (`serial` / `sharded`).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            Self::Serial => "serial",
            Self::Sharded { .. } => "sharded",
        }
    }
}

/// Tunable parameters of a simulation run.
///
/// Construct via [`SimConfig::builder`]:
///
/// ```
/// use ddpm_sim::{RetryPolicy, SimConfig};
/// let cfg = SimConfig::builder()
///     .link_latency(1)
///     .seed(42)
///     .fault_tolerance(RetryPolicy::capped(6, 4, 256))
///     .build();
/// assert_eq!(cfg.reroute_retry.retries, 6);
/// ```
///
/// `Default` and direct field access remain available so existing
/// callers migrate incrementally.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Propagation latency of one link, in cycles.
    pub link_latency: u64,
    /// Serialisation time of one packet through one output port, in
    /// cycles (1/port bandwidth).
    pub service_cycles: u64,
    /// Output-buffer capacity per port, in packets. When a port's backlog
    /// reaches this depth, further packets are dropped — the resource the
    /// volumetric DDoS attacks of §1 exhaust.
    pub buffer_packets: u32,
    /// Hard per-packet hop limit (livelock guard, in addition to TTL).
    pub max_hops: u32,
    /// Record the full node path of every delivered packet. Costs memory;
    /// used by path-reconstruction experiments and debugging.
    pub record_paths: bool,
    /// Per-traversal probability that a link flips one random bit of the
    /// 20-byte IP header. The receiving switch verifies the Internet
    /// checksum and discards damaged packets (every single-bit error is
    /// detected by RFC 1071 arithmetic), so corruption costs delivery,
    /// never correctness.
    pub bit_error_rate: f64,
    /// Source-side injection retry policy: when a packet's local switch
    /// is down at injection time, the compute node re-offers the packet
    /// after a backoff instead of losing it. [`RetryPolicy::OFF`]
    /// (default) drops immediately.
    pub inject_retry: RetryPolicy,
    /// In-network reroute retry policy: when routing offers no admissible
    /// output port (a transient fault may heal), the switch parks the
    /// packet and re-queries the *live* fault state after a backoff.
    /// [`RetryPolicy::OFF`] (default) drops as `Blocked` immediately —
    /// the pre-fault-tolerance behaviour.
    pub reroute_retry: RetryPolicy,
    /// What the run records and where it goes (events, profiling,
    /// sinks). Fully off by default — the zero-cost path.
    pub telemetry: TelemetryConfig,
    /// Liveness watchdog (deadlock/livelock/starvation detection with
    /// escape-route recovery). `None` (default) disables it.
    pub watchdog: Option<WatchdogConfig>,
    /// Runtime invariant checking (conservation, mark-in-transit,
    /// fault coherence, path consistency). On by default in debug
    /// builds, opt-in for release.
    pub invariants: InvariantConfig,
    /// RNG seed. Identical configs + identical injections ⇒ identical
    /// runs.
    pub seed: u64,
    /// Which execution engine runs the event loop. Results are
    /// engine-invariant; only wall-clock cost changes.
    pub engine: Engine,
    /// Which traceback scheme the run's marker/collector pair belongs
    /// to. Purely descriptive for the simulator core (the caller still
    /// passes the concrete `Marker`); drivers use it to build the
    /// matching scheme object and to label telemetry. `None` (default)
    /// means "unspecified" — the pre-plugin-API behaviour.
    pub scheme: Option<SchemeSpec>,
    /// Keyed-tag width override for `auth-*` schemes, in bits. `None`
    /// (default) lets the scheme claim its whole spare marking-field
    /// budget; explicit values are validated against that budget (and
    /// the minimum tag width) when the scheme is built.
    pub tag_bits: Option<u32>,
    /// Compromised-switch adversary (driver-interpreted, like
    /// [`SimConfig::scheme`]): which switches' marking planes misbehave
    /// and how. The simulator core uses it only to flag `MarkTamper`
    /// telemetry at compromised switches; the tampering `Marker`
    /// wrapper itself is built by the driver (`ddpm-attack`). `None`
    /// (default) means every switch is honest.
    pub adversary: Option<AdversarySpec>,
    /// Crash-consistent checkpointing (driver-interpreted; `None`
    /// disables it). Results are checkpoint-invariant: a checkpointed
    /// and resumed run reproduces the uninterrupted run bit-for-bit.
    pub checkpoint: Option<CheckpointConfig>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            link_latency: 2,
            service_cycles: 4,
            buffer_packets: 16,
            max_hops: 256,
            record_paths: false,
            bit_error_rate: 0.0,
            inject_retry: RetryPolicy::OFF,
            reroute_retry: RetryPolicy::OFF,
            telemetry: TelemetryConfig::default(),
            watchdog: None,
            invariants: InvariantConfig::default(),
            seed: 0xDD9A,
            engine: Engine::Serial,
            scheme: None,
            tag_bits: None,
            adversary: None,
            checkpoint: None,
        }
    }
}

impl SimConfig {
    /// Starts a builder from the defaults.
    #[must_use]
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Continues building from an existing config (e.g. one parsed from
    /// a scenario file).
    #[must_use]
    pub fn to_builder(self) -> SimConfigBuilder {
        SimConfigBuilder { cfg: self }
    }

    /// Config with a given seed, other parameters default.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Config with paths recorded (reconstruction experiments).
    #[must_use]
    pub fn with_paths(mut self) -> Self {
        self.record_paths = true;
        self
    }
}

/// Fluent constructor for [`SimConfig`]; finish with
/// [`SimConfigBuilder::build`].
#[derive(Clone, Debug, Default)]
pub struct SimConfigBuilder {
    cfg: SimConfig,
}

impl SimConfigBuilder {
    /// Sets the per-link propagation latency, in cycles.
    #[must_use]
    pub fn link_latency(mut self, cycles: u64) -> Self {
        self.cfg.link_latency = cycles;
        self
    }

    /// Sets the per-port packet serialisation time, in cycles.
    #[must_use]
    pub fn service_cycles(mut self, cycles: u64) -> Self {
        self.cfg.service_cycles = cycles;
        self
    }

    /// Sets the output-buffer depth per port, in packets.
    #[must_use]
    pub fn buffer_packets(mut self, packets: u32) -> Self {
        self.cfg.buffer_packets = packets;
        self
    }

    /// Sets the per-packet hop limit.
    #[must_use]
    pub fn max_hops(mut self, hops: u32) -> Self {
        self.cfg.max_hops = hops;
        self
    }

    /// Records the full node path of every delivered packet.
    #[must_use]
    pub fn record_paths(mut self, on: bool) -> Self {
        self.cfg.record_paths = on;
        self
    }

    /// Sets the per-traversal single-bit link error probability.
    #[must_use]
    pub fn bit_error_rate(mut self, rate: f64) -> Self {
        self.cfg.bit_error_rate = rate;
        self
    }

    /// Enables graceful degradation: `policy` governs both injection and
    /// reroute retries. (This folds the old `with_fault_tolerance`
    /// constructor into the builder.)
    #[must_use]
    pub fn fault_tolerance(mut self, policy: RetryPolicy) -> Self {
        self.cfg.inject_retry = policy;
        self.cfg.reroute_retry = policy;
        self
    }

    /// Sets the source-side injection retry policy alone.
    #[must_use]
    pub fn inject_retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.inject_retry = policy;
        self
    }

    /// Sets the in-network reroute retry policy alone.
    #[must_use]
    pub fn reroute_retry(mut self, policy: RetryPolicy) -> Self {
        self.cfg.reroute_retry = policy;
        self
    }

    /// Sets the telemetry configuration.
    #[must_use]
    pub fn telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.cfg.telemetry = telemetry;
        self
    }

    /// Installs the liveness watchdog.
    #[must_use]
    pub fn watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.cfg.watchdog = Some(watchdog);
        self
    }

    /// Sets the invariant-checker configuration.
    #[must_use]
    pub fn invariants(mut self, invariants: InvariantConfig) -> Self {
        self.cfg.invariants = invariants;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Selects the execution engine (results are engine-invariant).
    #[must_use]
    pub fn engine(mut self, engine: Engine) -> Self {
        self.cfg.engine = engine;
        self
    }

    /// Records which traceback scheme the run uses (see
    /// [`SimConfig::scheme`]).
    #[must_use]
    pub fn scheme(mut self, scheme: SchemeSpec) -> Self {
        self.cfg.scheme = Some(scheme);
        self
    }

    /// Overrides the keyed-tag width of `auth-*` schemes (see
    /// [`SimConfig::tag_bits`]).
    #[must_use]
    pub fn tag_bits(mut self, bits: u32) -> Self {
        self.cfg.tag_bits = Some(bits);
        self
    }

    /// Installs a compromised-switch adversary (see
    /// [`SimConfig::adversary`]).
    #[must_use]
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.cfg.adversary = Some(adversary);
        self
    }

    /// Enables crash-consistent checkpointing (results are
    /// checkpoint-invariant; see [`CheckpointConfig`]).
    #[must_use]
    pub fn checkpoint(mut self, checkpoint: CheckpointConfig) -> Self {
        self.cfg.checkpoint = Some(checkpoint);
        self
    }

    /// Finishes, yielding the config.
    #[must_use]
    pub fn build(self) -> SimConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversaryBehavior;
    use ddpm_topology::NodeId;

    #[test]
    fn builder_covers_every_knob() {
        let adversary = AdversarySpec::new(
            vec![NodeId(5)],
            AdversaryBehavior::Skip,
            None,
            3,
        );
        let cfg = SimConfig::builder()
            .link_latency(1)
            .service_cycles(3)
            .buffer_packets(9)
            .max_hops(77)
            .record_paths(true)
            .bit_error_rate(0.25)
            .fault_tolerance(RetryPolicy::capped(4, 2, 100))
            .telemetry(TelemetryConfig::profiled())
            .watchdog(WatchdogConfig::default())
            .invariants(InvariantConfig::strict())
            .seed(42)
            .engine(Engine::Sharded { shards: 4 })
            .scheme(SchemeSpec::Ddpm)
            .tag_bits(8)
            .adversary(adversary.clone())
            .checkpoint(CheckpointConfig::new(500, "/tmp/ckpt"))
            .build();
        assert_eq!(cfg.link_latency, 1);
        assert_eq!(cfg.service_cycles, 3);
        assert_eq!(cfg.buffer_packets, 9);
        assert_eq!(cfg.max_hops, 77);
        assert!(cfg.record_paths);
        assert_eq!(cfg.bit_error_rate, 0.25);
        assert_eq!(cfg.inject_retry.retries, 4);
        assert_eq!(cfg.reroute_retry, cfg.inject_retry);
        assert!(cfg.telemetry.profile);
        assert_eq!(cfg.watchdog, Some(WatchdogConfig::default()));
        assert!(cfg.invariants.enabled && cfg.invariants.panic_on_violation);
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.engine, Engine::Sharded { shards: 4 });
        assert_eq!(cfg.scheme, Some(SchemeSpec::Ddpm));
        assert_eq!(cfg.tag_bits, Some(8));
        assert_eq!(cfg.adversary, Some(adversary));
        let ck = cfg.checkpoint.expect("checkpoint knob set");
        assert_eq!(ck.every, 500);
        assert_eq!(ck.dir, std::path::PathBuf::from("/tmp/ckpt"));
        assert_eq!(ck.keep, 2, "default retention keeps a fallback");
        assert_eq!(ck.crash_at, None);
    }

    #[test]
    fn checkpoint_defaults_off_and_every_clamps() {
        assert_eq!(SimConfig::default().checkpoint, None);
        assert_eq!(CheckpointConfig::new(0, "x").every, 1, "cadence clamps to 1");
    }

    #[test]
    fn engine_parses_and_defaults_serial() {
        assert_eq!(SimConfig::default().engine, Engine::Serial);
        assert_eq!(Engine::parse("serial", 8), Ok(Engine::Serial));
        assert_eq!(
            Engine::parse("sharded", 4),
            Ok(Engine::Sharded { shards: 4 })
        );
        assert_eq!(
            Engine::parse("sharded", 0),
            Ok(Engine::Sharded { shards: 1 }),
            "shard count clamps to 1"
        );
        assert!(Engine::parse("warp", 4).is_err());
        assert_eq!(Engine::Serial.as_str(), "serial");
        assert_eq!(Engine::Sharded { shards: 2 }.as_str(), "sharded");
    }

    #[test]
    fn builder_defaults_match_default() {
        let built = SimConfig::builder().build();
        let def = SimConfig::default();
        assert_eq!(built.link_latency, def.link_latency);
        assert_eq!(built.seed, def.seed);
        assert_eq!(built.reroute_retry, RetryPolicy::OFF);
        assert!(!built.telemetry.enabled());
        assert_eq!(built.watchdog, None, "watchdog is opt-in");
        assert_eq!(built.scheme, None, "scheme label is opt-in");
        assert_eq!(built.tag_bits, None, "tag width defaults to the spare budget");
        assert_eq!(built.adversary, None, "switches are honest by default");
        assert_eq!(
            built.invariants.enabled,
            cfg!(debug_assertions),
            "checker defaults on in debug, off in release"
        );
    }

    #[test]
    fn to_builder_resumes_from_existing_config() {
        let cfg = SimConfig::seeded(7)
            .to_builder()
            .reroute_retry(RetryPolicy::capped(2, 1, 10))
            .build();
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.reroute_retry.retries, 2);
        assert_eq!(cfg.inject_retry, RetryPolicy::OFF, "only reroute set");
    }

    #[test]
    fn legacy_shorthands_still_work() {
        let c = SimConfig::seeded(42).with_paths();
        assert_eq!(c.seed, 42);
        assert!(c.record_paths);
        assert_eq!(c.link_latency, SimConfig::default().link_latency);
        assert_eq!(c.reroute_retry, RetryPolicy::OFF);
    }

    #[test]
    fn retry_delay_doubles_and_caps() {
        let p = RetryPolicy::capped(6, 8, 50);
        assert_eq!(p.delay(0), 8);
        assert_eq!(p.delay(1), 16);
        assert_eq!(p.delay(2), 32);
        assert_eq!(p.delay(3), 50, "capped");
        assert_eq!(p.delay(63), 50, "huge attempts saturate, no overflow");
        assert_eq!(RetryPolicy::OFF.delay(0), 1, "time always advances");
    }
}
