//! Run statistics.

use ddpm_net::TrafficClass;

/// Streaming latency summary (count / sum / min / max).
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyStats {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples, in cycles.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl LatencyStats {
    /// Records one latency sample, in cycles.
    pub fn record(&mut self, cycles: u64) {
        if self.count == 0 {
            self.min = cycles;
            self.max = cycles;
        } else {
            self.min = self.min.min(cycles);
            self.max = self.max.max(cycles);
        }
        self.count += 1;
        self.sum += cycles;
    }

    /// Mean latency, or `None` with no samples.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }
}

/// Counters for one traffic class.
#[derive(Clone, Copy, Debug, Default)]
pub struct ClassStats {
    /// Packets handed to source switches.
    pub injected: u64,
    /// Packets delivered to their destination compute node.
    pub delivered: u64,
    /// Packets dropped on output-buffer overflow (congestion loss).
    pub dropped_buffer: u64,
    /// Packets dropped on TTL exhaustion.
    pub dropped_ttl: u64,
    /// Packets dropped because routing offered no admissible port.
    pub dropped_blocked: u64,
    /// Packets dropped by the per-packet hop limit.
    pub dropped_hop_limit: u64,
    /// Packets dropped by an installed traceback filter (mitigation).
    pub dropped_filtered: u64,
    /// Packets discarded after link corruption (checksum mismatch).
    pub dropped_corrupt: u64,
    /// Packets lost fail-stop at a failed switch (queued or in flight
    /// toward it when it died).
    pub dropped_switch_down: u64,
    /// Packets lost on the wire of a link that failed mid-flight.
    pub dropped_link_down: u64,
    /// Packets dropped after exhausting reroute retries while stranded
    /// by faults.
    pub dropped_reroute: u64,
    /// Packets dropped after exhausting injection retries at a downed
    /// source switch.
    pub dropped_source_down: u64,
    /// End-to-end latency of delivered packets.
    pub latency: LatencyStats,
    /// Total hops of delivered packets.
    pub total_hops: u64,
}

impl ClassStats {
    /// All drops combined.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped_buffer
            + self.dropped_ttl
            + self.dropped_blocked
            + self.dropped_hop_limit
            + self.dropped_filtered
            + self.dropped_corrupt
            + self.dropped_fault()
    }

    /// Drops directly caused by dynamic faults (fail-stop losses plus
    /// exhausted retries).
    #[must_use]
    pub fn dropped_fault(&self) -> u64 {
        self.dropped_switch_down
            + self.dropped_link_down
            + self.dropped_reroute
            + self.dropped_source_down
    }

    /// Delivered fraction of injected.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.injected == 0 {
            return 1.0;
        }
        self.delivered as f64 / self.injected as f64
    }

    /// Mean hops of delivered packets.
    #[must_use]
    pub fn mean_hops(&self) -> Option<f64> {
        (self.delivered > 0).then(|| self.total_hops as f64 / self.delivered as f64)
    }
}

/// Dynamic-fault bookkeeping for one run (aggregate across traffic
/// classes; the per-class fault drops live in [`ClassStats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Fault events applied from the schedule.
    pub events_applied: u64,
    /// Packets injected while at least one fault was active.
    pub window_injected: u64,
    /// Of those, packets that were still delivered.
    pub window_delivered: u64,
    /// Total cycles during which at least one fault was active.
    pub degraded_cycles: u64,
    /// Time-to-recovery samples: cycles from the repair that restored
    /// full health to the next successful delivery.
    pub recovery: LatencyStats,
}

impl FaultStats {
    /// Delivery ratio of packets injected while faults were active —
    /// the graceful-degradation headline number. `1.0` when no packet
    /// was injected under faults.
    #[must_use]
    pub fn window_delivery_ratio(&self) -> f64 {
        if self.window_injected == 0 {
            return 1.0;
        }
        self.window_delivered as f64 / self.window_injected as f64
    }
}

/// Full-run statistics, split by traffic class.
#[derive(Clone, Copy, Debug, Default)]
pub struct SimStats {
    /// Counters for benign traffic.
    pub benign: ClassStats,
    /// Counters for attack traffic.
    pub attack: ClassStats,
    /// Dynamic-fault bookkeeping (zeroed when no schedule is installed).
    pub faults: FaultStats,
    /// Simulated end time (cycles at last event).
    pub end_time: u64,
}

impl SimStats {
    /// The counter block for `class`.
    #[must_use]
    pub fn class(&self, class: TrafficClass) -> &ClassStats {
        match class {
            TrafficClass::Benign => &self.benign,
            TrafficClass::Attack => &self.attack,
        }
    }

    /// Mutable counter block for `class`.
    pub fn class_mut(&mut self, class: TrafficClass) -> &mut ClassStats {
        match class {
            TrafficClass::Benign => &mut self.benign,
            TrafficClass::Attack => &mut self.attack,
        }
    }

    /// Combined totals across classes.
    #[must_use]
    pub fn total(&self) -> ClassStats {
        let mut t = self.benign;
        let a = &self.attack;
        t.injected += a.injected;
        t.delivered += a.delivered;
        t.dropped_buffer += a.dropped_buffer;
        t.dropped_ttl += a.dropped_ttl;
        t.dropped_blocked += a.dropped_blocked;
        t.dropped_hop_limit += a.dropped_hop_limit;
        t.dropped_filtered += a.dropped_filtered;
        t.dropped_corrupt += a.dropped_corrupt;
        t.dropped_switch_down += a.dropped_switch_down;
        t.dropped_link_down += a.dropped_link_down;
        t.dropped_reroute += a.dropped_reroute;
        t.dropped_source_down += a.dropped_source_down;
        t.total_hops += a.total_hops;
        t.latency.count += a.latency.count;
        t.latency.sum += a.latency.sum;
        if a.latency.count > 0 {
            if t.latency.count == a.latency.count {
                t.latency.min = a.latency.min;
                t.latency.max = a.latency.max;
            } else {
                t.latency.min = t.latency.min.min(a.latency.min);
                t.latency.max = t.latency.max.max(a.latency.max);
            }
        }
        t
    }

    /// Fault-caused drops across both traffic classes.
    #[must_use]
    pub fn fault_drops(&self) -> u64 {
        self.benign.dropped_fault() + self.attack.dropped_fault()
    }

    /// Conservation check: every injected packet is delivered, dropped,
    /// or still in flight.
    #[must_use]
    pub fn accounted(&self, in_flight: u64) -> bool {
        let t = self.total();
        t.injected == t.delivered + t.dropped() + in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_streaming() {
        let mut l = LatencyStats::default();
        assert_eq!(l.mean(), None);
        l.record(10);
        l.record(20);
        l.record(3);
        assert_eq!(l.count, 3);
        assert_eq!(l.min, 3);
        assert_eq!(l.max, 20);
        assert_eq!(l.mean(), Some(11.0));
    }

    #[test]
    fn totals_combine() {
        let mut s = SimStats::default();
        s.benign.injected = 10;
        s.benign.delivered = 8;
        s.benign.dropped_buffer = 2;
        s.attack.injected = 5;
        s.attack.delivered = 5;
        s.benign.latency.record(4);
        s.attack.latency.record(2);
        s.attack.latency.record(8);
        let t = s.total();
        assert_eq!(t.injected, 15);
        assert_eq!(t.delivered, 13);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.latency.count, 3);
        assert_eq!(t.latency.min, 2);
        assert_eq!(t.latency.max, 8);
        assert!(s.accounted(0));
        assert!(!s.accounted(1));
    }

    #[test]
    fn delivery_ratio_empty_is_one() {
        let c = ClassStats::default();
        assert_eq!(c.delivery_ratio(), 1.0);
    }

    #[test]
    fn fault_drops_roll_up() {
        let mut s = SimStats::default();
        s.benign.injected = 4;
        s.benign.dropped_switch_down = 1;
        s.benign.dropped_link_down = 1;
        s.attack.injected = 3;
        s.attack.dropped_reroute = 1;
        s.attack.dropped_source_down = 1;
        assert_eq!(s.fault_drops(), 4);
        assert_eq!(s.total().dropped(), 4, "fault drops count as drops");
        assert!(s.accounted(3));
    }

    #[test]
    fn window_ratio_defaults_to_one() {
        let f = FaultStats::default();
        assert_eq!(f.window_delivery_ratio(), 1.0);
        let f = FaultStats {
            window_injected: 8,
            window_delivered: 6,
            ..FaultStats::default()
        };
        assert_eq!(f.window_delivery_ratio(), 0.75);
    }
}
