//! Run statistics.
//!
//! The per-class counter block lives in `ddpm-telemetry` as
//! [`ClassCounters`] — one shape shared by this simulator, the indirect
//! (`ddpm-indirect`) simulator, and every experiment report. This module
//! keeps the direct-network aggregates built on top of it.

use crate::watchdog::WatchdogStats;
use ddpm_net::TrafficClass;

pub use ddpm_telemetry::{ClassCounters, LatencyStats};

/// Per-traffic-class counters. Alias kept so existing callers migrate
/// incrementally; the canonical name is [`ClassCounters`].
pub type ClassStats = ClassCounters;

/// Dynamic-fault bookkeeping for one run (aggregate across traffic
/// classes; the per-class fault drops live in [`ClassCounters`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultStats {
    /// Fault events applied from the schedule.
    pub events_applied: u64,
    /// Packets injected while at least one fault was active.
    pub window_injected: u64,
    /// Of those, packets that were still delivered.
    pub window_delivered: u64,
    /// Total cycles during which at least one fault was active.
    pub degraded_cycles: u64,
    /// Time-to-recovery samples: cycles from the repair that restored
    /// full health to the next successful delivery.
    pub recovery: LatencyStats,
}

impl FaultStats {
    /// Delivery ratio of packets injected while faults were active —
    /// the graceful-degradation headline number. `1.0` when no packet
    /// was injected under faults.
    #[must_use]
    pub fn window_delivery_ratio(&self) -> f64 {
        if self.window_injected == 0 {
            return 1.0;
        }
        self.window_delivered as f64 / self.window_injected as f64
    }
}

/// Full-run statistics, split by traffic class.
#[derive(Clone, Copy, Default)]
pub struct SimStats {
    /// Counters for benign traffic.
    pub benign: ClassCounters,
    /// Counters for attack traffic.
    pub attack: ClassCounters,
    /// Dynamic-fault bookkeeping (zeroed when no schedule is installed).
    pub faults: FaultStats,
    /// Liveness-watchdog bookkeeping (zeroed when no watchdog is
    /// installed).
    pub watchdog: WatchdogStats,
    /// Simulated end time (cycles at last event).
    pub end_time: u64,
    /// True if a telemetry sink failed mid-run and was degraded to a
    /// null sink (the simulation itself completed normally; only the
    /// trace is incomplete).
    pub telemetry_degraded: bool,
    /// High-water mark of packet-arena bytes (struct-of-arrays slots +
    /// resident cold payloads + staged-injection backlog). Memory
    /// telemetry, excluded from `Debug` so conformance digests are
    /// untouched.
    pub peak_arena_bytes: u64,
    /// Bytes of the dense per-port busy table (fixed per topology).
    /// Memory telemetry, excluded from `Debug` like
    /// [`SimStats::peak_arena_bytes`].
    pub port_bytes: u64,
}

// Hand-written so the conformance digest (which hashes `{stats:?}`)
// is unchanged for healthy runs: the `telemetry_degraded` field is
// printed only when set. Must otherwise match derived output exactly.
impl std::fmt::Debug for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut d = f.debug_struct("SimStats");
        d.field("benign", &self.benign)
            .field("attack", &self.attack)
            .field("faults", &self.faults)
            .field("watchdog", &self.watchdog)
            .field("end_time", &self.end_time);
        if self.telemetry_degraded {
            d.field("telemetry_degraded", &self.telemetry_degraded);
        }
        d.finish()
    }
}

impl SimStats {
    /// The counter block for `class`.
    #[must_use]
    pub fn class(&self, class: TrafficClass) -> &ClassCounters {
        match class {
            TrafficClass::Benign => &self.benign,
            TrafficClass::Attack => &self.attack,
        }
    }

    /// Mutable counter block for `class`.
    pub fn class_mut(&mut self, class: TrafficClass) -> &mut ClassCounters {
        match class {
            TrafficClass::Benign => &mut self.benign,
            TrafficClass::Attack => &mut self.attack,
        }
    }

    /// Combined totals across classes.
    #[must_use]
    pub fn total(&self) -> ClassCounters {
        let mut t = self.benign;
        t.absorb(&self.attack);
        t
    }

    /// Fault-caused drops across both traffic classes.
    #[must_use]
    pub fn fault_drops(&self) -> u64 {
        self.benign.dropped_fault() + self.attack.dropped_fault()
    }

    /// Conservation check: every injected packet is delivered, dropped,
    /// or still in flight.
    #[must_use]
    pub fn accounted(&self, in_flight: u64) -> bool {
        let t = self.total();
        t.injected == t.delivered + t.dropped() + in_flight
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_combine() {
        let mut s = SimStats::default();
        s.benign.injected = 10;
        s.benign.delivered = 8;
        s.benign.dropped_buffer = 2;
        s.attack.injected = 5;
        s.attack.delivered = 5;
        s.benign.latency.record(4);
        s.attack.latency.record(2);
        s.attack.latency.record(8);
        let t = s.total();
        assert_eq!(t.injected, 15);
        assert_eq!(t.delivered, 13);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.latency.count, 3);
        assert_eq!(t.latency.min, 2);
        assert_eq!(t.latency.max, 8);
        assert!(s.accounted(0));
        assert!(!s.accounted(1));
    }

    #[test]
    fn fault_drops_roll_up() {
        let mut s = SimStats::default();
        s.benign.injected = 4;
        s.benign.dropped_switch_down = 1;
        s.benign.dropped_link_down = 1;
        s.attack.injected = 3;
        s.attack.dropped_reroute = 1;
        s.attack.dropped_source_down = 1;
        assert_eq!(s.fault_drops(), 4);
        assert_eq!(s.total().dropped(), 4, "fault drops count as drops");
        assert!(s.accounted(3));
    }

    #[test]
    fn degraded_flag_is_invisible_in_debug_until_set() {
        let mut s = SimStats::default();
        let healthy = format!("{s:?}");
        assert!(
            !healthy.contains("telemetry_degraded"),
            "healthy runs keep the pre-existing Debug shape (digest stability)"
        );
        assert!(healthy.starts_with("SimStats {"));
        s.telemetry_degraded = true;
        assert!(format!("{s:?}").contains("telemetry_degraded: true"));
    }

    #[test]
    fn memory_telemetry_never_prints() {
        let s = SimStats {
            peak_arena_bytes: 123,
            port_bytes: 456,
            ..SimStats::default()
        };
        let out = format!("{s:?}");
        assert!(
            !out.contains("arena") && !out.contains("port_bytes"),
            "memory fields must stay out of the digested Debug shape"
        );
    }

    #[test]
    fn window_ratio_defaults_to_one() {
        let f = FaultStats::default();
        assert_eq!(f.window_delivery_ratio(), 1.0);
        let f = FaultStats {
            window_injected: 8,
            window_delivered: 6,
            ..FaultStats::default()
        };
        assert_eq!(f.window_delivery_ratio(), 0.75);
    }
}
