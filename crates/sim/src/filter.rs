//! Mitigation filter hooks.
//!
//! "Once a source or a path is identified, we can protect our system by
//! blocking packets from that source or that path." (§2). Filters are
//! the enforcement half of that sentence: trusted switch-resident rules
//! consulted at two points —
//!
//! * **injection**: the switch attached to the offending compute node
//!   refuses traffic its own node injects (source quarantine — possible
//!   because switch and node are separate entities, §4.1);
//! * **delivery**: the victim's switch discards matching packets before
//!   they reach the victim node (e.g. DPM's signature blocking: "The
//!   victim can block all following traffic with that marking value",
//!   §2).
//!
//! Implementations with interior mutability (see `ddpm_core::filter`)
//! can be updated mid-run as traceback identifies new sources.

use ddpm_net::Packet;
use ddpm_topology::Coord;

/// A switch-resident blocking policy.
pub trait Filter: Sync {
    /// True to drop `pkt` at its source switch (quarantine).
    fn block_at_injection(&self, _pkt: &Packet, _src: &Coord) -> bool {
        false
    }

    /// True to drop `pkt` at the destination switch (victim-side guard).
    fn block_at_delivery(&self, _pkt: &Packet, _dst: &Coord) -> bool {
        false
    }
}

/// The pass-everything policy.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFilter;

impl Filter for NoFilter {}
