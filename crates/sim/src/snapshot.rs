//! Complete dynamic simulator state as plain data, for checkpointing.
//!
//! A [`SimSnapshot`] captures everything about a run that *changes* as
//! simulated time passes: the event queue (wheel **and** heap
//! spillover, with the tie-break sequence counter), the packet arena
//! (per-slot generation counters and in-flight payloads, including
//! each packet's private RNG stream position), the dense port busy
//! array, live faults, statistics, the delivered/drop logs that feed
//! the scenario digest, and the watchdog/invariant-checker state.
//!
//! What it deliberately does **not** capture is the *static* half of a
//! simulation — topology, router, marker, filter, config — which the
//! driver reconstructs deterministically from the scenario description
//! before calling [`crate::Simulation::restore`]. The `ddpm-checkpoint`
//! crate owns the on-disk encoding of this struct plus a fingerprint
//! of that static half, so a snapshot can never be restored into a
//! mismatched world.
//!
//! The contract: `snapshot()` at any event boundary, `restore()` into
//! a freshly built simulation, and the continued run is bit-identical
//! to the uninterrupted one — same deliveries, drops, violations,
//! statistics and therefore the same `ScenarioOutcome.digest`.

use crate::event::Event;
use crate::invariant::Violation;
use crate::network::{Delivered, DropReason};
use crate::stats::SimStats;
use ddpm_net::{Packet, PacketId};
use ddpm_routing::RouteState;
use ddpm_telemetry::PacketEvent;
use ddpm_topology::NodeId;

/// One in-flight packet's complete dynamic state.
#[derive(Clone, Debug, PartialEq)]
pub struct FlightSnap {
    /// The packet itself (header, transport, ground truth).
    pub packet: Packet,
    /// Switch-visible routing bookkeeping.
    pub state: RouteState,
    /// The packet's private RNG stream position (xoshiro256++ words).
    pub rng: [u64; 4],
    /// Cycle the packet was injected.
    pub injected_at: u64,
    /// Recorded node path (empty unless `record_paths`).
    pub path: Vec<NodeId>,
    /// Source-side injection attempts so far.
    pub inject_attempts: u32,
    /// Reroute retries so far at the current stranding.
    pub reroutes: u32,
    /// True if the packet was injected while faults were active.
    pub under_fault: bool,
    /// True once the packet actually entered the network.
    pub launched: bool,
    /// True once the watchdog moved it onto the escape router.
    pub escaped: bool,
    /// Cycle of the escape, if any.
    pub escaped_at: u64,
    /// Cycle of the packet's most recent hop.
    pub last_hop_at: u64,
    /// Switch currently holding (or last seen holding) the packet.
    pub last_node: u32,
    /// Marking-field value as last observed on the wire.
    pub wire_mf: u16,
}

/// One packet-arena slot: its generation counter plus the payload if
/// the packet is still materialised.
#[derive(Clone, Debug, PartialEq)]
pub struct SlotSnap {
    /// Generation counter (bumped on every free; stale handles check
    /// against it).
    pub generation: u32,
    /// The in-flight payload, `None` once delivered/dropped.
    pub flight: Option<FlightSnap>,
}

/// Complete dynamic simulator state at one event boundary.
#[derive(Clone, Debug)]
pub struct SimSnapshot {
    /// Simulated time of the last processed event.
    pub now: u64,
    /// Every pending event in canonical order (wheel + spillover).
    pub events: Vec<Event>,
    /// The queue's insertion-sequence counter.
    pub queue_seq: u64,
    /// The packet arena, slot by slot.
    pub slots: Vec<SlotSnap>,
    /// Dense per-port busy-until times.
    pub ports: Vec<u64>,
    /// Run statistics accumulated so far.
    pub stats: SimStats,
    /// Delivered-packet log (feeds the scenario digest).
    pub delivered: Vec<Delivered>,
    /// Drop log (feeds the scenario digest).
    pub drops: Vec<(PacketId, DropReason)>,
    /// Failed links of the live fault set (normalised, sorted).
    pub failed_links: Vec<(NodeId, NodeId)>,
    /// Failed switches of the live fault set (sorted).
    pub failed_switches: Vec<NodeId>,
    /// Cycle at which the current degraded window opened, if faults
    /// are active.
    pub degraded_since: Option<u64>,
    /// Cycle of the repair that restored full health, while awaiting
    /// the next delivery (time-to-recovery sampling).
    pub pending_recovery: Option<u64>,
    /// Packets currently materialised in the network.
    pub live_count: u64,
    /// Conservation mirror: packets launched so far.
    pub injected_total: u64,
    /// Conservation mirror: packets delivered so far.
    pub delivered_total: u64,
    /// Conservation mirror: packets dropped so far.
    pub dropped_total: u64,
    /// `(cycle, node)` of the most recently retired packet
    /// (attribution for events that race a packet's death).
    pub gone_info: (u64, u32),
    /// Cycle of the last global progress (delivery or forward).
    pub last_progress: u64,
    /// True while a watchdog sweep is scheduled.
    pub watchdog_armed: bool,
    /// Staged (not yet materialised) injections, in time order —
    /// the bounded-memory injection backlog.
    pub pending: Vec<(u64, Packet)>,
    /// High-water mark of the staged backlog.
    pub pending_peak: u64,
    /// High-water mark of packet-arena bytes so far.
    pub peak_arena_bytes: u64,
    /// Invariant violations recorded so far.
    pub violations: Vec<Violation>,
    /// The invariant checker's bounded trace tail, oldest first.
    pub trace_tail: Vec<PacketEvent>,
    /// True once the checker's synthetic self-test violation fired.
    pub selftest_fired: bool,
    /// The marking-plane adversary's dynamic state, when the run has
    /// one. The core simulator neither reads nor writes this — the
    /// scenario driver captures it from `AdversaryModel` at snapshot
    /// time and restores it before resuming, so a resumed adversarial
    /// run tampers bit-identically to the uninterrupted one.
    pub adversary: Option<crate::adversary::AdversaryState>,
}

impl SimSnapshot {
    /// Number of live packets materialised in this snapshot (recomputed
    /// from the slots; equals [`SimSnapshot::live_count`] for any
    /// snapshot the simulator produced).
    #[must_use]
    pub fn live_flights(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.flight.as_ref().is_some_and(|f| f.launched))
            .count()
    }
}
