//! The switch-side marking hook.
//!
//! Marking schemes (PPM, DPM, DDPM — implemented in `ddpm-core`) plug
//! into the simulator through [`Marker`]. The two call sites mirror the
//! paper's switch behaviour:
//!
//! * [`Marker::on_inject`] fires when a compute node hands a packet to
//!   its local switch — "V is set to a zero vector when the packet first
//!   enters a switch from a computing node" (§5). Because the *switch*
//!   resets the field, an attacker pre-loading a forged marking value
//!   gains nothing.
//! * [`Marker::on_forward`] fires each time a switch has chosen the next
//!   hop and is about to transmit — the body of Fig. 4's algorithm.
//!
//! Markers are trusted code running on switches, which the paper assumes
//! cannot be compromised (§4.1).

use ddpm_net::Packet;
use ddpm_topology::{Coord, Topology};
use rand::rngs::SmallRng;

/// Read-only context handed to marking hooks.
pub struct MarkEnv<'a> {
    /// The network topology (switches know their own coordinates and the
    /// regular structure — §4.1's index mapping).
    pub topo: &'a Topology,
}

/// A packet-marking scheme, as executed by switches.
pub trait Marker: Sync {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Called at the source switch when the compute node injects the
    /// packet. Typical implementations reset the marking field.
    fn on_inject(&self, pkt: &mut Packet, src: &Coord, env: &MarkEnv<'_>);

    /// Called at switch `cur` after routing selected `next`, before the
    /// packet leaves. `rng` supports probabilistic schemes (PPM).
    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    );

    /// Called at the destination switch just before handing the packet
    /// to the victim's compute node. The PPM example of Fig. 3(a) needs
    /// this step: the victim's own switch completes or ages pending edge
    /// marks (the edge `(0110, 1110, 0)` has its end written by victim
    /// switch `1110`). Default: no-op.
    fn on_deliver(
        &self,
        _pkt: &mut Packet,
        _dest: &Coord,
        _env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
    }
}

/// The do-nothing scheme: baseline runs without traceback support.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMarking;

impl Marker for NoMarking {
    fn name(&self) -> &'static str {
        "none"
    }

    fn on_inject(&self, _pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {}

    fn on_forward(
        &self,
        _pkt: &mut Packet,
        _cur: &Coord,
        _next: &Coord,
        _env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
    }
}
