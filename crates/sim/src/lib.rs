//! Packet-level discrete-event simulation of cluster interconnects.
//!
//! This crate is the evaluation substrate for the DDPM reproduction: a
//! deterministic discrete-event simulator of a direct network in which
//! every node couples a compute element with a switch (§4.1: "one node
//! consists of a switch and a computing node, but they are separate
//! entities"). Switches route (via `ddpm-routing`), mark packets (via a
//! [`mark::Marker`] hook implemented by `ddpm-core`'s schemes), contend
//! for output ports, and drop packets on buffer overflow or TTL
//! exhaustion.
//!
//! ## Fidelity level
//!
//! The paper's claims concern header marking and source identification,
//! not flow control, so we simulate at **packet granularity** with
//! store-and-forward switching: per-port serialisation delay, link
//! latency, and finite output buffers. This preserves everything the
//! evaluation needs — paths, hop counts, congestion, loss — at a small
//! fraction of the cost of a flit-level wormhole model (see DESIGN.md §4
//! for the substitution note).
//!
//! ## Determinism
//!
//! Runs are exactly reproducible: every in-flight packet carries its own
//! [`rand::rngs::SmallRng`] stream seeded from `(run seed, handle)`, so
//! a packet's random decisions are independent of how other packets'
//! events interleave, and the event queue orders same-cycle events by a
//! canonical `(time, rank, packet, seq)` key rather than raw insertion
//! order. Together these make the serial engine and the sharded engine
//! (`ddpm-engine`, selected via [`config::Engine`]) produce bit-identical
//! results.

#![warn(missing_docs)]

pub mod adversary;
pub mod config;
pub mod event;
pub mod filter;
pub mod invariant;
pub mod mark;
pub mod network;
pub mod scheme;
pub mod snapshot;
pub mod stats;
pub mod time;
pub mod watchdog;

pub use adversary::{AdversaryBehavior, AdversarySpec, AdversaryState};
pub use config::{CheckpointConfig, Engine, RetryPolicy, SimConfig, SimConfigBuilder};
pub use filter::{Filter, NoFilter};
pub use invariant::{InvariantChecker, InvariantConfig, Violation};
pub use mark::{MarkEnv, Marker, NoMarking};
pub use network::{Delivered, DropReason, Simulation};
pub use scheme::{Attribution, Collector, HopCost, MarkingScheme, SchemeSpec, CONVICTION_CONFIDENCE};
pub use snapshot::{FlightSnap, SimSnapshot, SlotSnap};
pub use stats::{ClassCounters, ClassStats, FaultStats, LatencyStats, SimStats};
pub use time::SimTime;
pub use watchdog::{WatchdogConfig, WatchdogStats};
