//! The data-only adversary selector: which switches are compromised
//! and how their *marking plane* misbehaves.
//!
//! Section 4.1 of the paper hedges that "switches cannot be
//! compromised" and sketches authentication as the remedy if that
//! assumption falls. This module is the configuration half of dropping
//! the assumption: a [`AdversarySpec`] names a set of compromised
//! switches and a per-run [`AdversaryBehavior`], carried by
//! [`crate::SimConfig`] and scenario files exactly like
//! [`crate::SchemeSpec`]. The *mechanism* — the `Marker` wrapper that
//! actually tampers with marking fields — lives in `ddpm-attack`
//! (`AdversaryModel`), which depends on this crate.
//!
//! ## Split-trust threat model
//!
//! Only the **marking plane** of a compromised switch is evil: it may
//! skip, forge, randomize or replay the marking-field update. The
//! forwarding plane (routing, TTL decrement, buffering) stays correct —
//! a switch that corrupts forwarding takes the fabric down, which is a
//! *different*, already-measured failure (the fault-injection layer).
//! Compromised switches do **not** hold the authentication key of
//! `auth-*` schemes; forging a valid tag means guessing, at the
//! documented `2^-t` per packet.
//!
//! The spec is plain data so the simulator can flag `MarkTamper`
//! telemetry at compromised switches, the checkpoint codec can persist
//! the adversary's dynamic state ([`AdversaryState`]), and both engines
//! drive the same deterministic behavior from the run RNG.

use ddpm_topology::NodeId;

/// How a compromised switch's marking plane misbehaves.
///
/// Every behavior is deterministic given the adversary seed and the
/// packet id, so serial and sharded runs tamper identically.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdversaryBehavior {
    /// Silently skip the marking update (the §6.2 "stale mark" threat).
    Skip,
    /// Overwrite the field with a forged story implicating the
    /// configured innocent node (requires [`AdversarySpec::framed`]).
    Frame,
    /// Overwrite the field with uniform random bits.
    Randomize,
    /// Replace the field with the last field this switch saw (any
    /// flow), then let the honest update run on the replayed state.
    Replay,
    /// Mark pollution: overwrite with a well-formed forged story from a
    /// rotating innocent node, flooding the victim's census.
    MarkFlood,
    /// Colluding framers: every compromised switch tells the *same*
    /// forged story about [`AdversarySpec::framed`], and leaves a
    /// co-conspirator's forgery intact instead of re-stamping it.
    Collude,
}

impl AdversaryBehavior {
    /// Every behavior, in canonical (report-grid) order.
    pub const ALL: [AdversaryBehavior; 6] = [
        AdversaryBehavior::Skip,
        AdversaryBehavior::Frame,
        AdversaryBehavior::Randomize,
        AdversaryBehavior::Replay,
        AdversaryBehavior::MarkFlood,
        AdversaryBehavior::Collude,
    ];

    /// Parses a behavior name as written in scenario files.
    ///
    /// # Errors
    /// Unknown names report the accepted spellings.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "skip" => Ok(AdversaryBehavior::Skip),
            "frame" => Ok(AdversaryBehavior::Frame),
            "randomize" => Ok(AdversaryBehavior::Randomize),
            "replay" => Ok(AdversaryBehavior::Replay),
            "mark-flood" => Ok(AdversaryBehavior::MarkFlood),
            "collude" => Ok(AdversaryBehavior::Collude),
            other => Err(format!(
                "unknown adversary behavior `{other}` \
                 (skip|frame|randomize|replay|mark-flood|collude)"
            )),
        }
    }

    /// The canonical name.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            AdversaryBehavior::Skip => "skip",
            AdversaryBehavior::Frame => "frame",
            AdversaryBehavior::Randomize => "randomize",
            AdversaryBehavior::Replay => "replay",
            AdversaryBehavior::MarkFlood => "mark-flood",
            AdversaryBehavior::Collude => "collude",
        }
    }

    /// True for behaviors that need a designated innocent to frame.
    #[must_use]
    pub fn needs_framed(self) -> bool {
        matches!(self, AdversaryBehavior::Frame | AdversaryBehavior::Collude)
    }
}

/// The compromised-switch configuration of one run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdversarySpec {
    /// Compromised switches, by dense node id, sorted and deduplicated
    /// by [`AdversarySpec::new`]. Per-switch dynamic state
    /// ([`AdversaryState`]) is indexed by position in this list.
    pub switches: Vec<NodeId>,
    /// The shared misbehavior.
    pub behavior: AdversaryBehavior,
    /// The innocent node framed by `frame`/`collude`.
    pub framed: Option<NodeId>,
    /// Seed for the adversary's private randomness (tag guesses,
    /// pollution-source rotation), independent of the run seed.
    pub seed: u64,
}

impl AdversarySpec {
    /// Normalises the switch list (sorted, deduplicated).
    #[must_use]
    pub fn new(
        mut switches: Vec<NodeId>,
        behavior: AdversaryBehavior,
        framed: Option<NodeId>,
        seed: u64,
    ) -> Self {
        switches.sort_unstable_by_key(|n| n.0);
        switches.dedup();
        Self {
            switches,
            behavior,
            framed,
            seed,
        }
    }

    /// Position of `node` in the compromised list, if compromised.
    #[must_use]
    pub fn index_of(&self, node: NodeId) -> Option<usize> {
        self.switches.binary_search_by_key(&node.0, |n| n.0).ok()
    }

    /// A fresh (all-zero) dynamic state sized for this spec.
    #[must_use]
    pub fn fresh_state(&self) -> AdversaryState {
        AdversaryState {
            last_seen: vec![None; self.switches.len()],
            tampered: vec![0; self.switches.len()],
        }
    }
}

/// The adversary's dynamic state, as plain data for checkpointing.
///
/// Indexed by position in [`AdversarySpec::switches`]. Captured by the
/// scenario driver next to [`crate::SimSnapshot`] so a resumed run
/// replays and tampers bit-identically to the uninterrupted one.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct AdversaryState {
    /// Per switch: the last marking-field value seen (feeds `replay`).
    pub last_seen: Vec<Option<u16>>,
    /// Per switch: packets whose field this switch tampered with.
    pub tampered: Vec<u64>,
}

impl AdversaryState {
    /// Total tampered packets across all compromised switches.
    #[must_use]
    pub fn total_tampered(&self) -> u64 {
        self.tampered.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behavior_names_round_trip() {
        for b in AdversaryBehavior::ALL {
            assert_eq!(AdversaryBehavior::parse(b.as_str()), Ok(b));
        }
        let err = AdversaryBehavior::parse("sabotage").unwrap_err();
        assert!(err.contains("unknown adversary behavior `sabotage`"), "{err}");
        assert!(err.contains("mark-flood"), "{err}");
    }

    #[test]
    fn spec_normalises_and_indexes() {
        let spec = AdversarySpec::new(
            vec![NodeId(9), NodeId(2), NodeId(9)],
            AdversaryBehavior::Skip,
            None,
            7,
        );
        assert_eq!(spec.switches, vec![NodeId(2), NodeId(9)]);
        assert_eq!(spec.index_of(NodeId(9)), Some(1));
        assert_eq!(spec.index_of(NodeId(3)), None);
        let st = spec.fresh_state();
        assert_eq!(st.last_seen.len(), 2);
        assert_eq!(st.total_tampered(), 0);
    }

    #[test]
    fn framed_requirement_is_declared() {
        assert!(AdversaryBehavior::Frame.needs_framed());
        assert!(AdversaryBehavior::Collude.needs_framed());
        assert!(!AdversaryBehavior::Replay.needs_framed());
    }
}
