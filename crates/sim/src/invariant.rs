//! Runtime invariant checking.
//!
//! The simulator's correctness rests on a handful of invariants that
//! should hold at *every* event, not just at the end of a run:
//!
//! * **conservation** — `injected == delivered + dropped + in_flight`;
//! * **mark_in_transit** — the marking field never changes on the wire
//!   (only switches rewrite it; link bit errors are checksummed and
//!   dropped);
//! * **fault_coherence** — routing never commits a packet to a faulty
//!   link or a dead switch;
//! * **path_consistency** — a delivered packet's recorded path length
//!   equals its hop count plus one.
//!
//! The [`InvariantChecker`] verifies these as the run executes. It is
//! on by default in debug builds (so every test runs checked) and
//! opt-in for release builds. Alongside the violation log it keeps a
//! bounded ring of the most recent lifecycle events — the **trace
//! tail** — which the soak harness snapshots into an on-disk repro
//! bundle so any failure can be replayed with `report -- replay`.

use ddpm_telemetry::PacketEvent;
use std::collections::VecDeque;

/// Invariant-checker knobs, installed via
/// [`crate::SimConfigBuilder::invariants`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvariantConfig {
    /// Master switch. Defaults to on in debug builds (tests), off in
    /// release (benchmarks pay nothing).
    pub enabled: bool,
    /// How many trailing lifecycle events to keep for repro bundles.
    /// `0` disables the tail (violations are still detected).
    pub trace_tail: usize,
    /// Panic on the first violation (default in debug builds) instead
    /// of logging it. The soak harness turns this off so it can capture
    /// the violation into a bundle and keep fuzzing.
    pub panic_on_violation: bool,
    /// Chaos self-test: inject one synthetic violation at the first
    /// event at or after this cycle. This exercises the entire
    /// violation → bundle → replay pipeline deterministically without
    /// needing a real simulator bug.
    pub selftest_at: Option<u64>,
}

impl Default for InvariantConfig {
    fn default() -> Self {
        Self {
            enabled: cfg!(debug_assertions),
            trace_tail: 256,
            panic_on_violation: cfg!(debug_assertions),
            selftest_at: None,
        }
    }
}

impl InvariantConfig {
    /// Checking force-enabled (release-mode opt-in), panicking on the
    /// first violation.
    #[must_use]
    pub fn strict() -> Self {
        Self {
            enabled: true,
            panic_on_violation: true,
            ..Self::default()
        }
    }

    /// Checking force-enabled but *recording* violations instead of
    /// panicking — the soak-harness mode.
    #[must_use]
    pub fn recording() -> Self {
        Self {
            enabled: true,
            panic_on_violation: false,
            ..Self::default()
        }
    }

    /// Checking fully disabled, even in debug builds.
    #[must_use]
    pub fn off() -> Self {
        Self {
            enabled: false,
            panic_on_violation: false,
            ..Self::default()
        }
    }
}

/// One recorded invariant violation. `(cycle, pkt, invariant)` is the
/// identity used by `report -- replay` to confirm a bundle reproduces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Simulated cycle at which the violation was detected.
    pub cycle: u64,
    /// Raw id of the packet being processed (0 for packet-less events).
    pub pkt: u64,
    /// Switch where it was detected (`u32::MAX` for network-level).
    pub node: u32,
    /// Stable invariant identifier (e.g. `conservation`).
    pub invariant: &'static str,
    /// Human-readable specifics (observed vs expected values).
    pub detail: String,
}

impl Violation {
    /// The replay identity: same seed ⇒ same `(cycle, pkt, invariant)`.
    #[must_use]
    pub fn identity(&self) -> (u64, u64, &'static str) {
        (self.cycle, self.pkt, self.invariant)
    }
}

/// Runtime invariant checker state: the violation log plus the bounded
/// trace tail. Owned by the simulation; inspect after a run via
/// `Simulation::violations` / `Simulation::trace_tail`.
#[derive(Debug)]
pub struct InvariantChecker {
    cfg: InvariantConfig,
    violations: Vec<Violation>,
    tail: VecDeque<PacketEvent>,
    selftest_fired: bool,
}

impl InvariantChecker {
    /// Builds a checker from its config.
    #[must_use]
    pub fn new(cfg: InvariantConfig) -> Self {
        Self {
            cfg,
            violations: Vec::new(),
            tail: VecDeque::new(),
            selftest_fired: false,
        }
    }

    /// Is checking active?
    #[inline]
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// Is the trace tail being recorded?
    #[inline]
    #[must_use]
    pub fn tail_on(&self) -> bool {
        self.cfg.enabled && self.cfg.trace_tail > 0
    }

    /// The config this checker was built with.
    #[must_use]
    pub fn config(&self) -> &InvariantConfig {
        &self.cfg
    }

    /// Appends one lifecycle event to the bounded tail.
    pub fn record_tail(&mut self, ev: PacketEvent) {
        if !self.tail_on() {
            return;
        }
        if self.tail.len() == self.cfg.trace_tail {
            self.tail.pop_front();
        }
        self.tail.push_back(ev);
    }

    /// Records a violation; returns true if the caller should panic
    /// (per [`InvariantConfig::panic_on_violation`]).
    pub fn report(&mut self, v: Violation) -> bool {
        self.violations.push(v);
        self.cfg.panic_on_violation
    }

    /// The cycle at which the synthetic self-test violation is still
    /// due, if any.
    #[must_use]
    pub fn selftest_pending(&self) -> Option<u64> {
        if self.selftest_fired {
            return None;
        }
        self.cfg.selftest_at
    }

    /// Marks the self-test violation as injected.
    pub fn mark_selftest_fired(&mut self) {
        self.selftest_fired = true;
    }

    /// Violations recorded so far (empty in a correct run).
    #[must_use]
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The trailing lifecycle events, oldest first.
    #[must_use]
    pub fn tail_events(&self) -> Vec<PacketEvent> {
        self.tail.iter().copied().collect()
    }

    /// True once the synthetic self-test violation has been injected.
    #[must_use]
    pub fn selftest_fired(&self) -> bool {
        self.selftest_fired
    }

    /// Reinstalls checkpointed state into a freshly built checker: the
    /// violation log, the trace tail (oldest first; truncated to the
    /// configured bound) and the self-test latch.
    pub fn restore_state(
        &mut self,
        violations: Vec<Violation>,
        tail: Vec<PacketEvent>,
        selftest_fired: bool,
    ) {
        self.violations = violations;
        self.tail = tail
            .into_iter()
            .rev()
            .take(self.cfg.trace_tail)
            .rev()
            .collect();
        self.selftest_fired = selftest_fired;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_telemetry::EventKind;

    fn ev(cycle: u64) -> PacketEvent {
        PacketEvent {
            cycle,
            pkt: 1,
            node: 0,
            kind: EventKind::Inject,
        }
    }

    #[test]
    fn tail_is_bounded_and_ordered() {
        let mut c = InvariantChecker::new(InvariantConfig {
            enabled: true,
            trace_tail: 3,
            ..InvariantConfig::recording()
        });
        for t in 0..10 {
            c.record_tail(ev(t));
        }
        let cycles: Vec<u64> = c.tail_events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9], "last N, oldest first");
    }

    #[test]
    fn disabled_checker_records_nothing() {
        let mut c = InvariantChecker::new(InvariantConfig::off());
        c.record_tail(ev(0));
        assert!(!c.tail_on());
        assert!(c.tail_events().is_empty());
    }

    #[test]
    fn report_honours_panic_flag() {
        let v = Violation {
            cycle: 1,
            pkt: 2,
            node: 3,
            invariant: "conservation",
            detail: String::new(),
        };
        let mut strict = InvariantChecker::new(InvariantConfig::strict());
        assert!(strict.report(v.clone()));
        let mut soft = InvariantChecker::new(InvariantConfig::recording());
        assert!(!soft.report(v.clone()));
        assert_eq!(soft.violations(), std::slice::from_ref(&v));
        assert_eq!(v.identity(), (1, 2, "conservation"));
    }

    #[test]
    fn selftest_fires_once() {
        let mut c = InvariantChecker::new(InvariantConfig {
            selftest_at: Some(50),
            ..InvariantConfig::recording()
        });
        assert_eq!(c.selftest_pending(), Some(50));
        c.mark_selftest_fired();
        assert_eq!(c.selftest_pending(), None);
    }
}
