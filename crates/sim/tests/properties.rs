//! Property-based tests for the discrete-event simulator.
//!
//! Beyond the unit tests, these pin the queueing-theoretic invariants
//! the congestion results rest on: per-port FIFO ordering, conservation
//! under every drop cause at once, latency floors, and bitwise
//! reproducibility.

use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{NoMarking, SimConfig, SimTime, Simulation};
use ddpm_topology::{FaultSet, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Benign,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Same-flow packets on a deterministic route never reorder: the
    /// per-port serialisation discipline is FIFO.
    #[test]
    fn same_flow_fifo_under_deterministic_routing(
        n in 3u16..8,
        packets in 2u64..60,
        gap in 0u64..12,
        seed in any::<u64>(),
    ) {
        let topo = Topology::mesh2d(n);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let marker = NoMarking;
        let mut sim = Simulation::new(
            &topo, &faults, Router::DimensionOrder, SelectionPolicy::First,
            &marker, SimConfig::seeded(seed),
        );
        let dst = NodeId(u32::from(n) * u32::from(n) - 1);
        for k in 0..packets {
            sim.schedule(SimTime(k * gap), mk_packet(&map, k, NodeId(0), dst));
        }
        sim.run();
        let order: Vec<u64> = sim.delivered().iter().map(|d| d.packet.id.0).collect();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(order, sorted, "same-flow packets reordered");
    }

    /// Conservation holds with every drop cause active simultaneously:
    /// tiny buffers, short TTLs, random faults, bit errors, hop limits.
    #[test]
    fn conservation_under_combined_stress(
        seed in any::<u64>(),
        ttl in 2u8..20,
        ber in 0.0f64..0.05,
        fault_rate in 0.0f64..0.15,
        burst in 10u64..150,
    ) {
        let topo = Topology::torus(&[6, 6]);
        let map = AddrMap::for_topology(&topo);
        let mut rng = SmallRng::seed_from_u64(seed);
        let faults = FaultSet::random(&topo, fault_rate, || rng.gen::<f64>());
        let marker = NoMarking;
        let cfg = SimConfig {
            buffer_packets: 2,
            bit_error_rate: ber,
            max_hops: 24,
            ..SimConfig::seeded(seed)
        };
        let mut sim = Simulation::new(
            &topo, &faults, Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random, &marker, cfg,
        );
        for k in 0..burst {
            let s = NodeId((k as u32 * 5) % 36);
            let d = NodeId((k as u32 * 7 + 3) % 36);
            if s == d { continue; }
            let mut p = mk_packet(&map, k, s, d);
            p.header.ttl = ttl;
            sim.schedule(SimTime(k % 7), p);
        }
        let stats = sim.run();
        prop_assert!(stats.accounted(0), "conservation violated: {stats:?}");
    }

    /// Latency never undercuts the physical floor, whatever the load.
    #[test]
    fn latency_floor_universal(
        seed in any::<u64>(),
        burst in 1u64..120,
        service in 1u64..8,
        link in 0u64..6,
    ) {
        let topo = Topology::mesh2d(5);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let marker = NoMarking;
        let cfg = SimConfig {
            service_cycles: service,
            link_latency: link,
            ..SimConfig::seeded(seed)
        };
        let mut sim = Simulation::new(
            &topo, &faults, Router::DimensionOrder, SelectionPolicy::First,
            &marker, cfg,
        );
        for k in 0..burst {
            let s = NodeId((k as u32 * 3) % 24);
            sim.schedule(SimTime::ZERO, mk_packet(&map, k, s, NodeId(24)));
        }
        sim.run();
        for d in sim.delivered() {
            let hops = u64::from(topo.min_hops(
                &topo.coord(d.packet.true_source),
                &topo.coord(d.packet.dest_node),
            ));
            prop_assert!(d.latency() >= hops * (service + link));
        }
    }

    /// Bitwise reproducibility: identical configs and schedules produce
    /// identical delivery transcripts, and the transcript changes with
    /// the seed only through the simulator's declared randomness.
    #[test]
    fn runs_are_reproducible(seed in any::<u64>(), burst in 5u64..60) {
        let topo = Topology::torus(&[5, 5]);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let marker = NoMarking;
        let transcript = |s: u64| {
            let mut sim = Simulation::new(
                &topo, &faults, Router::MinimalAdaptive, SelectionPolicy::Random,
                &marker, SimConfig::seeded(s).with_paths(),
            );
            for k in 0..burst {
                let a = NodeId((k as u32 * 11 + 1) % 25);
                let b = NodeId((k as u32 * 13 + 2) % 25);
                if a == b { continue; }
                sim.schedule(SimTime(k), mk_packet(&map, k, a, b));
            }
            sim.run();
            sim.delivered()
                .iter()
                .map(|d| (d.packet.id, d.delivered_at, d.hops, d.path.clone()))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(transcript(seed), transcript(seed));
    }
}
