//! Snapshot/restore bit-identity for the serial engine.
//!
//! The checkpoint contract (`ddpm-checkpoint` builds on it): a run
//! paused at **any** event boundary via `run_until`, snapshotted,
//! restored into a freshly built simulation and continued, produces
//! exactly the deliveries, drops, violations and statistics of the
//! uninterrupted run. These tests pin that contract on a scenario with
//! every piece of machinery live at once — dynamic fault churn, the
//! watchdog, injection/reroute retries, bit errors, tight buffers and
//! the invariant checker — so no dynamic state can hide outside the
//! snapshot.

use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{
    InvariantConfig, NoMarking, RetryPolicy, SimConfig, SimTime, Simulation, WatchdogConfig,
};
use ddpm_topology::{ChurnConfig, FaultSchedule, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const NODES: u32 = 36;
const PACKETS: u64 = 220;

fn stress_cfg() -> SimConfig {
    SimConfig::builder()
        .seed(0xC0FFEE)
        .buffer_packets(3)
        .bit_error_rate(0.01)
        .max_hops(48)
        .record_paths(true)
        .fault_tolerance(RetryPolicy::capped(3, 4, 64))
        .watchdog(WatchdogConfig {
            check_period: 64,
            max_age: 512,
            stall_cycles: 4096,
            escape: Some(Router::DimensionOrder),
        })
        .invariants(InvariantConfig::recording())
        .build()
}

fn churn(topo: &Topology) -> FaultSchedule {
    let mut rng = SmallRng::seed_from_u64(7);
    FaultSchedule::churn(
        topo,
        &ChurnConfig {
            horizon: 600,
            period: 100,
            link_rate: 0.02,
            switch_rate: 0.005,
            down_time: 150,
        },
        move || rng.gen::<f64>(),
    )
}

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Benign,
    }
}

/// Builds the stress scenario and schedules its traffic + faults.
fn build<'a>(topo: &'a Topology, marker: &'a NoMarking) -> Simulation<'a> {
    let map = AddrMap::for_topology(topo);
    let mut sim = Simulation::new(
        topo,
        &FaultSet::none(),
        Router::fully_adaptive_for(topo),
        SelectionPolicy::Random,
        marker,
        stress_cfg(),
    );
    sim.schedule_faults(&churn(topo));
    for k in 0..PACKETS {
        let s = NodeId((k as u32 * 5) % NODES);
        let d = NodeId((k as u32 * 11 + 3) % NODES);
        if s == d {
            continue;
        }
        sim.schedule(SimTime(k * 2), mk_packet(&map, k, s, d));
    }
    sim
}

/// Everything observable about a finished run, as one comparable string.
fn fingerprint(sim: &Simulation<'_>) -> String {
    let mut out = String::new();
    for d in sim.delivered() {
        out.push_str(&format!("D {:?}\n", d));
    }
    for (id, r) in sim.drops() {
        out.push_str(&format!("X {:?} {:?}\n", id, r));
    }
    for v in sim.violations() {
        out.push_str(&format!("V {:?}\n", v));
    }
    out.push_str(&format!("S {:?}\n", sim.stats()));
    out
}

fn reference() -> String {
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let mut sim = build(&topo, &marker);
    sim.run();
    fingerprint(&sim)
}

#[test]
fn segmented_run_matches_uninterrupted_run() {
    let expected = reference();
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let mut sim = build(&topo, &marker);
    let mut limit = 37; // deliberately not aligned to anything
    while !sim.run_until(limit) {
        limit += 113;
    }
    assert_eq!(fingerprint(&sim), expected, "segmentation changed the run");
}

#[test]
fn snapshot_restore_is_bit_identical_at_many_pause_points() {
    let expected = reference();
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    for pause in [0, 1, 50, 137, 300, 555, 1000, 2500] {
        let mut first = build(&topo, &marker);
        let done = first.run_until(pause);
        let snap = first.snapshot();
        assert_eq!(
            snap.live_flights() as u64,
            snap.live_count,
            "snapshot live bookkeeping diverged at pause {pause}"
        );
        drop(first);
        // A fresh world: same static config, no traffic scheduled — the
        // snapshot carries every pending event.
        let mut second = Simulation::new(
            &topo,
            &FaultSet::none(),
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &marker,
            stress_cfg(),
        );
        second.restore(snap);
        if !done {
            second.run();
        }
        assert_eq!(
            fingerprint(&second),
            expected,
            "resume from pause {pause} diverged"
        );
    }
}

#[test]
fn snapshot_roundtrips_through_restore() {
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let mut first = build(&topo, &marker);
    first.run_until(400);
    let snap = first.snapshot();
    let mut second = Simulation::new(
        &topo,
        &FaultSet::none(),
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &marker,
        stress_cfg(),
    );
    second.restore(snap.clone());
    let again = second.snapshot();
    assert_eq!(
        format!("{snap:?}"),
        format!("{again:?}"),
        "snapshot → restore → snapshot must be the identity"
    );
}

/// A stale handle whose arena slot sits at the generation-counter
/// ceiling is still detected as the typed `stale_handle` violation —
/// wraparound can never panic or resurrect a freed packet.
#[test]
fn stale_event_near_generation_wraparound_is_a_typed_violation() {
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let mut first = build(&topo, &marker);
    first.run_until(1);
    let mut snap = first.snapshot();
    // Forge the failure the guard exists for: a queued event whose
    // packet's slot was freed — with the generation counter parked at
    // the ceiling, one bump away from wrapping to 0.
    let victim = snap
        .slots
        .iter()
        .position(|s| s.flight.as_ref().is_some_and(|f| !f.launched))
        .expect("a not-yet-launched packet with a queued Inject");
    snap.slots[victim].flight = None;
    snap.slots[victim].generation = u32::MAX;
    let mut second = Simulation::new(
        &topo,
        &FaultSet::none(),
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &marker,
        stress_cfg(),
    );
    second.restore(snap);
    second.run(); // must not panic
    let stale: Vec<_> = second
        .violations()
        .iter()
        .filter(|v| v.invariant == "stale_handle")
        .collect();
    assert!(
        !stale.is_empty(),
        "freed slot at generation ceiling must surface as stale_handle"
    );
    assert!(
        stale.iter().all(|v| v.pkt == victim as u64),
        "violation must name the forged handle: {stale:?}"
    );
}
