//! The conformance corpus: pinned `ScenarioOutcome.digest` values for
//! every shipped scenario file plus a grid of (topology × routing ×
//! churn) micro-configs.
//!
//! The digest fingerprints everything a run observes — delivered
//! packets (ids, headers with final marking fields, timestamps, hops,
//! paths), typed drops, invariant verdicts and the full `SimStats` —
//! so any rewrite of the hot path (event queue, packet storage, port
//! state, telemetry batching) diffs bit-for-bit against pre-rewrite
//! behaviour. The golden file was blessed against the BinaryHeap +
//! HashMap + `Box<InFlight>` implementation this suite was introduced
//! with; the cycle-wheel/slab/dense-array hot path must reproduce it
//! exactly.
//!
//! To regenerate after an *intentional* behaviour change:
//!
//! ```bash
//! DDPM_BLESS=1 cargo test -p ddpm-sim --test conformance
//! ```
//!
//! and review the diff of `tests/conformance_digests.txt` like any
//! other source change.

use ddpm_bench::scenario_config::{
    run_scenario, AttackSpec, MarkingSpec, RouterSpec, ScenarioConfig, TopologySpec,
};
use ddpm_sim::{AdversaryBehavior, AdversarySpec, Engine, SchemeSpec, WatchdogConfig};
use ddpm_topology::{FaultEvent, NodeId};
use serde_json::FromJson;
use std::fmt::Write as _;
use std::path::PathBuf;

const GOLDEN: &str = "tests/conformance_digests.txt";

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../scenarios")
}

fn manifest(rel: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The topology axis: one representative of each family, small enough
/// that the full grid stays quick in debug builds.
fn topologies() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("mesh6x6", TopologySpec::Mesh { dims: vec![6, 6] }),
        ("torus6x6", TopologySpec::Torus { dims: vec![6, 6] }),
        ("cube5", TopologySpec::Hypercube { n: 5 }),
    ]
}

/// The routing axis: the deterministic baseline, a partially adaptive
/// midpoint and the fully adaptive extreme (valid on every family).
fn routers() -> Vec<(&'static str, RouterSpec)> {
    vec![
        ("dor", RouterSpec::DimensionOrder),
        ("minadapt", RouterSpec::MinimalAdaptive),
        ("fulladapt", RouterSpec::FullyAdaptive),
    ]
}

/// The churn axis: quiet background traffic, a UDP flood, and the
/// flood under mid-run switch churn with retries, the liveness
/// watchdog and the invariant checker — the paths whose event ordering
/// the scheduler rewrite must preserve exactly.
fn churn_levels() -> Vec<&'static str> {
    vec!["quiet", "flood", "chaos"]
}

fn micro_config(topo: &TopologySpec, router: RouterSpec, churn: &str) -> ScenarioConfig {
    let attack = AttackSpec::UdpFlood {
        zombies: vec![3, 17],
        victim: 30,
        packets_per_zombie: 150,
        interval: 8,
    };
    let mut cfg = ScenarioConfig {
        topology: topo.clone(),
        router,
        marking: MarkingSpec::Ddpm,
        scheme: None,
        tag_bits: None,
        adversary: None,
        seed: 2004,
        fault_rate: 0.0,
        background_interval: 48,
        horizon: 1500,
        attack: None,
        staged_injection: false,
        fault_schedule: Vec::new(),
        fault_retries: 0,
        watchdog: None,
        invariants: false,
        engine: Engine::Serial,
        checkpoint: None,
    };
    match churn {
        "quiet" => {}
        "flood" => cfg.attack = Some(attack),
        "chaos" => {
            cfg.attack = Some(attack);
            cfg.fault_schedule = vec![
                (300, FaultEvent::SwitchDown { node: NodeId(9) }),
                (900, FaultEvent::SwitchUp { node: NodeId(9) }),
            ];
            cfg.fault_retries = 4;
            cfg.watchdog = Some(WatchdogConfig {
                check_period: 64,
                max_age: 768,
                stall_cycles: 4096,
                escape: Some(ddpm_routing::Router::DimensionOrder),
            });
            cfg.invariants = true;
        }
        other => panic!("unknown churn level {other}"),
    }
    cfg
}

/// The scheme axis: every `MarkingScheme` plugin on a 16-node member of
/// each topology family — the only sizes all six schemes' MF-bit
/// budgets accept (EdgePpm caps at 5x5 meshes, Tracemax at diameter 6,
/// XorPpm needs power-of-two radices).
fn scheme_topologies() -> Vec<(&'static str, TopologySpec)> {
    vec![
        ("mesh4x4", TopologySpec::Mesh { dims: vec![4, 4] }),
        ("torus4x4", TopologySpec::Torus { dims: vec![4, 4] }),
        ("cube4", TopologySpec::Hypercube { n: 4 }),
    ]
}

fn scheme_config(topo: &TopologySpec, spec: SchemeSpec) -> ScenarioConfig {
    ScenarioConfig {
        topology: topo.clone(),
        router: RouterSpec::DimensionOrder,
        marking: MarkingSpec::None,
        scheme: Some(spec),
        tag_bits: None,
        adversary: None,
        seed: 2004,
        fault_rate: 0.0,
        background_interval: 48,
        horizon: 1500,
        attack: Some(AttackSpec::UdpFlood {
            zombies: vec![3, 5],
            victim: 14,
            packets_per_zombie: 150,
            interval: 8,
        }),
        staged_injection: false,
        fault_schedule: Vec::new(),
        fault_retries: 0,
        watchdog: None,
        invariants: false,
        engine: Engine::Serial,
        checkpoint: None,
    }
}

/// The adversary axis: a framing compromised switch on the flood path,
/// pinned for the plain scheme it pollutes and the auth wrappers that
/// contain it. The digest hashes delivered headers with their final
/// marking fields, so any drift in the adversary's forge stream — or
/// in the honest path it wraps — diffs bit-for-bit.
fn adversary_schemes() -> Vec<SchemeSpec> {
    vec![SchemeSpec::Ddpm, SchemeSpec::AuthDdpm, SchemeSpec::AuthDpm]
}

fn adversary_config(topo: &TopologySpec, spec: SchemeSpec) -> ScenarioConfig {
    let mut cfg = scheme_config(topo, spec);
    cfg.adversary = Some(AdversarySpec::new(
        vec![NodeId(5)],
        AdversaryBehavior::Frame,
        Some(NodeId(9)),
        0x0BAD_5EED,
    ));
    cfg
}

/// Every corpus entry as `(name, digest)`, in a fixed order: the
/// shipped scenario files (sorted by name), then the micro grid, then
/// the scheme-axis grid, then the adversary grid.
fn corpus_digests() -> Vec<(String, String)> {
    let mut out = Vec::new();

    let mut files: Vec<PathBuf> = std::fs::read_dir(scenarios_dir())
        .expect("scenarios dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("json"))
        .collect();
    files.sort();
    assert!(files.len() >= 5, "expected the shipped scenario files");
    for path in files {
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let raw = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
        let v = serde_json::from_str(&raw)
            .unwrap_or_else(|e| panic!("{}: not JSON: {e}", path.display()));
        let cfg = ScenarioConfig::from_json(&v)
            .unwrap_or_else(|e| panic!("{}: bad config: {e}", path.display()));
        let outcome =
            run_scenario(&cfg).unwrap_or_else(|e| panic!("scenario {name} failed: {e}"));
        out.push((format!("scenario/{name}"), outcome.digest));
    }

    for (tname, topo) in topologies() {
        for (rname, router) in routers() {
            for churn in churn_levels() {
                let cfg = micro_config(&topo, router, churn);
                let name = format!("grid/{tname}/{rname}/{churn}");
                let outcome =
                    run_scenario(&cfg).unwrap_or_else(|e| panic!("{name} failed: {e}"));
                out.push((name, outcome.digest));
            }
        }
    }

    for (tname, topo) in scheme_topologies() {
        for spec in SchemeSpec::ALL {
            let cfg = scheme_config(&topo, spec);
            let name = format!("scheme/{tname}/{}", spec.as_str());
            match run_scenario(&cfg) {
                Ok(outcome) => out.push((name, outcome.digest)),
                // Feasibility walls (e.g. `auth-ppm-edge` leaves no
                // room for a tag on 16 nodes) are corpus facts too:
                // pin the wall message so a budget change that flips a
                // cell feasible — or reworded walls — shows up as a
                // golden diff, not silence.
                Err(e) if e.contains("unavailable") => {
                    out.push((name, format!("infeasible: {e}")));
                }
                Err(e) => panic!("{name} failed: {e}"),
            }
        }
    }

    for (tname, topo) in scheme_topologies() {
        for spec in adversary_schemes() {
            let cfg = adversary_config(&topo, spec);
            let name = format!("adversary/{tname}/{}", spec.as_str());
            let outcome =
                run_scenario(&cfg).unwrap_or_else(|e| panic!("{name} failed: {e}"));
            out.push((name, outcome.digest));
        }
    }

    for (name, cfg) in scale_cells() {
        let outcome = run_scenario(&cfg).unwrap_or_else(|e| panic!("{name} failed: {e}"));
        out.push((name, outcome.digest));
    }
    out
}

/// The scale axis: micro members of the Table 3 fabric families —
/// a 16×16×4 3-D mesh and the 2^10 hypercube — flooded the same way
/// the full-size scale suite floods the 128×128 grids, plus each cell
/// re-run under `staged_injection`. A pure flood is already
/// time-ordered, so the staged (bounded-memory, lazily materialised)
/// run must reproduce the eager digest *exactly* — the golden file
/// pins both lines, locking that order-equivalence. Appended after
/// the original corpus so the pre-existing golden lines stay
/// byte-identical.
fn scale_cells() -> Vec<(String, ScenarioConfig)> {
    let flood = |topo: TopologySpec, victim: u32, staged: bool| ScenarioConfig {
        topology: topo,
        router: RouterSpec::DimensionOrder,
        marking: MarkingSpec::Ddpm,
        scheme: None,
        tag_bits: None,
        adversary: None,
        seed: 2004,
        fault_rate: 0.0,
        background_interval: 0,
        horizon: 1500,
        attack: Some(AttackSpec::UdpFlood {
            zombies: vec![3, 257, 511],
            victim,
            packets_per_zombie: 200,
            interval: 4,
        }),
        staged_injection: staged,
        fault_schedule: Vec::new(),
        fault_retries: 0,
        watchdog: None,
        invariants: false,
        engine: Engine::Serial,
        checkpoint: None,
    };
    let mesh = TopologySpec::Mesh {
        dims: vec![16, 16, 4],
    };
    let cube = TopologySpec::Hypercube { n: 10 };
    vec![
        ("scale/mesh16x16x4/flood".into(), flood(mesh.clone(), 700, false)),
        ("scale/mesh16x16x4/staged".into(), flood(mesh, 700, true)),
        ("scale/cube10/flood".into(), flood(cube.clone(), 700, false)),
        ("scale/cube10/staged".into(), flood(cube, 700, true)),
    ]
}

fn render(digests: &[(String, String)]) -> String {
    let mut s = String::from(
        "# Pinned ScenarioOutcome digests — regenerate with DDPM_BLESS=1 (see conformance.rs)\n",
    );
    for (name, digest) in digests {
        writeln!(s, "{name} {digest}").unwrap();
    }
    s
}

/// Splits a digest string into named fields: the leading overall hash,
/// then each `key=value` token (counts and per-stream hashes).
fn digest_fields(d: &str) -> Vec<(&str, &str)> {
    d.split_whitespace()
        .enumerate()
        .map(|(i, tok)| match tok.split_once('=') {
            Some(kv) => kv,
            None if i == 0 => ("overall", tok),
            None => ("?", tok),
        })
        .collect()
}

/// Localises a digest mismatch: names the first per-stream field that
/// differs (the delivered-packet stream, the drop stream, the
/// violation stream, or the stats block) so a `DDPM_BLESS=1` review
/// sees *which* behaviour moved, not just that two hashes differ.
fn first_divergence(want: &str, got: &str) -> String {
    fn describe(key: &str) -> &str {
        match key {
            "D" => "delivered-packet stream",
            "X" => "drop stream",
            "V" => "violation stream",
            "S" => "stats block",
            "delivered" => "delivered count",
            "dropped" => "dropped count",
            "violations" => "violation count",
            other => other,
        }
    }
    let (w, g) = (digest_fields(want), digest_fields(got));
    if w.len() != g.len() {
        return "digest layout changed (field count differs — a golden file predating \
                per-stream digests, or a digest format change): re-bless and review"
            .to_string();
    }
    // The counts and per-stream hashes localise the change; the overall
    // hash (field 0) only confirms it, so scan it last.
    for ((wk, wv), (gk, gv)) in w.iter().zip(&g).skip(1).chain(w.iter().zip(&g).take(1)) {
        if wk == gk && wv != gv {
            return format!(
                "first diverging field: {} ({wk}: pinned {wv}, got {gv})",
                describe(wk)
            );
        }
    }
    "overall digest diverged but every per-stream field matches (hash layout change?)"
        .to_string()
}

#[test]
fn corpus_digests_match_golden_file() {
    let digests = corpus_digests();
    let rendered = render(&digests);
    let golden_path = manifest(GOLDEN);
    if std::env::var_os("DDPM_BLESS").is_some() {
        std::fs::write(&golden_path, &rendered).expect("write golden file");
        eprintln!("blessed {} ({} entries)", golden_path.display(), digests.len());
        return;
    }
    let golden = std::fs::read_to_string(&golden_path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun once with DDPM_BLESS=1 to create it",
            golden_path.display()
        )
    });
    let mut pinned = std::collections::BTreeMap::new();
    for line in golden.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let (name, digest) = line.split_once(' ').expect("golden line is `name digest...`");
        pinned.insert(name.to_string(), digest.to_string());
    }
    assert_eq!(
        pinned.len(),
        digests.len(),
        "corpus size changed: golden has {}, run produced {} — bless intentionally",
        pinned.len(),
        digests.len()
    );
    let mut diverged = Vec::new();
    for (name, digest) in &digests {
        match pinned.get(name) {
            None => diverged.push(format!("{name}: missing from golden file")),
            Some(want) if want != digest => {
                diverged.push(format!(
                    "{name}:\n  pinned {want}\n  got    {digest}\n  {}",
                    first_divergence(want, digest)
                ));
            }
            Some(_) => {}
        }
    }
    assert!(
        diverged.is_empty(),
        "conformance digests diverged from pre-rewrite behaviour:\n{}\n\
         If this change is intentional, re-bless with DDPM_BLESS=1 and review the diff.",
        diverged.join("\n")
    );
}

/// The corpus digests are also engine-independent: a spot check that the
/// sharded engine reproduces the pinned serial digest on the most
/// machinery-heavy grid cell (chaos churn exercises faults, watchdog,
/// retries and the checker together). The full cross-engine sweep lives
/// in `crates/engine/tests/equivalence.rs`.
#[test]
fn chaos_grid_cell_is_engine_independent() {
    let mut cfg = micro_config(
        &TopologySpec::Torus { dims: vec![6, 6] },
        RouterSpec::FullyAdaptive,
        "chaos",
    );
    let serial = run_scenario(&cfg).expect("serial run").digest;
    cfg.engine = Engine::Sharded { shards: 2 };
    let sharded = run_scenario(&cfg).expect("sharded run").digest;
    assert_eq!(serial, sharded, "sharded(2) diverged from serial");
}
