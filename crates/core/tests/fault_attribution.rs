//! Property-based tests for the PR's central robustness claim: dynamic
//! faults may cost delivery, but can never corrupt DDPM attribution.
//!
//! Random small topologies × random fault churn × random traffic, with
//! graceful degradation (injection + reroute retries) enabled: every
//! packet that still reaches its destination must identify its true
//! injector from the marking field alone, the run must terminate, and
//! the drop accounting must balance exactly.

use ddpm_core::DdpmScheme;
use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{RetryPolicy, SimConfig, SimTime, Simulation};
use ddpm_topology::{ChurnConfig, FaultSchedule, FaultSet, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Benign,
    }
}

fn small_topology(kind: u8, n: u16) -> Topology {
    match kind % 3 {
        0 => Topology::mesh2d(n),
        1 => Topology::torus(&[n, n]),
        _ => Topology::hypercube(usize::from(n)),
    }
}

fn router_for(which: u8, topo: &Topology) -> Router {
    match which % 3 {
        0 => Router::DimensionOrder,
        1 => Router::MinimalAdaptive,
        _ => Router::fully_adaptive_for(topo),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Random fault schedules never produce a delivered packet whose
    /// DDPM-identified source differs from the true injector, and the
    /// simulator terminates with exact loss accounting.
    #[test]
    fn churn_never_corrupts_attribution(
        kind in 0u8..3,
        n in 3u16..6,
        router_sel in 0u8..3,
        packets in 20u64..120,
        link_rate in 0.0f64..0.2,
        switch_rate in 0.0f64..0.06,
        retries in 0u32..6,
        seed in any::<u64>(),
    ) {
        let topo = small_topology(kind, n);
        let scheme = DdpmScheme::new(&topo).expect("small topologies fit");
        let map = AddrMap::for_topology(&topo);
        let router = router_for(router_sel, &topo);
        let mut rng = SmallRng::seed_from_u64(seed);
        let horizon = packets * 4;
        let churn = ChurnConfig {
            horizon,
            period: (horizon / 6).max(1),
            link_rate,
            switch_rate,
            down_time: horizon / 4,
        };
        let schedule = FaultSchedule::churn(&topo, &churn, || rng.gen::<f64>());
        prop_assert!(schedule.validate(&topo).is_ok());

        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo, &faults, router, SelectionPolicy::Random, &scheme,
            SimConfig::seeded(seed ^ 0xFA17)
                .to_builder()
                .fault_tolerance(RetryPolicy::capped(retries, 4, 64))
                .build(),
        );
        sim.schedule_faults(&schedule);
        let nodes = topo.num_nodes() as u32;
        for k in 0..packets {
            let src = NodeId(rng.gen_range(0..nodes));
            let mut dst = NodeId(rng.gen_range(0..nodes));
            while dst == src {
                dst = NodeId(rng.gen_range(0..nodes));
            }
            sim.schedule(SimTime(k * 4), mk_packet(&map, k, src, dst));
        }
        let stats = sim.run(); // termination: run() returning IS the property

        prop_assert!(stats.accounted(0), "injected != delivered + dropped");
        for d in sim.delivered() {
            let dest = topo.coord(d.packet.dest_node);
            let got = scheme
                .attribute(&topo, &dest, d.packet.header.identification)
                .single();
            prop_assert_eq!(
                got,
                Some(d.packet.true_source),
                "fault churn corrupted attribution for packet {:?}",
                d.packet.id
            );
        }
    }

    /// With no churn at all, retries configured or not, the fault
    /// bookkeeping stays zeroed — the layer is pay-for-use.
    #[test]
    fn healthy_runs_report_no_fault_activity(
        n in 3u16..6,
        packets in 10u64..60,
        retries in 0u32..4,
        seed in any::<u64>(),
    ) {
        let topo = Topology::mesh2d(n);
        let scheme = DdpmScheme::new(&topo).expect("fits");
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo, &faults, Router::DimensionOrder, SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(seed)
                .to_builder()
                .fault_tolerance(RetryPolicy::capped(retries, 4, 64))
                .build(),
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        let nodes = topo.num_nodes() as u32;
        for k in 0..packets {
            let src = NodeId(rng.gen_range(0..nodes));
            let mut dst = NodeId(rng.gen_range(0..nodes));
            while dst == src {
                dst = NodeId(rng.gen_range(0..nodes));
            }
            sim.schedule(SimTime(k * 4), mk_packet(&map, k, src, dst));
        }
        let stats = sim.run();
        prop_assert_eq!(stats.faults.events_applied, 0);
        prop_assert_eq!(stats.fault_drops(), 0);
        prop_assert_eq!(stats.faults.degraded_cycles, 0);
        prop_assert_eq!(stats.faults.window_delivery_ratio(), 1.0);
        prop_assert!(stats.accounted(0));
    }
}
