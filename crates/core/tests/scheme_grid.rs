//! Cross-scheme property test for the two-sided plugin contract: for a
//! random mesh/torus/hypercube flood, every scheme's victim-side
//! [`Collector`] either attributes the true source or reports exactly
//! the ambiguity its documentation allows (see the table and
//! documented-ambiguities list in `ddpm_core::scheme`) — never a
//! fabricated confident answer.
//!
//! Per-scheme invariants under a single-zombie flood on a healthy
//! network with stable dimension-order routes:
//!
//! * `none` — learns nothing: empty candidates, zero confidence;
//! * `ddpm` / `tracemax` — deterministic single-packet schemes: the
//!   candidate set is exactly `{source}` at full confidence;
//! * `dpm` — the true source is always implicated; extra candidates are
//!   lawful (signature collisions), and the stable route keeps the
//!   matched-signature confidence at 1.0;
//! * `ppm-edge` — exact edge samples: either the source is implicated
//!   or under-collection holds, in which case every candidate is a
//!   far-end of a true-path prefix (never an off-path node);
//! * `ppm-xor` — the compressed encoding may blow up into off-path
//!   candidates (§4.2), so only the shared shape contract is
//!   enforceable at the default sampling rate; the saturated test below
//!   pins its convergence.
//!
//! Shared shape contract (every scheme): candidate lists are sorted,
//! deduplicated and in node range; confidence is in `[0, 1]`;
//! `observed()` counts exactly the deliveries fed; and `attribute()` is
//! idempotent (also exercising the PPM collectors' reconstruction
//! cache).
//!
//! [`Collector`]: ddpm_sim::Collector

use ddpm_core::{build_scheme, EdgePpm, XorPpm};
use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{trace_path, Router, SelectionPolicy};
use ddpm_sim::{Attribution, MarkingScheme, SchemeSpec, SimConfig, SimTime, Simulation};
use ddpm_topology::{FaultSet, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::HashSet;

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(999, 53),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Attack,
    }
}

/// Floods `packets` from `src` to `victim` with `scheme` marking, feeds
/// every delivery to a fresh collector and returns `(attribution,
/// re-attribution, observed)`.
fn flood_and_attribute(
    topo: &Topology,
    scheme: &dyn MarkingScheme,
    src: NodeId,
    victim: NodeId,
    packets: u64,
    seed: u64,
) -> (Attribution, Attribution, u64) {
    let map = AddrMap::for_topology(topo);
    let faults = FaultSet::none();
    let mut sim = Simulation::new(
        topo,
        &faults,
        Router::DimensionOrder,
        SelectionPolicy::First,
        scheme,
        SimConfig::seeded(seed),
    );
    for k in 0..packets {
        // One packet per 6 cycles: below the 4-cycle port service rate,
        // so a healthy network delivers the whole flood.
        sim.schedule(SimTime(k * 6), mk_packet(&map, k, src, victim));
    }
    sim.run();
    assert_eq!(sim.delivered().len() as u64, packets, "healthy net is lossless");
    // observe_packet, not observe: the auth-* collectors verify the
    // keyed tag against the delivered header (an honest run passes);
    // for everything else it defaults to plain field observation.
    let mut collector = scheme.collector(topo, victim);
    for d in sim.delivered() {
        collector.observe_packet(&d.packet);
    }
    let att = collector.attribute();
    let again = collector.attribute();
    (att, again, collector.observed())
}

/// The nodes on the (deterministic) dimension-order path `src → dst`.
fn dor_path_nodes(topo: &Topology, src: NodeId, dst: NodeId) -> HashSet<NodeId> {
    let mut rng = SmallRng::seed_from_u64(0);
    let path = trace_path(
        topo,
        &FaultSet::none(),
        Router::DimensionOrder,
        SelectionPolicy::First,
        &mut rng,
        &topo.coord(src),
        &topo.coord(dst),
        256,
    )
    .expect("healthy net routes everywhere");
    path.iter().map(|c| topo.index(c)).collect()
}

fn random_topology(kind: u8, n: u16) -> Topology {
    match kind {
        0 => Topology::mesh(&[n, n]),
        1 => Topology::torus(&[n, n]),
        _ => Topology::hypercube(usize::from(n)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Truth-or-documented-ambiguity over the whole scheme grid.
    #[test]
    fn every_scheme_attributes_truth_or_documented_ambiguity(
        kind in 0u8..3,
        n in 2u16..5,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        let topo = random_topology(kind, n);
        let nodes = topo.num_nodes();
        let src = NodeId((picks % nodes) as u32);
        let victim = NodeId(((picks >> 24) % nodes) as u32);
        prop_assume!(src != victim);
        let path = dor_path_nodes(&topo, src, victim);

        for spec in SchemeSpec::ALL {
            // A scheme whose MF budget rejects this topology is a
            // range-checked build error, not a test case.
            let Ok(scheme) = build_scheme(spec, &topo) else {
                continue;
            };
            let (att, again, observed) =
                flood_and_attribute(&topo, &*scheme, src, victim, 60, seed);

            // Shared shape contract.
            prop_assert_eq!(observed, 60, "{:?}", spec);
            prop_assert_eq!(&att.candidates, &again.candidates, "{:?} idempotent", spec);
            prop_assert!((att.confidence - again.confidence).abs() < 1e-12, "{:?}", spec);
            let mut sorted = att.candidates.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(&sorted, &att.candidates, "{:?} sorted+deduped", spec);
            prop_assert!(
                att.candidates.iter().all(|c| u64::from(c.0) < nodes),
                "{:?} candidates in range", spec
            );
            prop_assert!((0.0..=1.0).contains(&att.confidence), "{:?}", spec);

            match spec {
                SchemeSpec::None => {
                    prop_assert!(att.candidates.is_empty());
                    prop_assert!(att.confidence == 0.0);
                }
                // The auth-* variants ride their base scheme's contract:
                // an honest run verifies every tag, so the wrapped
                // collector sees exactly what the plain one would.
                SchemeSpec::Ddpm
                | SchemeSpec::AuthDdpm
                | SchemeSpec::Tracemax
                | SchemeSpec::AuthTracemax => {
                    prop_assert_eq!(att.single(), Some(src), "{:?}", spec);
                    prop_assert!((att.confidence - 1.0).abs() < 1e-12, "{:?}", spec);
                }
                SchemeSpec::Dpm | SchemeSpec::AuthDpm => {
                    prop_assert!(att.implicates(src), "dpm must implicate the source");
                    // Stable route: every signature matches the table.
                    prop_assert!((att.confidence - 1.0).abs() < 1e-12);
                }
                SchemeSpec::PpmEdge | SchemeSpec::AuthPpmEdge => {
                    // Exact edge marks: candidates are far-ends of
                    // true-path prefixes, so under-collection may stop
                    // short of the source but never leaves the path.
                    // (An empty set with nonzero confidence is lawful
                    // too: marks collected, none yet at distance 0, so
                    // no chain roots at the victim.)
                    prop_assert!(
                        att.candidates.iter().all(|c| path.contains(c)),
                        "ppm-edge candidates {:?} off the true path", att.candidates
                    );
                }
                SchemeSpec::PpmXor | SchemeSpec::AuthPpmXor => {
                    // Off-path candidates are the documented §4.2
                    // blow-up; only the shared contract binds here.
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Saturated-sampling convergence for the probabilistic schemes: at
    /// a high marking probability and a long flood, every path level is
    /// sampled (w.h.p.), so `ppm-edge` must implicate the true source
    /// and `ppm-xor` must implicate it too unless the reconstruction
    /// reports budget truncation (confidence 0.5) — the XOR expansion
    /// blow-up being its one documented escape hatch.
    #[test]
    fn saturated_ppm_converges_to_the_true_source(
        kind in 0u8..3,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        // Power-of-two radices so both PPM layouts build.
        let topo = random_topology(kind, 4);
        let nodes = topo.num_nodes();
        let src = NodeId((picks % nodes) as u32);
        let victim = NodeId(((picks >> 24) % nodes) as u32);
        prop_assume!(src != victim);

        let edge = EdgePpm::new(&topo, 0.45).expect("power-of-two shape fits");
        let (att, _, _) = flood_and_attribute(&topo, &edge, src, victim, 400, seed);
        prop_assert!(
            att.implicates(src),
            "saturated ppm-edge missed {:?}: {:?}", src, att.candidates
        );

        let xor = XorPpm::new(&topo, 0.45).expect("power-of-two shape fits");
        let (att, _, _) = flood_and_attribute(&topo, &xor, src, victim, 400, seed);
        prop_assert!(
            att.implicates(src) || (att.confidence - 0.5).abs() < 1e-12,
            "saturated ppm-xor neither implicated {:?} nor reported truncation: {:?} @ {}",
            src, att.candidates, att.confidence
        );
    }
}
