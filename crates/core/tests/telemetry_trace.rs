//! The acceptance test for the telemetry event schema's core promise:
//! the mark-event trail of a traced DDPM run is the victim's evidence.
//! For sampled packets, the *accumulated* marking vector — the last
//! `Mark` event's `mf` — must reproduce exactly what `identify()`
//! answers from the delivered packet, and that answer must be the true
//! injector.

use ddpm_core::DdpmScheme;
use ddpm_indirect::{Butterfly, MinSimulation, PortMarking};
use ddpm_net::{AddrMap, Ipv4Header, MarkingField, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{SimConfig, SimTime, Simulation};
use ddpm_telemetry::{shared, EventKind, MemorySink, TelemetryConfig};
use ddpm_topology::{FaultSet, NodeId, Topology};
use proptest::prelude::*;

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Attack,
    }
}

#[test]
fn mark_trail_reproduces_identify_answer() {
    let topo = Topology::mesh2d(8);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let sink = MemorySink::new();
    let cfg = SimConfig::seeded(7)
        .to_builder()
        .telemetry(TelemetryConfig::events_to(shared(sink.clone())))
        .build();
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &scheme,
        cfg,
    );
    let victim = NodeId(63);
    // A spread of sources, including corner/edge/interior placements.
    let sources = [NodeId(0), NodeId(5), NodeId(17), NodeId(42), NodeId(56)];
    for (k, src) in sources.iter().enumerate() {
        sim.schedule(SimTime(k as u64 * 10), mk_packet(&map, k as u64, *src, victim));
    }
    sim.run();

    let delivered = sim.delivered();
    assert_eq!(delivered.len(), sources.len(), "lossless healthy run");
    let dest_coord = topo.coord(victim);
    for d in delivered {
        let pkt = d.packet.id.0;
        let trail = sink.events_for(pkt);
        assert!(!trail.is_empty(), "packet {pkt} left no events");

        // The accumulated marking vector: the last Mark event's mf.
        let last_mark = trail
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Mark { mf, .. } => Some(mf),
                _ => None,
            })
            .expect("DDPM marks every packet at least at injection");

        // It must be byte-identical to what the victim received...
        assert_eq!(last_mark, d.packet.header.identification.raw());
        let deliver_mf = trail
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Deliver { mf, .. } => Some(mf),
                _ => None,
            })
            .expect("delivered packet must have a Deliver event");
        assert_eq!(last_mark, deliver_mf);

        // ...and identify() on that accumulated vector must name the
        // true injector — the single-packet identification claim, now
        // auditable hop by hop from the trace.
        let identified = scheme
            .attribute(&topo, &dest_coord, MarkingField::new(last_mark))
            .single()
            .expect("in-range marking vector");
        assert_eq!(identified, d.packet.true_source, "packet {pkt}");
    }
}

#[test]
fn traced_run_equals_untraced_run() {
    // Telemetry must observe, never perturb: same seed with and without
    // a sink must deliver the same packets with the same markings.
    let topo = Topology::torus(&[4, 4]);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let run = |tcfg: TelemetryConfig| {
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(99).to_builder().telemetry(tcfg).build(),
        );
        for k in 0..40u64 {
            let src = NodeId((k % 15) as u32);
            sim.schedule(SimTime(k * 3), mk_packet(&map, k, src, NodeId(15)));
        }
        sim.run();
        sim.delivered()
            .iter()
            .map(|d| (d.packet.id.0, d.packet.header.identification.raw(), d.delivered_at))
            .collect::<Vec<_>>()
    };
    let plain = run(TelemetryConfig::off());
    let traced = run(TelemetryConfig::events_to(shared(MemorySink::new())));
    assert_eq!(plain, traced);
}

/// The accumulated marking vector a packet's trail ends with: the last
/// `Mark` event's `mf`, cross-checked against the `Deliver` event. When
/// the field never changed from its injected value (an all-zero vector)
/// there is no `Mark` event and the delivered `mf` *is* the trail end.
fn trail_mf(sink: &MemorySink, pkt: u64) -> u16 {
    let trail = sink.events_for(pkt);
    let delivered = trail
        .iter()
        .find_map(|e| match e.kind {
            EventKind::Deliver { mf, .. } => Some(mf),
            _ => None,
        })
        .expect("delivered packet must leave a Deliver event");
    let last_mark = trail.iter().rev().find_map(|e| match e.kind {
        EventKind::Mark { mf, .. } => Some(mf),
        _ => None,
    });
    if let Some(mark) = last_mark {
        assert_eq!(mark, delivered, "trail end must equal the delivered MF");
    }
    delivered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The differential form of the paper's central claim: one packet,
    /// any adaptive path, two independently written simulators. For a
    /// random mesh/torus/hypercube the direct-network simulator's DDPM
    /// mark trail, and for a butterfly covering the same terminal
    /// indices the staged simulator's port-marking trail, must *both*
    /// reconstruct the identical true source via `identify()` — from
    /// the trace alone, never from the (spoofable) header addresses.
    #[test]
    fn direct_and_indirect_trails_identify_the_same_source(
        kind in 0u8..3,
        n in 3u16..6,
        seed in any::<u64>(),
        picks in any::<u64>(),
    ) {
        let topo = match kind {
            0 => Topology::mesh(&[n, n]),
            1 => Topology::torus(&[n, n]),
            _ => Topology::hypercube(usize::from(n)),
        };
        let nodes = topo.num_nodes();
        let src = NodeId((picks % nodes) as u32);
        let dst = NodeId(((picks >> 24) % nodes) as u32);
        prop_assume!(src != dst);
        let map = AddrMap::for_topology(&topo);

        // Direct network: fully adaptive routing with seeded random
        // selection, so each case exercises a different lawful path.
        let scheme = DdpmScheme::new(&topo).unwrap();
        let sink = MemorySink::new();
        let cfg = SimConfig::seeded(seed)
            .to_builder()
            .telemetry(TelemetryConfig::events_to(shared(sink.clone())))
            .build();
        let mut sim = Simulation::new(
            &topo,
            &FaultSet::none(),
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            cfg,
        );
        sim.schedule(SimTime::ZERO, mk_packet(&map, 1, src, dst));
        sim.run();
        prop_assert_eq!(sim.delivered().len(), 1, "lone packet, healthy net");
        let direct = scheme
            .attribute(&topo, &topo.coord(dst), MarkingField::new(trail_mf(&sink, 1)))
            .single()
            .expect("in-range marking vector");

        // Staged fabric: the smallest 2-ary butterfly whose terminals
        // cover the same node indices.
        let mut stages = 1u8;
        while (1u64 << stages) < nodes {
            stages += 1;
        }
        let fly = Butterfly::new(2, stages);
        let port_scheme = PortMarking::new(fly).unwrap();
        let fly_sink = MemorySink::new();
        let fly_cfg = SimConfig::builder()
            .telemetry(TelemetryConfig::events_to(shared(fly_sink.clone())))
            .build();
        let mut fly_sim = MinSimulation::with_config(fly, port_scheme, &fly_cfg);
        fly_sim.schedule(SimTime::ZERO, mk_packet(&map, 1, src, dst));
        fly_sim.run();
        prop_assert_eq!(fly_sim.delivered().len(), 1, "lone packet, healthy fly");
        let indirect = port_scheme.identify(MarkingField::new(trail_mf(&fly_sink, 1)));

        prop_assert_eq!(direct, src);
        prop_assert_eq!(indirect, src);
        prop_assert_eq!(direct, indirect, "the two simulators must agree");
    }
}
