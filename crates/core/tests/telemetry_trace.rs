//! The acceptance test for the telemetry event schema's core promise:
//! the mark-event trail of a traced DDPM run is the victim's evidence.
//! For sampled packets, the *accumulated* marking vector — the last
//! `Mark` event's `mf` — must reproduce exactly what `identify()`
//! answers from the delivered packet, and that answer must be the true
//! injector.

use ddpm_core::DdpmScheme;
use ddpm_net::{AddrMap, Ipv4Header, MarkingField, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{SimConfig, SimTime, Simulation};
use ddpm_telemetry::{shared, EventKind, MemorySink, TelemetryConfig};
use ddpm_topology::{FaultSet, NodeId, Topology};

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Attack,
    }
}

#[test]
fn mark_trail_reproduces_identify_answer() {
    let topo = Topology::mesh2d(8);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let sink = MemorySink::new();
    let cfg = SimConfig::seeded(7)
        .to_builder()
        .telemetry(TelemetryConfig::events_to(shared(sink.clone())))
        .build();
    let mut sim = Simulation::new(
        &topo,
        &faults,
        Router::fully_adaptive_for(&topo),
        SelectionPolicy::Random,
        &scheme,
        cfg,
    );
    let victim = NodeId(63);
    // A spread of sources, including corner/edge/interior placements.
    let sources = [NodeId(0), NodeId(5), NodeId(17), NodeId(42), NodeId(56)];
    for (k, src) in sources.iter().enumerate() {
        sim.schedule(SimTime(k as u64 * 10), mk_packet(&map, k as u64, *src, victim));
    }
    sim.run();

    let delivered = sim.delivered();
    assert_eq!(delivered.len(), sources.len(), "lossless healthy run");
    let dest_coord = topo.coord(victim);
    for d in delivered {
        let pkt = d.packet.id.0;
        let trail = sink.events_for(pkt);
        assert!(!trail.is_empty(), "packet {pkt} left no events");

        // The accumulated marking vector: the last Mark event's mf.
        let last_mark = trail
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Mark { mf } => Some(mf),
                _ => None,
            })
            .expect("DDPM marks every packet at least at injection");

        // It must be byte-identical to what the victim received...
        assert_eq!(last_mark, d.packet.header.identification.raw());
        let deliver_mf = trail
            .iter()
            .find_map(|e| match e.kind {
                EventKind::Deliver { mf, .. } => Some(mf),
                _ => None,
            })
            .expect("delivered packet must have a Deliver event");
        assert_eq!(last_mark, deliver_mf);

        // ...and identify() on that accumulated vector must name the
        // true injector — the single-packet identification claim, now
        // auditable hop by hop from the trace.
        let identified = scheme
            .identify_node(&topo, &dest_coord, MarkingField::new(last_mark))
            .expect("in-range marking vector");
        assert_eq!(identified, d.packet.true_source, "packet {pkt}");
    }
}

#[test]
fn traced_run_equals_untraced_run() {
    // Telemetry must observe, never perturb: same seed with and without
    // a sink must deliver the same packets with the same markings.
    let topo = Topology::torus(&[4, 4]);
    let scheme = DdpmScheme::new(&topo).unwrap();
    let map = AddrMap::for_topology(&topo);
    let faults = FaultSet::none();
    let run = |tcfg: TelemetryConfig| {
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(99).to_builder().telemetry(tcfg).build(),
        );
        for k in 0..40u64 {
            let src = NodeId((k % 15) as u32);
            sim.schedule(SimTime(k * 3), mk_packet(&map, k, src, NodeId(15)));
        }
        sim.run();
        sim.delivered()
            .iter()
            .map(|d| (d.packet.id.0, d.packet.header.identification.raw(), d.delivered_at))
            .collect::<Vec<_>>()
    };
    let plain = run(TelemetryConfig::off());
    let traced = run(TelemetryConfig::events_to(shared(MemorySink::new())));
    assert_eq!(plain, traced);
}
