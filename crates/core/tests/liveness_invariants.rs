//! Liveness and conservation properties of the full marking pipeline.
//!
//! These tests run the real `DdpmScheme` through the simulator with the
//! watchdog and the strict invariant checker armed, under randomised
//! fault churn and retry policies: any conservation breach, marking
//! inconsistency or fault-set incoherence panics the run, so a green
//! property is a machine-checked "zero violations" claim. The second
//! half pins the PR 3 turn-model fix: `Random` selection on a west-first
//! mesh used to livelock (EXPERIMENTS.md E-RESIL); it now delivers every
//! benign packet.

use ddpm_core::DdpmScheme;
use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{InvariantConfig, RetryPolicy, SimConfig, SimTime, Simulation, WatchdogConfig};
use ddpm_topology::{ChurnConfig, FaultSchedule, FaultSet, NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
    Packet {
        id: PacketId(id),
        header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
        l4: L4::udp(1, 7),
        true_source: src,
        dest_node: dst,
        class: TrafficClass::Benign,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Packet conservation (`injected == delivered + dropped`) and every
    /// other runtime invariant hold across random fault schedules and
    /// retry policies, with the watchdog escalating whatever the churn
    /// wedges. The checker runs strict, so a violation aborts the case.
    #[test]
    fn conservation_under_random_churn_and_retries(
        seed in any::<u64>(),
        side in 4u16..7,
        burst in 40u64..160,
        link_rate in 0.0f64..0.08,
        switch_rate in 0.0f64..0.02,
        down_time in 50u64..400,
        retries in 0u32..6,
        age_idx in 0usize..3,
    ) {
        let max_age = [96u64, 512, 2048][age_idx];
        let topo = Topology::torus(&[side, side]);
        let n = u32::from(side) * u32::from(side);
        let map = AddrMap::for_topology(&topo);
        let scheme = DdpmScheme::new(&topo).expect("torus fits the codec");
        let churn = FaultSchedule::churn(
            &topo,
            &ChurnConfig {
                horizon: 2000,
                period: 100,
                link_rate,
                switch_rate,
                down_time,
            },
            {
                let mut rng = SmallRng::seed_from_u64(seed ^ 0xC0DE);
                move || rng.gen::<f64>()
            },
        );
        let mut cfg = SimConfig::seeded(seed)
            .to_builder()
            .watchdog(WatchdogConfig {
                check_period: 64,
                max_age,
                stall_cycles: 4096,
                escape: Some(Router::DimensionOrder),
            })
            .invariants(InvariantConfig::strict())
            .build();
        if retries > 0 {
            cfg = cfg
                .to_builder()
                .fault_tolerance(RetryPolicy::capped(retries, 4, 256))
                .build();
        }
        let mut sim = Simulation::new(
            &topo,
            &FaultSet::none(),
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            cfg,
        );
        sim.schedule_faults(&churn);
        let mut rng = SmallRng::seed_from_u64(seed);
        for k in 0..burst {
            let s = NodeId(rng.gen_range(0..n));
            let d = NodeId(rng.gen_range(0..n));
            if s == d {
                continue;
            }
            sim.schedule(SimTime(rng.gen_range(0..600)), mk_packet(&map, k, s, d));
        }
        let stats = sim.run();
        prop_assert!(stats.accounted(0), "conservation violated: {stats:?}");
        prop_assert!(
            sim.violations().is_empty(),
            "invariant violations: {:?}",
            sim.violations()
        );
        prop_assert_eq!(
            stats.benign.injected,
            stats.benign.delivered + stats.benign.dropped(),
            "every packet must end in a typed outcome"
        );
    }

    /// The PR 3 selection fix, as a property: `Random` on a turn-model
    /// router (upgraded internally to productive-first) delivers 100% of
    /// a benign workload on a healthy mesh, for any seed and load.
    #[test]
    fn west_first_random_delivers_everything_on_a_healthy_mesh(
        seed in any::<u64>(),
        burst in 20u64..120,
    ) {
        let topo = Topology::mesh2d(8);
        let map = AddrMap::for_topology(&topo);
        let scheme = DdpmScheme::new(&topo).expect("mesh fits the codec");
        // Watchdog armed as a backstop: if the livelock ever regressed,
        // the run would end in typed drops (caught by the delivery
        // assert) instead of hanging the test suite.
        let cfg = SimConfig::seeded(seed)
            .to_builder()
            .watchdog(WatchdogConfig::default())
            .invariants(InvariantConfig::strict())
            .build();
        let mut sim = Simulation::new(
            &topo,
            &FaultSet::none(),
            Router::WestFirst,
            SelectionPolicy::Random,
            &scheme,
            cfg,
        );
        let mut rng = SmallRng::seed_from_u64(seed);
        for k in 0..burst {
            let s = NodeId(rng.gen_range(0..64));
            let d = NodeId(rng.gen_range(0..64));
            if s == d {
                continue;
            }
            sim.schedule(SimTime(k % 16), mk_packet(&map, k, s, d));
        }
        let stats = sim.run();
        prop_assert_eq!(
            stats.benign.delivered,
            stats.benign.injected,
            "west-first + Random must deliver everything: {:?}",
            stats
        );
        prop_assert_eq!(stats.watchdog.livelocks, 0, "no watchdog escalations expected");
    }
}
