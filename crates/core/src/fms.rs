//! Savage's Fragment Marking Scheme (FMS) — the compressed PPM the
//! paper's §2 quotes the convergence bound for.
//!
//! "To store sufficient trace back information in the 16-bit IP
//! identification field, they proposed an encoding scheme which hashes
//! IP addresses and writes a fraction of it. With less packet length
//! overhead, the expected number of packets for the victim to receive
//! before reconstructing a path of length of d is roughly less than
//! k·ln(kd)/p(1−p)^{d−1}, where k is the number of fraction\[s\]." (§2)
//!
//! Adapted to cluster node labels: a switch's 16-bit label is
//! bit-interleaved with a 16-bit hash of it (so reassembly is
//! self-verifying), the 32-bit result is split into `K = 4` fragments
//! of 8 bits, and each mark carries one fragment plus its offset and an
//! ageing distance:
//!
//! ```text
//! MF layout (LSB→MSB): [distance:5][offset:2][fragment:8]  = 15 bits
//! ```
//!
//! Marking follows Savage's automaton: with probability `p` a switch
//! writes a random fragment of its own interleaved value with distance
//! 0; otherwise, if the distance is 0, it XORs its own matching fragment
//! into the field (forming the edge id) and in any case increments the
//! distance. The victim reassembles per (distance, offset), XORs out the
//! already-reconstructed downstream switch, and accepts candidates whose
//! hash half verifies — walking the path upstream one switch at a time.
//!
//! FMS fits *any* cluster size in the MF (that is its entire point),
//! but it inherits PPM's two cluster killers, both reproduced in the
//! tests: it needs `k×` more packets (the §2 bound), and it assumes a
//! stable route — adaptive routing interleaves fragments of different
//! paths and reconstruction collapses.

use ddpm_net::{MarkingField, Packet};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::Coord;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

/// Number of fragments per interleaved value.
pub const K: u32 = 4;
/// Bits per fragment.
pub const FRAG_BITS: u32 = 8;
const DIST_BITS: u32 = 5;
const OFF_BITS: u32 = 2;
const OFF_DIST: u32 = 0;
const OFF_OFFSET: u32 = DIST_BITS;
const OFF_FRAG: u32 = DIST_BITS + OFF_BITS;
const MAX_DIST: u16 = (1 << DIST_BITS) - 1;

/// 16-bit verification hash of a node label (keyless — the scheme's
/// security rests on reassembly consistency, not secrecy).
#[must_use]
pub fn hash16(label: u16) -> u16 {
    let mut x = u32::from(label).wrapping_add(0x9E37_79B9);
    x ^= x >> 15;
    x = x.wrapping_mul(0x2C1B_3C6D);
    x ^= x >> 12;
    x = x.wrapping_mul(0x297A_2D39);
    x ^= x >> 15;
    (x & 0xFFFF) as u16
}

/// Interleaves a label with its hash: label bit `i` → bit `2i`, hash
/// bit `i` → bit `2i+1`.
#[must_use]
pub fn interleave(label: u16) -> u32 {
    let h = hash16(label);
    let mut out = 0u32;
    for i in 0..16 {
        out |= u32::from((label >> i) & 1) << (2 * i);
        out |= u32::from((h >> i) & 1) << (2 * i + 1);
    }
    out
}

/// Splits an interleaved value back into `(label, hash)` halves.
#[must_use]
pub fn deinterleave(v: u32) -> (u16, u16) {
    let mut label = 0u16;
    let mut hash = 0u16;
    for i in 0..16 {
        label |= (((v >> (2 * i)) & 1) as u16) << i;
        hash |= (((v >> (2 * i + 1)) & 1) as u16) << i;
    }
    (label, hash)
}

/// True if `v` is a self-consistent interleaving of some label.
#[must_use]
pub fn verifies(v: u32) -> bool {
    let (label, hash) = deinterleave(v);
    hash16(label) == hash
}

/// Fragment `offset` (0..K) of an interleaved value.
#[must_use]
pub fn fragment(v: u32, offset: u32) -> u8 {
    assert!(offset < K);
    ((v >> (offset * FRAG_BITS)) & 0xFF) as u8
}

/// One collected FMS mark.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct FmsMark {
    /// Ageing distance (hops after the edge formed).
    pub distance: u16,
    /// Fragment offset within the interleaved value.
    pub offset: u8,
    /// The (possibly XOR-combined) fragment payload.
    pub fragment: u8,
}

/// The FMS marking scheme.
#[derive(Clone, Copy, Debug)]
pub struct FmsScheme {
    /// Marking probability `p`.
    pub p: f64,
}

impl FmsScheme {
    /// Builds the scheme with marking probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self { p }
    }

    /// One switch's marking step (exposed for process-level tests).
    pub fn step(&self, mf: &mut MarkingField, label: u16, mark: bool, offset_draw: u32) {
        let own = interleave(label);
        if mark {
            let off = offset_draw % K;
            mf.set_bits(OFF_FRAG, FRAG_BITS, u16::from(fragment(own, off)));
            mf.set_bits(OFF_OFFSET, OFF_BITS, off as u16);
            mf.set_bits(OFF_DIST, DIST_BITS, 0);
        } else {
            let dist = mf.get_bits(OFF_DIST, DIST_BITS);
            if dist == 0 {
                let off = u32::from(mf.get_bits(OFF_OFFSET, OFF_BITS));
                let frag = mf.get_bits(OFF_FRAG, FRAG_BITS) as u8 ^ fragment(own, off);
                mf.set_bits(OFF_FRAG, FRAG_BITS, u16::from(frag));
            }
            if dist < MAX_DIST {
                mf.set_bits(OFF_DIST, DIST_BITS, dist + 1);
            }
        }
    }

    /// Victim-side extraction of one mark.
    #[must_use]
    pub fn extract(&self, mf: MarkingField) -> FmsMark {
        FmsMark {
            distance: mf.get_bits(OFF_DIST, DIST_BITS),
            offset: mf.get_bits(OFF_OFFSET, OFF_BITS) as u8,
            fragment: mf.get_bits(OFF_FRAG, FRAG_BITS) as u8,
        }
    }
}

impl Marker for FmsScheme {
    fn name(&self) -> &'static str {
        "ppm-fms"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let label = env.topo.index(cur).0 as u16;
        let mark = rng.gen_bool(self.p);
        let off = rng.gen_range(0..K);
        self.step(&mut pkt.header.identification, label, mark, off);
    }
}

/// Outcome of FMS path reconstruction.
#[derive(Clone, Debug, Default)]
pub struct FmsReconstruction {
    /// Reconstructed switch labels, nearest the victim first.
    pub path: Vec<u16>,
    /// Distances at which reconstruction was ambiguous (more than one
    /// hash-verified candidate) or starved (missing fragments).
    pub stalled_at: Option<u16>,
    /// Hash-verified candidates that competed at the stall point.
    pub candidates_at_stall: usize,
}

/// Reconstructs a single attack path from collected marks.
///
/// Distance 0 carries the un-combined interleaved value of the switch
/// one hop upstream; distance `d ≥ 1` carries `I(a) ⊕ I(b)` where `b`
/// is the switch reconstructed at the previous level. Reconstruction
/// stalls (recording why) on missing fragments or hash ambiguity.
#[must_use]
pub fn reconstruct_fms(marks: &HashSet<FmsMark>) -> FmsReconstruction {
    // (distance, offset) -> fragment values seen.
    let mut table: HashMap<(u16, u8), HashSet<u8>> = HashMap::new();
    let mut max_d = 0;
    for m in marks {
        table
            .entry((m.distance, m.offset))
            .or_default()
            .insert(m.fragment);
        max_d = max_d.max(m.distance);
    }
    let mut out = FmsReconstruction::default();
    let mut prev: Option<u32> = None;
    for d in 0..=max_d {
        // Gather fragment sets for each offset at this distance.
        let mut sets: Vec<Vec<u8>> = Vec::with_capacity(K as usize);
        for off in 0..K as u8 {
            match table.get(&(d, off)) {
                Some(s) if !s.is_empty() => sets.push(s.iter().copied().collect()),
                _ => {
                    out.stalled_at = Some(d);
                    return out;
                }
            }
        }
        // Cross product of candidate fragments.
        let mut candidates: Vec<u32> = Vec::new();
        let mut idx = vec![0usize; K as usize];
        loop {
            let mut v = 0u32;
            for off in 0..K as usize {
                v |= u32::from(sets[off][idx[off]]) << (off as u32 * FRAG_BITS);
            }
            let reassembled = match prev {
                None => v,
                Some(b) => v ^ b,
            };
            if verifies(reassembled) {
                candidates.push(reassembled);
            }
            // Advance the odometer.
            let mut carry = 0;
            loop {
                idx[carry] += 1;
                if idx[carry] < sets[carry].len() {
                    break;
                }
                idx[carry] = 0;
                carry += 1;
                if carry == K as usize {
                    break;
                }
            }
            if carry == K as usize {
                break;
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        match candidates.as_slice() {
            [one] => {
                let (label, _) = deinterleave(*one);
                out.path.push(label);
                prev = Some(*one);
            }
            _ => {
                out.stalled_at = Some(d);
                out.candidates_at_stall = candidates.len();
                return out;
            }
        }
    }
    out
}

/// Process-level helper: the marks a stable path would deposit if the
/// switch at hop `i` (0-based from the source side) marks with offset
/// `off`, over a path of switch labels `path` (victim excluded).
#[must_use]
pub fn enumerate_path_marks(path_labels: &[u16]) -> HashSet<FmsMark> {
    let scheme = FmsScheme::new(1.0);
    let mut out = HashSet::new();
    let h = path_labels.len();
    for i in 0..h {
        for off in 0..K {
            // Simulate: mark at switch i with offset `off`, then let the
            // rest of the path age/combine it.
            let mut mf = MarkingField::zero();
            scheme.step(&mut mf, path_labels[i], true, off);
            for label in &path_labels[i + 1..] {
                scheme.step(&mut mf, *label, false, 0);
            }
            out.insert(scheme.extract(mf));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Packet};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, NodeId, Topology};

    #[test]
    fn interleave_roundtrip_and_verification() {
        for label in [0u16, 1, 255, 4096, u16::MAX] {
            let v = interleave(label);
            let (l, h) = deinterleave(v);
            assert_eq!(l, label);
            assert_eq!(h, hash16(label));
            assert!(verifies(v));
            // A flipped bit almost never verifies.
            assert!(!verifies(v ^ 1) || !verifies(v ^ 2));
        }
    }

    #[test]
    fn fragments_reassemble() {
        let v = interleave(0xBEEF);
        let mut r = 0u32;
        for off in 0..K {
            r |= u32::from(fragment(v, off)) << (off * FRAG_BITS);
        }
        assert_eq!(r, v);
    }

    #[test]
    fn full_mark_set_reconstructs_the_path() {
        // Path of 6 switches (source side first); victim downstream.
        let path = [10u16, 22, 34, 46, 58, 61];
        let marks = enumerate_path_marks(&path);
        let r = reconstruct_fms(&marks);
        assert_eq!(r.stalled_at, None, "{r:?}");
        // Reconstruction runs victim-outwards: nearest switch first.
        let want: Vec<u16> = path.iter().rev().copied().collect();
        assert_eq!(r.path, want);
    }

    #[test]
    fn missing_fragments_stall_reconstruction() {
        let path = [10u16, 22, 34];
        let mut marks = enumerate_path_marks(&path);
        // Remove every offset-2 fragment at distance 1.
        marks.retain(|m| !(m.distance == 1 && m.offset == 2));
        let r = reconstruct_fms(&marks);
        assert_eq!(r.stalled_at, Some(1));
        assert_eq!(r.path.len(), 1, "level 0 still reconstructs");
    }

    #[test]
    fn full_stack_stable_route_reconstructs() {
        // Real simulator, dimension-order routing: collect marks from a
        // long stream and reconstruct the whole switch path.
        let topo = Topology::mesh2d(8);
        let scheme = FmsScheme::new(0.2);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(6),
        );
        let src = NodeId(0);
        let dst = NodeId(63);
        for k in 0..6000u64 {
            let p = Packet {
                id: ddpm_net::PacketId(k),
                header: ddpm_net::Ipv4Header::new(
                    map.ip_of(src),
                    map.ip_of(dst),
                    ddpm_net::Protocol::Udp,
                    64,
                ),
                l4: ddpm_net::L4::udp(1, 7),
                true_source: src,
                dest_node: dst,
                class: ddpm_net::TrafficClass::Attack,
            };
            sim.schedule(SimTime(k * 4), p);
        }
        sim.run();
        let mut marks = HashSet::new();
        for d in sim.delivered() {
            marks.insert(scheme.extract(d.packet.header.identification));
        }
        let r = reconstruct_fms(&marks);
        // The XY path 0 -> 63 crosses 14 switches (victim excluded);
        // nearest first the last one is the source's own switch.
        assert!(
            r.path.len() >= 14,
            "reconstructed {} switches",
            r.path.len()
        );
        assert_eq!(*r.path.last().unwrap(), 0, "source switch reached");
    }

    #[test]
    fn adaptive_routing_breaks_fms() {
        // The §4 argument: fragments from different paths interleave and
        // reconstruction stalls in ambiguity or hash garbage well before
        // the source.
        let topo = Topology::mesh2d(8);
        let scheme = FmsScheme::new(0.2);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(8),
        );
        let src = NodeId(0);
        let dst = NodeId(63);
        for k in 0..6000u64 {
            let p = Packet {
                id: ddpm_net::PacketId(k),
                header: ddpm_net::Ipv4Header::new(
                    map.ip_of(src),
                    map.ip_of(dst),
                    ddpm_net::Protocol::Udp,
                    64,
                ),
                l4: ddpm_net::L4::udp(1, 7),
                true_source: src,
                dest_node: dst,
                class: ddpm_net::TrafficClass::Attack,
            };
            sim.schedule(SimTime(k * 4), p);
        }
        sim.run();
        let mut marks = HashSet::new();
        for d in sim.delivered() {
            marks.insert(scheme.extract(d.packet.header.identification));
        }
        let r = reconstruct_fms(&marks);
        assert!(
            r.path.len() < 14 || *r.path.last().unwrap() != 0,
            "adaptive routing should defeat FMS reconstruction, got {:?}",
            r.path
        );
    }
}
