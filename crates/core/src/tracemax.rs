//! Tracemax-style full-path recording, a deterministic baseline beyond
//! the paper's own three.
//!
//! Hackl & Rass's Tracemax (arXiv 2004.09327) records the *entire
//! sequence of routers* a packet traverses instead of sampling edges or
//! hashing switch identities: "a detailed path analysis … traces the
//! exact way of a single packet". Ported to a direct network, a switch
//! port is one of at most `2n` directions, so a hop compresses to a
//! `⌈log₂ ports⌉`-bit digit and the 16-bit MF holds a short digit
//! string plus a hop counter:
//!
//! ```text
//! LSB  [hop_count: 4][digit 0][digit 1]…[digit capacity-1]  MSB
//! ```
//!
//! The victim replays the digits backwards from its own coordinate to
//! recover not just the source but the whole path — per-packet path
//! identification like DDPM, with the paper's Table-3 trade-off turned
//! inside out: cost grows with *path length*, not topology size, so
//! long adaptive detours overflow the field. An overflowed recording
//! (hop count sentinel `0xF`) names no source at all — that, plus
//! digit strings that walk off a mesh boundary under tampering, is the
//! scheme's documented ambiguity.

use ddpm_net::{MarkingField, Packet, MF_BITS};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::{Coord, Direction, Topology};
use rand::rngs::SmallRng;
use std::fmt;

/// Bits of the hop counter (values 0–14; 15 is the overflow sentinel).
pub const COUNT_BITS: u32 = 4;

/// Hop-counter value marking an overflowed recording.
pub const OVERFLOW: u16 = (1 << COUNT_BITS) - 1;

/// Errors from building a [`TracemaxScheme`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TracemaxError {
    /// Even a minimal route across the topology has more hops than the
    /// digit string can hold — the recording would overflow on honest
    /// traffic.
    CapacityTooSmall {
        /// Hops the MF digit string can record.
        capacity: u32,
        /// The topology diameter.
        diameter: u32,
    },
}

impl fmt::Display for TracemaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TracemaxError::CapacityTooSmall { capacity, diameter } => write!(
                f,
                "path recording holds {capacity} hops, topology diameter is {diameter}"
            ),
        }
    }
}

impl std::error::Error for TracemaxError {}

/// The Tracemax-style path recorder.
#[derive(Clone, Debug)]
pub struct TracemaxScheme {
    dirs: Vec<Direction>,
    dir_bits: u32,
    capacity: u32,
}

impl TracemaxScheme {
    /// Builds the recorder for `topo`.
    ///
    /// # Errors
    /// [`TracemaxError::CapacityTooSmall`] when minimal routes already
    /// exceed the digit string — the scheme's scalability wall (it is
    /// path length, not node count, that kills it).
    pub fn new(topo: &Topology) -> Result<Self, TracemaxError> {
        Self::with_budget(topo, MF_BITS)
    }

    /// Builds the recorder confined to the low `mf_budget` bits.
    ///
    /// The authenticated wrapper shrinks the budget to free tag room,
    /// paying for it in recording capacity — the same path-length wall,
    /// hit sooner.
    ///
    /// # Errors
    /// [`TracemaxError::CapacityTooSmall`] when the shrunk digit string
    /// cannot hold a minimal route across the topology.
    pub fn with_budget(topo: &Topology, mf_budget: u32) -> Result<Self, TracemaxError> {
        let mf_budget = mf_budget.min(MF_BITS);
        let dirs = topo.directions();
        let dir_bits = crate::analysis::ceil_log2(dirs.len() as u64).max(1);
        let capacity = (mf_budget.saturating_sub(COUNT_BITS) / dir_bits)
            .min(u32::from(OVERFLOW) - 1);
        if capacity < topo.diameter() {
            return Err(TracemaxError::CapacityTooSmall {
                capacity,
                diameter: topo.diameter(),
            });
        }
        Ok(Self {
            dirs,
            dir_bits,
            capacity,
        })
    }

    /// Hops the digit string can record.
    #[must_use]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// MF bits the layout occupies.
    #[must_use]
    pub fn bits_used(&self) -> u32 {
        COUNT_BITS + self.capacity * self.dir_bits
    }

    fn digit_offset(&self, hop: u32) -> u32 {
        COUNT_BITS + hop * self.dir_bits
    }

    /// One switch's recording step: append the digit for the direction
    /// of travel, or latch the overflow sentinel.
    fn step(&self, mf: &mut MarkingField, dir: Direction) {
        let count = u32::from(mf.get_bits(0, COUNT_BITS));
        if count == u32::from(OVERFLOW) {
            return; // already overflowed; nothing more to record
        }
        if count >= self.capacity {
            mf.set_bits(0, COUNT_BITS, OVERFLOW);
            return;
        }
        let digit = self
            .dirs
            .iter()
            .position(|d| *d == dir)
            .expect("hop direction is a port of this topology") as u16;
        mf.set_bits(self.digit_offset(count), self.dir_bits, digit);
        mf.set_bits(0, COUNT_BITS, (count + 1) as u16);
    }

    /// Victim-side replay: walks the recorded digits backwards from
    /// `dest` and returns the full path `source, …, dest`.
    ///
    /// `None` for overflowed recordings and for digit strings that name
    /// a missing port (tampering, or a mesh boundary walk-off) — the
    /// documented ambiguity set.
    #[must_use]
    pub fn decode_path(&self, topo: &Topology, dest: &Coord, mf: MarkingField) -> Option<Vec<Coord>> {
        let count = u32::from(mf.get_bits(0, COUNT_BITS));
        if count == u32::from(OVERFLOW) || count > self.capacity {
            return None;
        }
        let mut path = vec![*dest];
        let mut node = *dest;
        for hop in (0..count).rev() {
            let digit = mf.get_bits(self.digit_offset(hop), self.dir_bits) as usize;
            let dir = *self.dirs.get(digit)?;
            node = topo.neighbor(&node, dir.reverse())?;
            path.push(node);
        }
        path.reverse();
        Some(path)
    }

    /// Victim-side source identification: the far end of the replayed
    /// path.
    #[must_use]
    pub fn identify(&self, topo: &Topology, dest: &Coord, mf: MarkingField) -> Option<Coord> {
        self.decode_path(topo, dest, mf).map(|p| p[0])
    }
}

impl Marker for TracemaxScheme {
    fn name(&self) -> &'static str {
        "tracemax"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        // The injection switch resets the recording — pre-loaded forged
        // paths die here, as in DDPM §5.
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
        let Some(dir) = env.topo.hop_direction(cur, next) else {
            debug_assert!(false, "forward between non-neighbours {cur} -> {next}");
            return;
        };
        self.step(&mut pkt.header.identification, dir);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, NodeId};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(999, 53),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    #[test]
    fn capacity_follows_port_count() {
        // 2-D mesh/torus: 4 ports -> 2-bit digits -> 6 hops.
        let m = TracemaxScheme::new(&Topology::mesh2d(4)).unwrap();
        assert_eq!(m.capacity(), 6);
        assert_eq!(m.bits_used(), 16);
        // 4-cube: 4 ports -> 2-bit digits -> 6 hops >= diameter 4.
        let h = TracemaxScheme::new(&Topology::hypercube(4)).unwrap();
        assert_eq!(h.capacity(), 6);
    }

    #[test]
    fn long_diameter_is_rejected() {
        // 8x8 mesh: diameter 14 > 6-hop recording.
        assert!(matches!(
            TracemaxScheme::new(&Topology::mesh2d(8)),
            Err(TracemaxError::CapacityTooSmall {
                capacity: 6,
                diameter: 14
            })
        ));
    }

    #[test]
    fn records_and_replays_full_paths() {
        for topo in [
            Topology::mesh2d(4),
            Topology::torus(&[4, 4]),
            Topology::hypercube(4),
        ] {
            let scheme = TracemaxScheme::new(&topo).unwrap();
            let map = AddrMap::for_topology(&topo);
            let faults = FaultSet::none();
            for router in Router::all_for(&topo) {
                let mut sim = Simulation::new(
                    &topo,
                    &faults,
                    router,
                    SelectionPolicy::Random,
                    &scheme,
                    SimConfig::seeded(11),
                );
                let n = topo.num_nodes() as u32;
                for id in 0..120u64 {
                    let s = NodeId((id as u32 * 13 + 5) % n);
                    let d = NodeId((id as u32 * 7 + 1) % n);
                    if s == d {
                        continue;
                    }
                    sim.schedule(SimTime(id), mk_packet(&map, id, s, d));
                }
                sim.run();
                assert!(!sim.delivered().is_empty());
                for del in sim.delivered() {
                    let dest = topo.coord(del.packet.dest_node);
                    let mf = del.packet.header.identification;
                    match scheme.decode_path(&topo, &dest, mf) {
                        Some(path) => {
                            assert_eq!(
                                topo.index(&path[0]),
                                del.packet.true_source,
                                "{topo} / {router}: replay named the wrong source"
                            );
                            assert_eq!(*path.last().unwrap(), dest);
                            assert_eq!(path.len() as u32 - 1, del.hops);
                        }
                        // Non-minimal adaptive detours may overflow; that
                        // is the documented ambiguity, never a wrong name.
                        None => assert_eq!(
                            mf.get_bits(0, COUNT_BITS),
                            OVERFLOW,
                            "{topo} / {router}: undecodable without overflow"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn forged_recording_is_reset_at_injection() {
        let topo = Topology::mesh2d(4);
        let scheme = TracemaxScheme::new(&topo).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(3),
        );
        let mut p = mk_packet(&map, 1, NodeId(5), NodeId(10));
        p.header.identification = MarkingField::new(0xFFFF); // forged overflow
        sim.schedule(SimTime::ZERO, p);
        sim.run();
        let del = &sim.delivered()[0];
        let dest = topo.coord(del.packet.dest_node);
        let path = scheme
            .decode_path(&topo, &dest, del.packet.header.identification)
            .expect("honest recording decodes");
        assert_eq!(topo.index(&path[0]), NodeId(5));
    }

    #[test]
    fn overflow_latches_and_identifies_nothing() {
        let topo = Topology::torus(&[4, 4]);
        let scheme = TracemaxScheme::new(&topo).unwrap();
        let mut mf = MarkingField::zero();
        let east = topo.directions()[0];
        for _ in 0..10 {
            scheme.step(&mut mf, east);
        }
        assert_eq!(mf.get_bits(0, COUNT_BITS), OVERFLOW);
        assert_eq!(scheme.decode_path(&topo, &Coord::new(&[0, 0]), mf), None);
    }

    #[test]
    fn boundary_walkoff_identifies_nothing() {
        // A tampered digit string that exits the mesh decodes to None.
        let topo = Topology::mesh2d(4);
        let scheme = TracemaxScheme::new(&topo).unwrap();
        let mut mf = MarkingField::zero();
        mf.set_bits(0, COUNT_BITS, 6);
        // All-zero digits: six hops of dirs[0] reversed walks off (0,0).
        assert_eq!(scheme.decode_path(&topo, &Coord::new(&[0, 0]), mf), None);
    }
}
