//! Victim-side identification front-ends and accuracy scoring.
//!
//! These helpers turn a victim's delivered-packet stream into the
//! numbers the experiments report: per-packet identification outcomes
//! (scored against simulator ground truth) and an attack-source census
//! feeding mitigation.

use crate::ddpm::DdpmScheme;
use ddpm_net::TrafficClass;
use ddpm_sim::Delivered;
use ddpm_topology::{NodeId, Topology};
use std::collections::HashMap;

/// Outcome counts of scoring an identification scheme against ground
/// truth.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentificationReport {
    /// Packets examined.
    pub total: u64,
    /// Identified exactly the true injecting node.
    pub correct: u64,
    /// Identified some other node (false attribution).
    pub wrong: u64,
    /// The scheme produced no identification.
    pub unidentified: u64,
}

impl IdentificationReport {
    /// Fraction identified correctly.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        if self.total == 0 {
            return 1.0;
        }
        self.correct as f64 / self.total as f64
    }
}

/// Scores DDPM per-packet identification over a delivered stream.
///
/// This is the headline measurement: under DDPM every delivered packet
/// identifies its true source ("The victim needs only one packet to
/// identify the source", §1), so accuracy is 1.0 across every router and
/// fault pattern — verified by the `ident` experiment and the
/// integration tests.
#[must_use]
pub fn score_ddpm(
    topo: &Topology,
    scheme: &DdpmScheme,
    delivered: &[Delivered],
) -> IdentificationReport {
    let mut r = IdentificationReport::default();
    for d in delivered {
        r.total += 1;
        let dest = topo.coord(d.packet.dest_node);
        match scheme.attribute(topo, &dest, d.packet.header.identification).single() {
            Some(node) if node == d.packet.true_source => r.correct += 1,
            Some(_) => r.wrong += 1,
            None => r.unidentified += 1,
        }
    }
    r
}

/// Census of identified sources over the **attack-class** packets a
/// victim received: identified node → packet count. Feeds the
/// quarantine filter in the end-to-end pipeline.
#[must_use]
pub fn attack_census(
    topo: &Topology,
    scheme: &DdpmScheme,
    delivered: &[Delivered],
) -> HashMap<NodeId, u64> {
    let mut census = HashMap::new();
    for d in delivered {
        if d.packet.class != TrafficClass::Attack {
            continue;
        }
        let dest = topo.coord(d.packet.dest_node);
        if let Some(node) = scheme
            .attribute(topo, &dest, d.packet.header.identification)
            .single()
        {
            *census.entry(node).or_insert(0) += 1;
        }
    }
    census
}

/// The spoofed-source census a victim would compute *without* any
/// marking scheme: it can only trust the (forged) source address field.
/// Used by experiments as the "no traceback" baseline.
#[must_use]
pub fn naive_census(
    map: &ddpm_net::AddrMap,
    delivered: &[Delivered],
) -> HashMap<Option<NodeId>, u64> {
    let mut census = HashMap::new();
    for d in delivered {
        if d.packet.class != TrafficClass::Attack {
            continue;
        }
        *census.entry(map.node_of(d.packet.header.src)).or_insert(0) += 1;
    }
    census
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, MarkingField, Packet, PacketId, Protocol, L4};
    use ddpm_sim::SimTime;

    fn delivered_with_mf(
        topo: &Topology,
        map: &AddrMap,
        true_src: NodeId,
        spoof_src: NodeId,
        dst: NodeId,
        mf: MarkingField,
        class: TrafficClass,
    ) -> Delivered {
        let mut header = Ipv4Header::new(map.ip_of(spoof_src), map.ip_of(dst), Protocol::Udp, 64);
        header.identification = mf;
        let _ = topo;
        Delivered {
            packet: Packet {
                id: PacketId(0),
                header,
                l4: L4::udp(1, 2),
                true_source: true_src,
                dest_node: dst,
                class,
            },
            injected_at: SimTime::ZERO,
            delivered_at: SimTime(10),
            hops: 3,
            path: None,
        }
    }

    #[test]
    fn report_counts_and_accuracy() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let src = NodeId(3);
        let dst = NodeId(12);
        let v = topo.expected_distance(&topo.coord(src), &topo.coord(dst));
        let good_mf = scheme.codec().encode(&v).unwrap();
        let bad_v = topo.expected_distance(&topo.coord(NodeId(7)), &topo.coord(dst));
        let bad_mf = scheme.codec().encode(&bad_v).unwrap();
        let stream = vec![
            delivered_with_mf(
                &topo,
                &map,
                src,
                NodeId(9),
                dst,
                good_mf,
                TrafficClass::Attack,
            ),
            delivered_with_mf(
                &topo,
                &map,
                src,
                NodeId(9),
                dst,
                bad_mf,
                TrafficClass::Attack,
            ),
        ];
        let r = score_ddpm(&topo, &scheme, &stream);
        assert_eq!(r.total, 2);
        assert_eq!(r.correct, 1);
        assert_eq!(r.wrong, 1);
        assert_eq!(r.accuracy(), 0.5);
    }

    #[test]
    fn census_ignores_benign_and_uses_marking_not_header() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let dst = NodeId(15);
        let mk = |src: NodeId, class| {
            let v = topo.expected_distance(&topo.coord(src), &topo.coord(dst));
            let mf = scheme.codec().encode(&v).unwrap();
            // Spoofed header always claims node 0.
            delivered_with_mf(&topo, &map, src, NodeId(0), dst, mf, class)
        };
        let stream = vec![
            mk(NodeId(3), TrafficClass::Attack),
            mk(NodeId(3), TrafficClass::Attack),
            mk(NodeId(7), TrafficClass::Attack),
            mk(NodeId(9), TrafficClass::Benign),
        ];
        let census = attack_census(&topo, &scheme, &stream);
        assert_eq!(census.get(&NodeId(3)), Some(&2));
        assert_eq!(census.get(&NodeId(7)), Some(&1));
        assert_eq!(census.len(), 2);
        // The naive census sees only the forged claim.
        let naive = naive_census(&map, &stream);
        assert_eq!(naive.get(&Some(NodeId(0))), Some(&3));
        assert_eq!(naive.len(), 1);
    }

    #[test]
    fn empty_stream_is_fully_accurate() {
        let topo = Topology::mesh2d(4);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let r = score_ddpm(&topo, &scheme, &[]);
        assert_eq!(r.accuracy(), 1.0);
    }
}
