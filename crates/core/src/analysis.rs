//! Closed-form scalability analysis — the engine behind Tables 1–3.
//!
//! The paper sizes each scheme's marking requirement against the 16-bit
//! MF and reports the largest supportable cluster:
//!
//! * **Table 1** (simple PPM): two node indices + a distance field —
//!   `2·log N + log(diameter+1)` bits. Max: 8×8 mesh/torus, 2⁶
//!   hypercube.
//! * **Table 2** (bit-difference PPM): one index + a bit position + a
//!   distance — `log N + log log N + log(diameter+1)` bits. Max
//!   (re-derived; the source scrape garbles the mesh entry): 16×16
//!   mesh/torus, 2⁸ hypercube.
//! * **Table 3** (DDPM): per-dimension signed distances —
//!   `Σ (log k_i + 1)` bits for mesh/torus, `n` for the hypercube. Max:
//!   128×128 mesh/torus (16 384 nodes), 8 192-node 3-D mesh/torus, 2¹⁶
//!   hypercube.
//!
//! Also here: the PPM convergence bound of §2/§4.2 and the XOR ambiguity
//! count of §4.2.

use ddpm_net::{CodecMode, DistanceCodec};
use ddpm_topology::gray::{gray_label, gray_label_bits};
use ddpm_topology::Topology;

/// Bits needed to distinguish `values` distinct values: `⌈log₂ values⌉`
/// (minimum 1).
#[must_use]
pub fn ceil_log2(values: u64) -> u32 {
    match values {
        0 | 1 => 1,
        v => (v - 1).ilog2() + 1,
    }
}

/// Marking bits the simple edge-PPM scheme needs on `topo` (Table 1):
/// two indices plus a distance counter.
#[must_use]
pub fn simple_ppm_bits(topo: &Topology) -> u32 {
    2 * ceil_log2(topo.num_nodes()) + ceil_log2(u64::from(topo.diameter()) + 1)
}

/// Marking bits the bit-difference PPM scheme needs (Table 2): one
/// index, a bit position within it, and a distance counter.
#[must_use]
pub fn bitdiff_ppm_bits(topo: &Topology) -> u32 {
    let index = ceil_log2(topo.num_nodes());
    index + ceil_log2(u64::from(index)) + ceil_log2(u64::from(topo.diameter()) + 1)
}

/// Marking bits DDPM needs (Table 3), under the given codec convention.
#[must_use]
pub fn ddpm_bits(topo: &Topology, mode: CodecMode) -> u32 {
    match DistanceCodec::for_topology(topo, mode) {
        Ok(codec) => codec.bits_used(),
        // Past the MF boundary the codec refuses; recompute the raw
        // requirement for reporting.
        Err(_) => match topo.kind() {
            ddpm_topology::TopologyKind::Hypercube => topo.ndims() as u32,
            _ => topo
                .dims()
                .iter()
                .map(|&k| ceil_log2(u64::from(k)) + u32::from(matches!(mode, CodecMode::Signed)))
                .sum(),
        },
    }
}

/// Largest `n` such that the square `n × n` mesh satisfies
/// `bits(topo) ≤ budget`.
#[must_use]
pub fn max_square_mesh(budget: u32, bits: impl Fn(&Topology) -> u32) -> u16 {
    let mut best = 0;
    for n in 2..=1024u16 {
        if bits(&Topology::mesh2d(n)) <= budget {
            best = n;
        }
    }
    best
}

/// Largest hypercube dimension `n` with `bits ≤ budget`.
#[must_use]
pub fn max_hypercube(budget: u32, bits: impl Fn(&Topology) -> u32) -> usize {
    let mut best = 0;
    // Evaluate formulas directly (construction caps at 16 dims).
    for n in 1..=16usize {
        if bits(&Topology::hypercube(n)) <= budget {
            best = n;
        }
    }
    best
}

/// §4.2 / §2: expected packets the victim must receive before PPM
/// reconstructs a path of length `d` with marking probability `p`
/// (single-fragment form): `ln(d) / (p · (1−p)^{d−1})`.
#[must_use]
pub fn ppm_expected_packets(d: u32, p: f64) -> f64 {
    assert!(d >= 1 && p > 0.0 && p < 1.0);
    (f64::from(d)).ln().max(1.0) / (p * (1.0 - p).powi(d as i32 - 1))
}

/// Savage's fragmented bound `k·ln(k·d) / (p·(1−p)^{d−1})` quoted in §2.
#[must_use]
pub fn savage_expected_packets(k: u32, d: u32, p: f64) -> f64 {
    assert!(k >= 1 && d >= 1 && p > 0.0 && p < 1.0);
    f64::from(k) * (f64::from(k) * f64::from(d)).ln() / (p * (1.0 - p).powi(d as i32 - 1))
}

/// §4.2's XOR ambiguity estimate for the `n × n` mesh:
/// `n(n−1)/log₂ n` edges share each XOR value on average.
#[must_use]
pub fn xor_ambiguity_expected(n: u16) -> f64 {
    assert!(n >= 2);
    f64::from(n) * f64::from(n - 1) / f64::from(n).log2()
}

/// Measured XOR ambiguity: the mean number of physical edges mapped to
/// each occurring XOR label value.
#[must_use]
pub fn xor_ambiguity_measured(topo: &Topology) -> f64 {
    use std::collections::HashMap;
    let _ = gray_label_bits(topo);
    let mut per_value: HashMap<u32, u64> = HashMap::new();
    let mut edges = 0u64;
    for a in topo.all_nodes() {
        let la = gray_label(topo, &a);
        for (_, b) in topo.neighbors(&a) {
            if topo.index(&a) < topo.index(&b) {
                *per_value.entry(la ^ gray_label(topo, &b)).or_insert(0) += 1;
                edges += 1;
            }
        }
    }
    edges as f64 / per_value.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_values() {
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(16), 4);
        assert_eq!(ceil_log2(17), 5);
        assert_eq!(ceil_log2(65_536), 16);
    }

    #[test]
    fn table1_paper_values() {
        // "Max Cluster Size: 8×8 nodes" for n×n mesh/torus.
        assert_eq!(max_square_mesh(16, simple_ppm_bits), 8);
        // 4×4 example of §4.2: 2·4 + 3 = 11 bits "smaller than 16-bit MF".
        assert_eq!(simple_ppm_bits(&Topology::mesh2d(4)), 11);
        // "2^6 nodes" hypercube.
        assert_eq!(max_hypercube(16, simple_ppm_bits), 6);
    }

    #[test]
    fn table2_paper_values() {
        // Re-derived mesh maximum (scrape garbled): 16×16.
        assert_eq!(max_square_mesh(16, bitdiff_ppm_bits), 16);
        // "2^8 nodes" hypercube.
        assert_eq!(max_hypercube(16, bitdiff_ppm_bits), 8);
        // Fig. 3(a) example network: 4 + 2 + 3 = 9 bits.
        assert_eq!(bitdiff_ppm_bits(&Topology::mesh2d(4)), 9);
    }

    #[test]
    fn table3_paper_values() {
        let signed = |t: &Topology| ddpm_bits(t, CodecMode::Signed);
        // "128×128 mesh and torus (16384 nodes cluster)".
        assert_eq!(max_square_mesh(16, signed), 128);
        // "8192 nodes cluster" in 3-D: 16×16×32 with 5+5+6 bits.
        assert_eq!(signed(&Topology::mesh(&[16, 16, 32])), 16);
        // "16-cube hypercube (65536 nodes cluster)".
        assert_eq!(max_hypercube(16, signed), 16);
        // Extension: residue mode reaches 256×256.
        let residue = |t: &Topology| ddpm_bits(t, CodecMode::Residue);
        assert_eq!(max_square_mesh(16, residue), 256);
    }

    #[test]
    fn convergence_bound_shapes() {
        // More hops ⇒ (much) more packets; higher p helps short paths.
        assert!(ppm_expected_packets(30, 0.05) > ppm_expected_packets(10, 0.05));
        assert!(ppm_expected_packets(5, 0.2) < ppm_expected_packets(5, 0.01));
        // The §4.2 point: a 1024-node mesh (diameter 62) needs orders of
        // magnitude more packets than an Internet path of 15 hops.
        let cluster = ppm_expected_packets(62, 0.1);
        let internet = ppm_expected_packets(15, 0.1);
        assert!(cluster / internet > 50.0);
    }

    #[test]
    fn savage_bound_reduces_to_single_fragment_shape() {
        let a = savage_expected_packets(8, 20, 0.04);
        let b = savage_expected_packets(1, 20, 0.04);
        assert!(a > b);
    }

    #[test]
    fn xor_ambiguity_matches_formula_on_power_of_two_meshes() {
        for n in [4u16, 8, 16] {
            let measured = xor_ambiguity_measured(&Topology::mesh2d(n));
            let expected = xor_ambiguity_expected(n);
            let rel = (measured - expected).abs() / expected;
            assert!(
                rel < 0.01,
                "n={n}: measured {measured}, expected {expected}"
            );
        }
    }

    #[test]
    fn ddpm_bits_reported_even_past_boundary() {
        // 256×256 signed: 2 × 9 = 18 bits (reported, not constructible).
        assert_eq!(ddpm_bits(&Topology::mesh2d(256), CodecMode::Signed), 18);
    }
}
