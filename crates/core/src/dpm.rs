//! Deterministic Packet Marking (DPM / Pi-style), the §4.3 baseline.
//!
//! "In DPM, every switch should mark all the packets. … every switch
//! writes the last bit of the hash value of the switch index. The
//! marking position is decided by TTL mod 16." The bits written by the
//! switches along a path form a *signature*; a victim that has flagged a
//! flow as hostile blocks every packet carrying the same signature.
//!
//! The paper's two criticisms, both reproduced by the `dpm` experiment:
//!
//! * paths longer than 16 hops wrap around and overwrite earlier bits —
//!   "After the 16th hop, the MF starts to lose information";
//! * under adaptive routing one source produces *many* signatures and
//!   different sources collide — "Considering the adaptive routing, the
//!   ambiguity becomes much larger."

use ddpm_net::{MarkingField, Packet};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::{Coord, NodeId, Topology};
use rand::rngs::SmallRng;
use std::collections::{HashMap, HashSet};

/// The last bit of the hash of a switch index.
///
/// A 32-bit finalizer (Murmur3-style) — deterministic, spread evenly, so
/// roughly half of all switches write 1 (the §4.3 observation that "two
/// out of four neighbors in the 2-D mesh have the same last bit" on
/// average).
#[must_use]
pub fn hash_bit(index: NodeId) -> bool {
    let mut x = index.0.wrapping_add(0x9E37_79B9);
    x ^= x >> 16;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 13;
    x = x.wrapping_mul(0xC2B2_AE35);
    x ^= x >> 16;
    x & 1 == 1
}

/// The DPM switch behaviour.
///
/// The slot walk covers `slots` marking-field bit positions (the
/// paper's "TTL mod 16"). The authenticated wrapper shrinks `slots` to
/// confine signatures to the low bits and free room for its keyed tag.
#[derive(Clone, Copy, Debug)]
pub struct DpmScheme {
    slots: u32,
}

impl Default for DpmScheme {
    fn default() -> Self {
        Self { slots: 16 }
    }
}

impl DpmScheme {
    /// The paper's scheme: the full 16-slot walk.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A walk over the low `slots` bits only (`TTL mod slots`).
    ///
    /// `slots` is clamped to `1..=16`.
    #[must_use]
    pub fn with_slots(slots: u32) -> Self {
        Self {
            slots: slots.clamp(1, 16),
        }
    }

    /// Marking-field bit positions the slot walk can touch.
    #[must_use]
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// The signature a given path would deposit, given the initial TTL —
    /// ground truth for the experiments. Full 16-slot walk.
    #[must_use]
    pub fn signature_of_path(topo: &Topology, path: &[Coord], initial_ttl: u8) -> u16 {
        Self::signature_of_path_slots(topo, path, initial_ttl, 16)
    }

    /// [`DpmScheme::signature_of_path`] for a reduced slot count.
    #[must_use]
    pub fn signature_of_path_slots(
        topo: &Topology,
        path: &[Coord],
        initial_ttl: u8,
        slots: u32,
    ) -> u16 {
        let slots = slots.clamp(1, 16);
        let mut mf = MarkingField::zero();
        let mut ttl = initial_ttl;
        // The switch at path[i] forwards to path[i+1]; the first switch
        // sees the initial TTL, later switches see it decremented.
        for (i, hop) in path.windows(2).enumerate() {
            if i > 0 {
                ttl = ttl.saturating_sub(1);
            }
            let pos = u32::from(ttl) % slots;
            mf.set_bit(pos, hash_bit(topo.index(&hop[0])));
        }
        mf.raw()
    }
}

impl Marker for DpmScheme {
    fn name(&self) -> &'static str {
        "dpm"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
        let pos = u32::from(pkt.header.ttl) % self.slots;
        pkt.header
            .identification
            .set_bit(pos, hash_bit(env.topo.index(cur)));
    }
}

/// Victim-side DPM state: observed signatures and the blocklist.
///
/// "if we detect that both traffic are DDoS attacks, we can block all
/// traffic having [those values] in the MF." (§4.3)
#[derive(Clone, Debug, Default)]
pub struct DpmVictim {
    /// Packets seen per signature.
    counts: HashMap<u16, u64>,
    /// Signatures flagged hostile.
    blocked: HashSet<u16>,
}

impl DpmVictim {
    /// Fresh victim state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one received marking field.
    pub fn observe(&mut self, mf: MarkingField) {
        *self.counts.entry(mf.raw()).or_insert(0) += 1;
    }

    /// Packets observed with `signature`.
    #[must_use]
    pub fn count(&self, signature: u16) -> u64 {
        self.counts.get(&signature).copied().unwrap_or(0)
    }

    /// Number of distinct signatures observed.
    #[must_use]
    pub fn distinct_signatures(&self) -> usize {
        self.counts.len()
    }

    /// Flags a signature hostile.
    pub fn block(&mut self, signature: u16) {
        self.blocked.insert(signature);
    }

    /// Flags the `k` most frequent signatures hostile (the natural
    /// response to a flood: the heavy hitters are the attack).
    pub fn block_top(&mut self, k: usize) {
        let mut by_count: Vec<(u16, u64)> = self.counts.iter().map(|(&s, &c)| (s, c)).collect();
        by_count.sort_by_key(|&(s, c)| (std::cmp::Reverse(c), s));
        for (s, _) in by_count.into_iter().take(k) {
            self.blocked.insert(s);
        }
    }

    /// True if packets with `mf` would be discarded.
    #[must_use]
    pub fn is_blocked(&self, mf: MarkingField) -> bool {
        self.blocked.contains(&mf.raw())
    }

    /// The blocklist.
    #[must_use]
    pub fn blocked(&self) -> &HashSet<u16> {
        &self.blocked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{trace_path, Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::FaultSet;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn hash_bit_is_balanced() {
        let ones = (0..10_000).filter(|&i| hash_bit(NodeId(i))).count();
        assert!((4_500..5_500).contains(&ones), "bias: {ones}/10000");
    }

    #[test]
    fn stable_route_gives_stable_signature() {
        // Deterministic routing: every packet of a flow carries the same
        // signature — DPM's working regime (§4.3).
        let topo = Topology::mesh2d(6);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = DpmScheme::new();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(1),
        );
        for id in 0..50u64 {
            sim.schedule(
                SimTime(id * 7),
                Packet {
                    id: PacketId(id),
                    header: Ipv4Header::new(
                        map.ip_of(NodeId(2)),
                        map.ip_of(NodeId(33)),
                        Protocol::Udp,
                        64,
                    ),
                    l4: L4::udp(1, 2),
                    true_source: NodeId(2),
                    dest_node: NodeId(33),
                    class: TrafficClass::Attack,
                },
            );
        }
        sim.run();
        let sigs: HashSet<u16> = sim
            .delivered()
            .iter()
            .map(|d| d.packet.header.identification.raw())
            .collect();
        assert_eq!(sigs.len(), 1);
    }

    #[test]
    fn adaptive_route_fragments_signature() {
        // §4.3: "one attack may have different MF values" under adaptive
        // routing.
        let topo = Topology::mesh2d(6);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = DpmScheme::new();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(5),
        );
        for id in 0..200u64 {
            sim.schedule(
                SimTime(id * 3),
                Packet {
                    id: PacketId(id),
                    header: Ipv4Header::new(
                        map.ip_of(NodeId(0)),
                        map.ip_of(NodeId(35)),
                        Protocol::Udp,
                        64,
                    ),
                    l4: L4::udp(1, 2),
                    true_source: NodeId(0),
                    dest_node: NodeId(35),
                    class: TrafficClass::Attack,
                },
            );
        }
        sim.run();
        let mut victim = DpmVictim::new();
        for d in sim.delivered() {
            victim.observe(d.packet.header.identification);
        }
        assert!(
            victim.distinct_signatures() > 3,
            "adaptive routing should fragment the signature set, got {}",
            victim.distinct_signatures()
        );
    }

    #[test]
    fn signature_of_path_matches_simulation() {
        let topo = Topology::mesh2d(6);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = DpmScheme::new();
        let mut rng = SmallRng::seed_from_u64(9);
        let src = Coord::new(&[0, 0]);
        let dst = Coord::new(&[4, 3]);
        let path = trace_path(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &mut rng,
            &src,
            &dst,
            64,
        )
        .unwrap();
        let predicted = DpmScheme::signature_of_path(&topo, &path, ddpm_net::ipv4::DEFAULT_TTL);

        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(1),
        );
        sim.schedule(
            SimTime::ZERO,
            Packet {
                id: PacketId(0),
                header: Ipv4Header::new(
                    map.ip_of(topo.index(&src)),
                    map.ip_of(topo.index(&dst)),
                    Protocol::Udp,
                    64,
                ),
                l4: L4::udp(1, 2),
                true_source: topo.index(&src),
                dest_node: topo.index(&dst),
                class: TrafficClass::Attack,
            },
        );
        sim.run();
        assert_eq!(
            sim.delivered()[0].packet.header.identification.raw(),
            predicted
        );
    }

    #[test]
    fn long_paths_overwrite_marks() {
        // Two paths that agree on the last 16 switch-hops produce the
        // same signature even if they differ before that — information
        // loss past 16 hops (§4.3).
        let topo = Topology::mesh2d(12);
        // Build a long snake path of 20+ hops and a suffix-sharing one.
        let mut long_path = Vec::new();
        for x in 0..12 {
            long_path.push(Coord::new(&[x, 0]));
        }
        for y in 1..12 {
            long_path.push(Coord::new(&[11, y]));
        }
        // 22 hops total. A second path sharing the last 17 nodes
        // (16 marking switches + victim).
        let short_path: Vec<Coord> = long_path[long_path.len() - 17..].to_vec();
        let ttl = ddpm_net::ipv4::DEFAULT_TTL;
        let sig_long = DpmScheme::signature_of_path(&topo, &long_path, ttl);
        // The short path's switches see different TTL values (fewer hops
        // consumed); align by starting TTL so the shared suffix lands on
        // the same slots.
        let consumed = (long_path.len() - short_path.len()) as u8;
        let sig_short = DpmScheme::signature_of_path(&topo, &short_path, ttl - consumed);
        assert_eq!(
            sig_long, sig_short,
            "suffix-sharing paths must collide once the prefix is overwritten"
        );
    }

    #[test]
    fn victim_blocklist() {
        let mut v = DpmVictim::new();
        for _ in 0..10 {
            v.observe(MarkingField::new(0xAAAA));
        }
        v.observe(MarkingField::new(0x1111));
        v.block_top(1);
        assert!(v.is_blocked(MarkingField::new(0xAAAA)));
        assert!(!v.is_blocked(MarkingField::new(0x1111)));
        assert_eq!(v.count(0xAAAA), 10);
        assert_eq!(v.distinct_signatures(), 2);
    }
}
