//! Victim-side path reconstruction for the PPM baselines.
//!
//! Given the edge samples a victim has collected, rebuild the attack
//! path(s) leading to it. An edge sample `(start, end, distance)` says
//! the packet crossed `start → end` and then aged `distance` hops before
//! delivery, so:
//!
//! * samples with `distance = 0` end at the victim's switch;
//! * a sample at distance `d+1` chains onto a sample at distance `d`
//!   when its `end` equals the other's `start`.
//!
//! For the XOR variant each mark names a *set* of possible edges
//! ([`crate::ppm::XorPpm::edges_matching`]); the search expands all of
//! them and reports the resulting ambiguity — the §4.2 failure mode
//! ("Any encoding method decreasing the length of the edge
//! identification field will end up increasing the reconstruction
//! ambiguity").

use crate::ppm::{EdgeMark, XorMark};
use ddpm_topology::gray::{gray_label, node_from_gray_label};
use ddpm_topology::{NodeId, Topology};
use std::collections::{HashMap, HashSet};

/// Outcome of a reconstruction run.
#[derive(Clone, Debug, Default)]
pub struct ReconstructionResult {
    /// Maximal reconstructed paths, victim-first (each path is
    /// `victim, …, candidate source`).
    pub paths: Vec<Vec<NodeId>>,
    /// Candidate sources: the far end of each maximal path, deduplicated.
    pub sources: Vec<NodeId>,
    /// Search-tree node expansions performed (ambiguity measure: exact
    /// marks give `O(path length · paths)`, XOR marks explode).
    pub expansions: u64,
    /// True if the expansion budget was exhausted (result truncated).
    pub truncated: bool,
}

impl ReconstructionResult {
    /// True if `source` is among the candidates.
    #[must_use]
    pub fn implicates(&self, source: NodeId) -> bool {
        self.sources.contains(&source)
    }
}

/// Upper bound on search expansions before giving up (ambiguity guard).
pub const DEFAULT_EXPANSION_BUDGET: u64 = 200_000;

/// Reconstructs attack paths from exact edge samples.
///
/// `victim` is the destination node; `marks` the deduplicated samples.
#[must_use]
pub fn reconstruct_paths(
    victim: NodeId,
    marks: &HashSet<EdgeMark>,
    expansion_budget: u64,
) -> ReconstructionResult {
    // Index marks: distance -> end -> starts.
    let mut by_level: HashMap<(u32, NodeId), Vec<NodeId>> = HashMap::new();
    let mut max_d = 0;
    for m in marks {
        by_level
            .entry((m.distance, m.end))
            .or_default()
            .push(m.start);
        max_d = max_d.max(m.distance);
    }
    for starts in by_level.values_mut() {
        starts.sort_unstable();
        starts.dedup();
    }

    let mut result = ReconstructionResult::default();
    let mut stack: Vec<Vec<NodeId>> = vec![vec![victim]];
    while let Some(path) = stack.pop() {
        if result.expansions >= expansion_budget {
            result.truncated = true;
            break;
        }
        result.expansions += 1;
        let depth = (path.len() - 1) as u32;
        let tip = *path.last().expect("non-empty");
        let nexts = by_level.get(&(depth, tip));
        match nexts {
            Some(starts) if depth <= max_d => {
                for &s in starts {
                    if path.contains(&s) {
                        continue; // cycle guard
                    }
                    let mut p = path.clone();
                    p.push(s);
                    stack.push(p);
                }
            }
            _ => {
                if path.len() > 1 {
                    result.paths.push(path);
                }
            }
        }
    }
    finalize(&mut result);
    result
}

/// Reconstructs attack paths from XOR samples, expanding each mark into
/// its candidate edge set. Returns the (usually much larger) candidate
/// path set — the ambiguity §4.2 warns about.
#[must_use]
pub fn reconstruct_paths_xor(
    topo: &Topology,
    victim: NodeId,
    marks: &HashSet<XorMark>,
    expansion_budget: u64,
) -> ReconstructionResult {
    // Index: distance -> xor values observed at that distance.
    let mut by_dist: HashMap<u32, Vec<u32>> = HashMap::new();
    let mut max_d = 0;
    for m in marks {
        by_dist.entry(m.distance).or_default().push(m.xor);
        max_d = max_d.max(m.distance);
    }
    for v in by_dist.values_mut() {
        v.sort_unstable();
        v.dedup();
    }

    let mut result = ReconstructionResult::default();
    let mut stack: Vec<Vec<NodeId>> = vec![vec![victim]];
    while let Some(path) = stack.pop() {
        if result.expansions >= expansion_budget {
            result.truncated = true;
            break;
        }
        result.expansions += 1;
        let depth = (path.len() - 1) as u32;
        let tip = *path.last().expect("non-empty");
        let tip_label = gray_label(topo, &topo.coord(tip));
        let mut extended = false;
        if depth <= max_d {
            if let Some(values) = by_dist.get(&depth) {
                for &value in values {
                    // The mark says: some edge with this XOR was crossed,
                    // ending `depth` hops above the victim. It chains here
                    // only if one endpoint is `tip`; the other endpoint is
                    // tip_label ^ value.
                    let other = tip_label ^ value;
                    let Some(node) = node_from_gray_label(topo, other) else {
                        continue;
                    };
                    // Must be a physical link.
                    if topo.min_hops(&topo.coord(tip), &node) != 1 {
                        continue;
                    }
                    let id = topo.index(&node);
                    if path.contains(&id) {
                        continue;
                    }
                    let mut p = path.clone();
                    p.push(id);
                    stack.push(p);
                    extended = true;
                }
            }
        }
        if !extended && path.len() > 1 {
            result.paths.push(path);
        }
    }
    finalize(&mut result);
    result
}

fn finalize(result: &mut ReconstructionResult) {
    result.paths.sort();
    result.paths.dedup();
    let mut sources: Vec<NodeId> = result
        .paths
        .iter()
        .filter_map(|p| p.last().copied())
        .collect();
    sources.sort_unstable();
    sources.dedup();
    result.sources = sources;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ppm::EdgePpm;
    use ddpm_topology::gray::node_from_gray_label;
    use ddpm_topology::Coord;

    fn mesh4() -> Topology {
        Topology::mesh2d(4)
    }

    fn marks_for_paths(topo: &Topology, paths: &[Vec<Coord>]) -> HashSet<EdgeMark> {
        paths
            .iter()
            .flat_map(|p| EdgePpm::enumerate_marks(topo, p))
            .collect()
    }

    #[test]
    fn single_path_reconstructed_exactly() {
        let topo = mesh4();
        let path = vec![
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[2, 1]),
        ];
        let victim = topo.index(&path[3]);
        let marks = marks_for_paths(&topo, std::slice::from_ref(&path));
        let r = reconstruct_paths(victim, &marks, DEFAULT_EXPANSION_BUDGET);
        assert_eq!(r.paths.len(), 1);
        let want: Vec<NodeId> = path.iter().rev().map(|c| topo.index(c)).collect();
        assert_eq!(r.paths[0], want);
        assert_eq!(r.sources, vec![topo.index(&path[0])]);
        assert!(!r.truncated);
    }

    #[test]
    fn paper_fig3a_two_paths_not_ambiguous() {
        // "It is not ambiguous to reconstruct two distinct paths." (§4.2)
        let topo = mesh4();
        let to_path = |labels: &[u32]| -> Vec<Coord> {
            labels
                .iter()
                .map(|&l| node_from_gray_label(&topo, l).unwrap())
                .collect()
        };
        let p1 = to_path(&[0b0001, 0b0011, 0b0010, 0b0110, 0b1110]);
        let p2 = to_path(&[0b0101, 0b0111, 0b0110, 0b1110]);
        let victim = topo.index(&p1[4]);
        let marks = marks_for_paths(&topo, &[p1.clone(), p2.clone()]);
        let r = reconstruct_paths(victim, &marks, DEFAULT_EXPANSION_BUDGET);
        assert!(r.implicates(topo.index(&p1[0])), "source 0001 found");
        assert!(r.implicates(topo.index(&p2[0])), "source 0101 found");
        assert_eq!(r.sources.len(), 2, "exactly the two true sources");
    }

    #[test]
    fn missing_level_truncates_path() {
        // Without the distance-1 mark the chain stops early: the victim
        // sees only a partial path (under-collection — why PPM needs many
        // packets).
        let topo = mesh4();
        let path = vec![
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[3, 0]),
        ];
        let victim = topo.index(&path[3]);
        let mut marks = marks_for_paths(&topo, std::slice::from_ref(&path));
        marks.retain(|m| m.distance != 1);
        let r = reconstruct_paths(victim, &marks, DEFAULT_EXPANSION_BUDGET);
        // Only the distance-0 edge survives; the reconstructed "source"
        // is the switch one hop out.
        assert_eq!(r.sources, vec![topo.index(&path[2])]);
    }

    #[test]
    fn expansion_budget_truncates() {
        let topo = mesh4();
        let path = vec![
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[3, 0]),
        ];
        let victim = topo.index(&path[3]);
        let marks = marks_for_paths(&topo, &[path]);
        let r = reconstruct_paths(victim, &marks, 2);
        assert!(r.truncated);
    }

    #[test]
    fn xor_reconstruction_is_ambiguous() {
        // Two perpendicular attack paths converging on (4,4). The XOR
        // marks of both mingle at every distance level, and since each
        // one-hot value chains from any node (the §4.2 ambiguity: "one
        // XOR value is mapped into average n(n−1)/log n edges"), the
        // reconstruction grows false branches beyond the two true
        // sources.
        let topo = Topology::mesh2d(8);
        let east: Vec<Coord> = (0..=4).map(|x| Coord::new(&[x, 4])).collect();
        let north: Vec<Coord> = (0..=4).map(|y| Coord::new(&[4, y])).collect();
        let victim = topo.index(&Coord::new(&[4, 4]));
        let mut marks: HashSet<XorMark> = HashSet::new();
        for path in [&east, &north] {
            let h = path.len() - 1;
            for i in 0..h {
                marks.insert(XorMark {
                    xor: gray_label(&topo, &path[i]) ^ gray_label(&topo, &path[i + 1]),
                    distance: (h - i - 1) as u32,
                });
            }
        }
        let r = reconstruct_paths_xor(&topo, victim, &marks, DEFAULT_EXPANSION_BUDGET);
        assert!(
            r.implicates(topo.index(&east[0])),
            "true source (0,4) must be a candidate"
        );
        assert!(
            r.implicates(topo.index(&north[0])),
            "true source (4,0) must be a candidate"
        );
        assert!(
            r.sources.len() > 2,
            "XOR marks must implicate innocents too, got {:?}",
            r.sources
        );

        // Exact edge marks on the same two paths are NOT ambiguous —
        // the contrast §4.2 draws with the full two-index scheme.
        let exact: HashSet<crate::ppm::EdgeMark> = [&east, &north]
            .iter()
            .flat_map(|p| crate::ppm::EdgePpm::enumerate_marks(&topo, p))
            .collect();
        let re = reconstruct_paths(victim, &exact, DEFAULT_EXPANSION_BUDGET);
        assert_eq!(re.sources.len(), 2);
    }

    #[test]
    fn empty_marks_give_empty_result() {
        let r = reconstruct_paths(NodeId(0), &HashSet::new(), 1000);
        assert!(r.paths.is_empty());
        assert!(r.sources.is_empty());
    }
}
