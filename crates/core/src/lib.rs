//! Packet-marking traceback for cluster interconnects.
//!
//! This crate is the reproduction of the paper's contribution and its
//! baselines:
//!
//! * [`ddpm`] — **Deterministic Distance Packet Marking** (§5, Fig. 4):
//!   every switch adds the hop displacement into the marking field; the
//!   victim identifies the true source from a **single packet**,
//!   independent of the (possibly adaptive, possibly non-minimal) route.
//! * [`ppm`] — Savage-style Probabilistic Packet Marking adapted to
//!   direct networks (§4.2): the simple two-index edge scheme of
//!   Fig. 3(a), the XOR variant, and the bit-difference variant.
//! * [`dpm`] — deterministic 1-bit-per-hop marking keyed by
//!   `TTL mod 16` (§4.3, after Yaar et al.'s Pi).
//! * [`reconstruct`] — the victim-side path reconstruction PPM needs,
//!   with explicit ambiguity accounting.
//! * [`identify`] — victim-side source identification front-ends and
//!   accuracy scoring against ground truth.
//! * [`tracemax`] — a Tracemax-style full-path recorder (arXiv
//!   2004.09327 lineage), a deterministic per-packet baseline whose cost
//!   scales with path length instead of node count.
//! * [`scheme`] — the [`ddpm_sim::MarkingScheme`] plugin
//!   implementations for every scheme above plus the
//!   [`scheme::build_scheme`] factory the scenario loader and the
//!   bake-off use.
//! * [`filter`] — mitigation: quarantine and signature filters that plug
//!   into the simulator ("we can protect our system by blocking packets
//!   from that source", §2).
//! * [`analysis`] — the closed-form scalability analysis behind
//!   Tables 1–3 and the PPM convergence bound.
//!
//! Extensions built from the paper's discussion sections:
//!
//! * [`fms`] — Savage's k-fragment compressed PPM (§2's quoted bound);
//! * [`ams`] — Song & Perrig's map-based advanced marking (§2 ref \[17\]);
//! * [`auth`] — the generic [`auth::Authenticated`] keyed-tag wrapper
//!   (`auth-*` scheme variants) for the compromised-switch threat the
//!   paper raises in §4.1.

#![warn(missing_docs)]

pub mod ams;
pub mod analysis;
pub mod auth;
pub mod ddpm;
pub mod dpm;
pub mod filter;
pub mod fms;
pub mod identify;
pub mod ppm;
pub mod reconstruct;
pub mod scheme;
pub mod tracemax;

pub use ams::{reconstruct_ams, AmsMark, AmsScheme};
pub use auth::{prf, AuthError, Authenticated, MAX_TAG_BITS, MIN_TAG_BITS};
pub use ddpm::DdpmScheme;
pub use dpm::{DpmScheme, DpmVictim};
pub use fms::{reconstruct_fms, FmsMark, FmsScheme};
pub use ppm::{BitDiffPpm, EdgeMark, EdgePpm, PpmLayout, XorPpm};
pub use reconstruct::{reconstruct_paths, ReconstructionResult};
pub use scheme::{build_scheme, build_scheme_with, DEFAULT_PPM_P};
pub use tracemax::{TracemaxError, TracemaxScheme};
