//! Probabilistic Packet Marking (PPM) adapted to direct networks.
//!
//! Section 4.2 of the paper walks through three ways of squeezing
//! Savage-style edge samples into the 16-bit MF of a direct network, and
//! shows each fails to scale (Tables 1 and 2) and breaks under adaptive
//! routing. All three are implemented here as faithful baselines:
//!
//! * [`EdgePpm`] — the "simple marking scheme" of Fig. 3(a): the MF
//!   holds two node indices (edge start/end) plus a distance field.
//!   "Each switch randomly selects a packet, writes its own index and
//!   sets the distance to zero. When the next switch finds out a zero in
//!   the distance field, it writes its index next to the previous
//!   switch's index, and then increments the distance."
//! * [`XorPpm`] — "instead of storing two indexes of neighboring nodes,
//!   switches write an XOR value of two nodes' indexes", halving the
//!   space but introducing reconstruction ambiguity (§4.2's
//!   `n(n−1)/log n` edges per value).
//! * [`BitDiffPpm`] — "this scheme stores one index and a bit difference
//!   position as well as distance", removing the XOR ambiguity at the
//!   cost of a wider field (Table 2).
//!
//! The XOR and bit-difference variants rely on physically adjacent nodes
//! having labels that differ in exactly one bit ("Since there is only
//! one bit difference between neighboring nodes", §4.2) — true for the
//! **Gray-coded** labels of Fig. 3(a), which `ddpm_topology::gray`
//! provides. They therefore require power-of-two radices.
//!
//! ## Implementation note: state flags
//!
//! The paper's marking automaton needs to distinguish (a) packets never
//! marked, and (b) marks whose `end` half is still pending. Real indices
//! occupy the whole value space, so we spend two MF bits on explicit
//! `marked`/`fresh` flags. The Table 1/2 *analysis* (in
//! [`crate::analysis`]) follows the paper and counts only the index and
//! distance bits; the two flag bits only tighten the (already failing)
//! scalability of the PPM baselines.

use ddpm_net::{MarkingField, Packet, MF_BITS};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::gray::{gray_label, gray_label_bits};
use ddpm_topology::{Coord, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use std::fmt;

pub use ddpm_net::marking_field::MF_BITS as MARKING_BITS;

/// Errors from building a PPM layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PpmError {
    /// The topology's marks do not fit the 16-bit MF — the Table 1/2
    /// scalability wall.
    FieldTooSmall {
        /// Bits the layout would need.
        needed: u32,
    },
    /// XOR / bit-difference marking needs power-of-two radices so that
    /// Gray-adjacent labels differ in exactly one bit.
    NonPowerOfTwoRadix {
        /// Offending dimension.
        dim: usize,
        /// Its radix.
        radix: u16,
    },
}

impl fmt::Display for PpmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpmError::FieldTooSmall { needed } => {
                write!(f, "PPM layout needs {needed} bits, MF has {MF_BITS}")
            }
            PpmError::NonPowerOfTwoRadix { dim, radix } => {
                write!(f, "radix {radix} in dimension {dim} is not a power of two")
            }
        }
    }
}

impl std::error::Error for PpmError {}

/// Bit budget of a marking-field layout.
///
/// LSB-first layout: `[marked:1][fresh:1][distance][payload…]`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PpmLayout {
    /// Bits for one node index/label.
    pub index_bits: u32,
    /// Bits for the distance counter.
    pub dist_bits: u32,
}

const FLAG_MARKED: u32 = 0;
const FLAG_FRESH: u32 = 1;
const FLAGS: u32 = 2;

impl PpmLayout {
    /// Distance bits needed for `topo`: the counter must count up to the
    /// diameter.
    fn dist_bits_for(topo: &Topology) -> u32 {
        crate::analysis::ceil_log2(u64::from(topo.diameter()) + 1).max(1)
    }

    /// Index bits for `topo` (binary/Gray label width).
    fn index_bits_for(topo: &Topology) -> u32 {
        crate::analysis::ceil_log2(topo.num_nodes()).max(1)
    }

    fn offset_dist(&self) -> u32 {
        FLAGS
    }

    fn offset_payload(&self) -> u32 {
        FLAGS + self.dist_bits
    }

    fn max_distance(&self) -> u16 {
        ((1u32 << self.dist_bits) - 1) as u16
    }
}

/// One collected edge sample: the link `start → end`, observed
/// `distance` hops (of ageing) before delivery.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EdgeMark {
    /// Upstream end of the sampled link.
    pub start: NodeId,
    /// Downstream end of the sampled link.
    pub end: NodeId,
    /// Hops of ageing after `end` was written.
    pub distance: u32,
}

impl fmt::Display for EdgeMark {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.start.0, self.end.0, self.distance)
    }
}

// ---------------------------------------------------------------------
// Simple edge PPM (Fig. 3(a))
// ---------------------------------------------------------------------

/// The simple two-index edge-sampling scheme of §4.2 / Fig. 3(a).
#[derive(Clone, Debug)]
pub struct EdgePpm {
    layout: PpmLayout,
    /// Marking probability `p`.
    pub p: f64,
}

impl EdgePpm {
    /// Builds the scheme for `topo` with marking probability `p`.
    ///
    /// # Errors
    /// [`PpmError::FieldTooSmall`] when `2·index + distance + 2 flag`
    /// bits exceed the MF — Table 1's wall.
    pub fn new(topo: &Topology, p: f64) -> Result<Self, PpmError> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        let layout = PpmLayout {
            index_bits: PpmLayout::index_bits_for(topo),
            dist_bits: PpmLayout::dist_bits_for(topo),
        };
        let needed = 2 * layout.index_bits + layout.dist_bits + FLAGS;
        if needed > MF_BITS {
            return Err(PpmError::FieldTooSmall { needed });
        }
        Ok(Self { layout, p })
    }

    /// The bit layout in use.
    #[must_use]
    pub fn layout(&self) -> &PpmLayout {
        &self.layout
    }

    /// Total MF bits the layout occupies (two indices, distance, flags).
    #[must_use]
    pub fn bits_used(&self) -> u32 {
        2 * self.layout.index_bits + self.layout.dist_bits + FLAGS
    }

    fn offset_end(&self) -> u32 {
        self.layout.offset_payload()
    }

    fn offset_start(&self) -> u32 {
        self.layout.offset_payload() + self.layout.index_bits
    }

    /// The marking automaton executed by one switch on one packet.
    /// `mark_here` is the probabilistic coin (None at the destination
    /// switch, which never originates marks — Fig. 3(a)'s victim switch
    /// only completes or ages them).
    fn step(&self, mf: &mut MarkingField, cur: NodeId, mark_here: bool) {
        if mark_here {
            mf.set_bits(self.offset_start(), self.layout.index_bits, cur.0 as u16);
            mf.set_bits(self.offset_end(), self.layout.index_bits, 0);
            mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, 0);
            mf.set_bit(FLAG_MARKED, true);
            mf.set_bit(FLAG_FRESH, true);
        } else if mf.get_bit(FLAG_MARKED) {
            if mf.get_bit(FLAG_FRESH) {
                mf.set_bits(self.offset_end(), self.layout.index_bits, cur.0 as u16);
                mf.set_bit(FLAG_FRESH, false);
            } else {
                let d = mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits);
                if d < self.layout.max_distance() {
                    mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, d + 1);
                }
            }
        }
    }

    /// Victim-side extraction of a completed edge sample.
    #[must_use]
    pub fn extract(&self, mf: MarkingField) -> Option<EdgeMark> {
        if !mf.get_bit(FLAG_MARKED) || mf.get_bit(FLAG_FRESH) {
            return None;
        }
        Some(EdgeMark {
            start: NodeId(u32::from(
                mf.get_bits(self.offset_start(), self.layout.index_bits),
            )),
            end: NodeId(u32::from(
                mf.get_bits(self.offset_end(), self.layout.index_bits),
            )),
            distance: u32::from(mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits)),
        })
    }

    /// Deterministically enumerates every edge mark a path can produce —
    /// one per possible marking switch. Reproduces the Fig. 3(a) tuple
    /// lists exactly (experiment `fig3a`).
    #[must_use]
    pub fn enumerate_marks(topo: &Topology, path: &[Coord]) -> Vec<EdgeMark> {
        let h = path.len().saturating_sub(1);
        (0..h)
            .map(|i| EdgeMark {
                start: topo.index(&path[i]),
                end: topo.index(&path[i + 1]),
                distance: (h - i - 1) as u32,
            })
            .collect()
    }
}

impl Marker for EdgePpm {
    fn name(&self) -> &'static str {
        "ppm-edge"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let mark = rng.gen_bool(self.p);
        self.step(&mut pkt.header.identification, env.topo.index(cur), mark);
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, _rng: &mut SmallRng) {
        // The destination switch completes or ages marks but never
        // originates one (matches the Fig. 3(a) enumeration).
        self.step(&mut pkt.header.identification, env.topo.index(dest), false);
    }
}

// ---------------------------------------------------------------------
// XOR PPM
// ---------------------------------------------------------------------

/// An XOR edge sample: the XOR of the Gray labels of the two endpoints,
/// plus the ageing distance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct XorMark {
    /// XOR of the Gray labels of the two endpoints.
    pub xor: u32,
    /// Hops of ageing after the edge completed.
    pub distance: u32,
}

/// The XOR variant of §4.2.
#[derive(Clone, Debug)]
pub struct XorPpm {
    layout: PpmLayout,
    /// Marking probability `p`.
    pub p: f64,
}

fn require_power_of_two(topo: &Topology) -> Result<(), PpmError> {
    for (dim, &k) in topo.dims().iter().enumerate() {
        if !k.is_power_of_two() {
            return Err(PpmError::NonPowerOfTwoRadix { dim, radix: k });
        }
    }
    Ok(())
}

impl XorPpm {
    /// Builds the scheme.
    ///
    /// # Errors
    /// [`PpmError::FieldTooSmall`] or [`PpmError::NonPowerOfTwoRadix`].
    pub fn new(topo: &Topology, p: f64) -> Result<Self, PpmError> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        require_power_of_two(topo)?;
        let layout = PpmLayout {
            index_bits: gray_label_bits(topo),
            dist_bits: PpmLayout::dist_bits_for(topo),
        };
        let needed = layout.index_bits + layout.dist_bits + FLAGS;
        if needed > MF_BITS {
            return Err(PpmError::FieldTooSmall { needed });
        }
        Ok(Self { layout, p })
    }

    /// Total MF bits the layout occupies (XOR value, distance, flags).
    #[must_use]
    pub fn bits_used(&self) -> u32 {
        self.layout.index_bits + self.layout.dist_bits + FLAGS
    }

    fn offset_xor(&self) -> u32 {
        self.layout.offset_payload()
    }

    fn step(&self, mf: &mut MarkingField, label: u32, mark_here: bool) {
        if mark_here {
            mf.set_bits(self.offset_xor(), self.layout.index_bits, label as u16);
            mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, 0);
            mf.set_bit(FLAG_MARKED, true);
            mf.set_bit(FLAG_FRESH, true);
        } else if mf.get_bit(FLAG_MARKED) {
            if mf.get_bit(FLAG_FRESH) {
                let prev = mf.get_bits(self.offset_xor(), self.layout.index_bits);
                mf.set_bits(
                    self.offset_xor(),
                    self.layout.index_bits,
                    prev ^ (label as u16),
                );
                mf.set_bit(FLAG_FRESH, false);
            } else {
                let d = mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits);
                if d < self.layout.max_distance() {
                    mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, d + 1);
                }
            }
        }
    }

    /// Victim-side extraction.
    #[must_use]
    pub fn extract(&self, mf: MarkingField) -> Option<XorMark> {
        if !mf.get_bit(FLAG_MARKED) || mf.get_bit(FLAG_FRESH) {
            return None;
        }
        Some(XorMark {
            xor: u32::from(mf.get_bits(self.offset_xor(), self.layout.index_bits)),
            distance: u32::from(mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits)),
        })
    }

    /// All physical edges whose endpoint labels XOR to `value` — the
    /// reconstruction ambiguity set. §4.2: "one XOR value is mapped into
    /// average n(n−1)/log n edges".
    #[must_use]
    pub fn edges_matching(topo: &Topology, value: u32) -> Vec<(Coord, Coord)> {
        let mut out = Vec::new();
        for a in topo.all_nodes() {
            let la = gray_label(topo, &a);
            for (_, b) in topo.neighbors(&a) {
                if topo.index(&a) < topo.index(&b) && la ^ gray_label(topo, &b) == value {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

impl Marker for XorPpm {
    fn name(&self) -> &'static str {
        "ppm-xor"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let mark = rng.gen_bool(self.p);
        self.step(
            &mut pkt.header.identification,
            gray_label(env.topo, cur),
            mark,
        );
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, _rng: &mut SmallRng) {
        self.step(
            &mut pkt.header.identification,
            gray_label(env.topo, dest),
            false,
        );
    }
}

// ---------------------------------------------------------------------
// Bit-difference PPM
// ---------------------------------------------------------------------

/// A bit-difference edge sample: one endpoint label, the bit position in
/// which the other endpoint differs, and the ageing distance.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct BitDiffMark {
    /// Gray label of the upstream endpoint.
    pub start_label: u32,
    /// Bit in which the downstream endpoint differs.
    pub bit_pos: u32,
    /// Hops of ageing after the edge completed.
    pub distance: u32,
}

impl BitDiffMark {
    /// The unambiguous edge this mark names, as Gray labels.
    #[must_use]
    pub fn edge_labels(&self) -> (u32, u32) {
        (self.start_label, self.start_label ^ (1 << self.bit_pos))
    }
}

/// The bit-difference variant of §4.2 (Table 2).
#[derive(Clone, Debug)]
pub struct BitDiffPpm {
    layout: PpmLayout,
    pos_bits: u32,
    /// Marking probability `p`.
    pub p: f64,
}

impl BitDiffPpm {
    /// Builds the scheme.
    ///
    /// # Errors
    /// [`PpmError::FieldTooSmall`] or [`PpmError::NonPowerOfTwoRadix`].
    pub fn new(topo: &Topology, p: f64) -> Result<Self, PpmError> {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        require_power_of_two(topo)?;
        let index_bits = gray_label_bits(topo);
        let layout = PpmLayout {
            index_bits,
            dist_bits: PpmLayout::dist_bits_for(topo),
        };
        let pos_bits = crate::analysis::ceil_log2(u64::from(index_bits)).max(1);
        let needed = index_bits + pos_bits + layout.dist_bits + FLAGS;
        if needed > MF_BITS {
            return Err(PpmError::FieldTooSmall { needed });
        }
        Ok(Self {
            layout,
            pos_bits,
            p,
        })
    }

    fn offset_pos(&self) -> u32 {
        self.layout.offset_payload()
    }

    fn offset_start(&self) -> u32 {
        self.layout.offset_payload() + self.pos_bits
    }

    fn step(&self, mf: &mut MarkingField, label: u32, mark_here: bool) {
        if mark_here {
            mf.set_bits(self.offset_start(), self.layout.index_bits, label as u16);
            mf.set_bits(self.offset_pos(), self.pos_bits, 0);
            mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, 0);
            mf.set_bit(FLAG_MARKED, true);
            mf.set_bit(FLAG_FRESH, true);
        } else if mf.get_bit(FLAG_MARKED) {
            if mf.get_bit(FLAG_FRESH) {
                let start = u32::from(mf.get_bits(self.offset_start(), self.layout.index_bits));
                let diff = start ^ label;
                // Gray-adjacent labels differ in exactly one bit.
                debug_assert_eq!(diff.count_ones(), 1, "non-Gray-adjacent hop");
                mf.set_bits(
                    self.offset_pos(),
                    self.pos_bits,
                    diff.trailing_zeros() as u16,
                );
                mf.set_bit(FLAG_FRESH, false);
            } else {
                let d = mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits);
                if d < self.layout.max_distance() {
                    mf.set_bits(self.layout.offset_dist(), self.layout.dist_bits, d + 1);
                }
            }
        }
    }

    /// Victim-side extraction.
    #[must_use]
    pub fn extract(&self, mf: MarkingField) -> Option<BitDiffMark> {
        if !mf.get_bit(FLAG_MARKED) || mf.get_bit(FLAG_FRESH) {
            return None;
        }
        Some(BitDiffMark {
            start_label: u32::from(mf.get_bits(self.offset_start(), self.layout.index_bits)),
            bit_pos: u32::from(mf.get_bits(self.offset_pos(), self.pos_bits)),
            distance: u32::from(mf.get_bits(self.layout.offset_dist(), self.layout.dist_bits)),
        })
    }
}

impl Marker for BitDiffPpm {
    fn name(&self) -> &'static str {
        "ppm-bitdiff"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let mark = rng.gen_bool(self.p);
        self.step(
            &mut pkt.header.identification,
            gray_label(env.topo, cur),
            mark,
        );
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, _rng: &mut SmallRng) {
        self.step(
            &mut pkt.header.identification,
            gray_label(env.topo, dest),
            false,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_topology::gray::node_from_gray_label;

    fn mesh4() -> Topology {
        Topology::mesh2d(4)
    }

    #[test]
    fn fig3a_enumerated_marks_match_paper_path1() {
        // Path 0001→0011→0010→0110→1110 yields marks
        // (0001,0011,3), (0011,0010,2), (0010,0110,1), (0110,1110,0).
        let topo = mesh4();
        let labels = [0b0001u32, 0b0011, 0b0010, 0b0110, 0b1110];
        let path: Vec<Coord> = labels
            .iter()
            .map(|&l| node_from_gray_label(&topo, l).unwrap())
            .collect();
        let marks = EdgePpm::enumerate_marks(&topo, &path);
        let as_label_tuples: Vec<(u32, u32, u32)> = marks
            .iter()
            .map(|m| {
                (
                    gray_label(&topo, &topo.coord(m.start)),
                    gray_label(&topo, &topo.coord(m.end)),
                    m.distance,
                )
            })
            .collect();
        assert_eq!(
            as_label_tuples,
            vec![
                (0b0001, 0b0011, 3),
                (0b0011, 0b0010, 2),
                (0b0010, 0b0110, 1),
                (0b0110, 0b1110, 0),
            ]
        );
    }

    #[test]
    fn fig3a_enumerated_marks_match_paper_path2() {
        // Path 0101→0111→0110→1110 yields (0101,0111,2), (0111,0110,1),
        // (0110,1110,0).
        let topo = mesh4();
        let labels = [0b0101u32, 0b0111, 0b0110, 0b1110];
        let path: Vec<Coord> = labels
            .iter()
            .map(|&l| node_from_gray_label(&topo, l).unwrap())
            .collect();
        let marks = EdgePpm::enumerate_marks(&topo, &path);
        let tuples: Vec<(u32, u32, u32)> = marks
            .iter()
            .map(|m| {
                (
                    gray_label(&topo, &topo.coord(m.start)),
                    gray_label(&topo, &topo.coord(m.end)),
                    m.distance,
                )
            })
            .collect();
        assert_eq!(
            tuples,
            vec![
                (0b0101, 0b0111, 2),
                (0b0111, 0b0110, 1),
                (0b0110, 0b1110, 0)
            ]
        );
    }

    #[test]
    fn edge_ppm_automaton_produces_enumerated_mark() {
        // Force a mark at hop 0 of a 3-hop path and check the automaton
        // ends with the same tuple the enumerator predicts.
        let topo = mesh4();
        let scheme = EdgePpm::new(&topo, 0.5).unwrap();
        let path = [
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[3, 0]),
        ];
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, topo.index(&path[0]), true); // mark at first switch
        scheme.step(&mut mf, topo.index(&path[1]), false);
        scheme.step(&mut mf, topo.index(&path[2]), false);
        scheme.step(&mut mf, topo.index(&path[3]), false); // victim switch
        let got = scheme.extract(mf).unwrap();
        let want = EdgePpm::enumerate_marks(&topo, &path)[0];
        assert_eq!(got, want);
    }

    #[test]
    fn unmarked_and_fresh_fields_extract_none() {
        let topo = mesh4();
        let scheme = EdgePpm::new(&topo, 0.5).unwrap();
        assert_eq!(scheme.extract(MarkingField::zero()), None);
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, NodeId(5), true); // fresh, end pending
        assert_eq!(scheme.extract(mf), None);
    }

    #[test]
    fn remarking_overwrites_previous_edge() {
        let topo = mesh4();
        let scheme = EdgePpm::new(&topo, 0.5).unwrap();
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, NodeId(1), true);
        scheme.step(&mut mf, NodeId(2), false);
        scheme.step(&mut mf, NodeId(3), true); // re-mark downstream
        scheme.step(&mut mf, NodeId(4), false);
        let got = scheme.extract(mf).unwrap();
        assert_eq!(
            got,
            EdgeMark {
                start: NodeId(3),
                end: NodeId(4),
                distance: 0
            }
        );
    }

    #[test]
    fn distance_saturates_at_field_max() {
        let topo = mesh4();
        let scheme = EdgePpm::new(&topo, 0.5).unwrap();
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, NodeId(0), true);
        scheme.step(&mut mf, NodeId(1), false);
        for _ in 0..100 {
            scheme.step(&mut mf, NodeId(2), false);
        }
        let m = scheme.extract(mf).unwrap();
        assert_eq!(m.distance, u32::from(scheme.layout.max_distance()));
    }

    #[test]
    fn table1_wall_simple_ppm() {
        // 8×8 fits the paper's 16 bits but not our flagged layout; the
        // largest flagged square mesh is 5×5 (2·5 + 4 + 2 = 16).
        assert!(EdgePpm::new(&Topology::mesh2d(5), 0.1).is_ok());
        assert!(matches!(
            EdgePpm::new(&Topology::mesh2d(16), 0.1),
            Err(PpmError::FieldTooSmall { .. })
        ));
    }

    #[test]
    fn xor_marks_are_one_hot_for_gray_adjacent_hops() {
        let topo = mesh4();
        let scheme = XorPpm::new(&topo, 0.5).unwrap();
        for a in topo.all_nodes() {
            for (_, b) in topo.neighbors(&a) {
                let mut mf = MarkingField::zero();
                scheme.step(&mut mf, gray_label(&topo, &a), true);
                scheme.step(&mut mf, gray_label(&topo, &b), false);
                let m = scheme.extract(mf).unwrap();
                assert_eq!(m.xor.count_ones(), 1, "edge {a}-{b} xor {:b}", m.xor);
            }
        }
    }

    #[test]
    fn xor_ambiguity_many_edges_per_value() {
        // §4.2: every one-hot XOR value names many physical edges.
        let topo = Topology::mesh2d(8);
        for bit in 0..6 {
            let edges = XorPpm::edges_matching(&topo, 1 << bit);
            assert!(
                edges.len() > 1,
                "bit {bit}: expected ambiguity, got {} edge(s)",
                edges.len()
            );
        }
    }

    #[test]
    fn bitdiff_mark_names_unique_edge() {
        let topo = mesh4();
        let scheme = BitDiffPpm::new(&topo, 0.5).unwrap();
        let a = Coord::new(&[1, 2]);
        let b = Coord::new(&[1, 3]);
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, gray_label(&topo, &a), true);
        scheme.step(&mut mf, gray_label(&topo, &b), false);
        let m = scheme.extract(mf).unwrap();
        let (l1, l2) = m.edge_labels();
        assert_eq!(l1, gray_label(&topo, &a));
        assert_eq!(l2, gray_label(&topo, &b));
    }

    #[test]
    fn non_power_of_two_rejected_for_label_schemes() {
        let topo = Topology::mesh(&[3, 4]);
        assert!(matches!(
            XorPpm::new(&topo, 0.1),
            Err(PpmError::NonPowerOfTwoRadix { dim: 0, radix: 3 })
        ));
        assert!(matches!(
            BitDiffPpm::new(&topo, 0.1),
            Err(PpmError::NonPowerOfTwoRadix { .. })
        ));
    }

    #[test]
    fn table2_wall_bitdiff() {
        // Flagged layout: labels 8 + pos 3 + dist 5 + flags 2 = 18 > 16
        // for 16×16; 8×8 fits (6 + 3 + 4 + 2 = 15).
        assert!(BitDiffPpm::new(&Topology::mesh2d(8), 0.1).is_ok());
        assert!(matches!(
            BitDiffPpm::new(&Topology::mesh2d(16), 0.1),
            Err(PpmError::FieldTooSmall { .. })
        ));
    }
}
