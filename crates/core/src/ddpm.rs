//! Deterministic Distance Packet Marking — the paper's contribution.
//!
//! Fig. 4 of the paper, executed by every switch:
//!
//! ```text
//! if X = D then V := Extract_MF(); S := X ⊖ V; endif   (victim side)
//! Y := Routing(V);                                     (pick next hop)
//! V := Extract_MF(); Δ := Y − X; V' := V + Δ;          (accumulate)
//! Store_MF(V');                                        (rewrite header)
//! ```
//!
//! plus the injection rule: "For each packet, V is set to a zero vector
//! when the packet first enters a switch from a computing node." Because
//! the *switch* performs the reset, an attacker that pre-loads a forged
//! distance vector in the Identification field gains nothing.
//!
//! The per-switch work is one extract, one add (or XOR), one store —
//! "a switch performs only simple functions such as addition,
//! subtraction, and XOR, so we expect they would not affect overall
//! performance" (§6.2). The `marking` Criterion bench measures this.

use ddpm_net::{CodecError, CodecMode, DistanceCodec, Packet};
use ddpm_sim::{Attribution, MarkEnv, Marker};
use ddpm_topology::{Coord, NodeId, Topology};
use rand::rngs::SmallRng;

/// The DDPM scheme: switch-side marking plus victim-side identification.
#[derive(Clone, Debug)]
pub struct DdpmScheme {
    codec: DistanceCodec,
    ndims: usize,
}

impl DdpmScheme {
    /// Builds DDPM for `topo` using the paper's signed packing
    /// convention (Table 3).
    ///
    /// # Errors
    /// [`CodecError::FieldTooSmall`] when the topology exceeds the
    /// 16-bit marking field — the Table 3 scalability boundary.
    pub fn new(topo: &Topology) -> Result<Self, CodecError> {
        Self::with_mode(topo, CodecMode::Signed)
    }

    /// Builds DDPM with an explicit [`CodecMode`] (the `Residue` mode is
    /// the documented capacity extension).
    pub fn with_mode(topo: &Topology, mode: CodecMode) -> Result<Self, CodecError> {
        Ok(Self {
            codec: DistanceCodec::for_topology(topo, mode)?,
            ndims: topo.ndims(),
        })
    }

    /// The marking-field layout in use.
    #[must_use]
    pub fn codec(&self) -> &DistanceCodec {
        &self.codec
    }

    /// Victim-side identification from a **single packet**: given the
    /// destination coordinate and the received marking field, returns
    /// the coordinate of the switch that injected the packet.
    ///
    /// "The victim needs only one packet to identify the source." (§1)
    #[must_use]
    pub fn identify(
        &self,
        topo: &Topology,
        dest: &Coord,
        mf: ddpm_net::MarkingField,
    ) -> Option<Coord> {
        self.codec.recover_source(topo, dest, mf)
    }

    /// Victim-side identification in the shared [`Attribution`] shape:
    /// DDPM answers from a single packet, so the result is either a
    /// singleton candidate set with full confidence or the empty
    /// attribution (out-of-range vector — tampered or corrupted).
    #[must_use]
    pub fn attribute(
        &self,
        topo: &Topology,
        dest: &Coord,
        mf: ddpm_net::MarkingField,
    ) -> Attribution {
        match self.identify(topo, dest, mf) {
            Some(src) => Attribution::exact(topo.index(&src)),
            None => Attribution::none(),
        }
    }

    /// Convenience: identification returning a dense node id.
    #[deprecated(
        since = "0.1.0",
        note = "use `attribute`, which returns the shared `Attribution` type"
    )]
    #[must_use]
    pub fn identify_node(
        &self,
        topo: &Topology,
        dest: &Coord,
        mf: ddpm_net::MarkingField,
    ) -> Option<NodeId> {
        self.identify(topo, dest, mf).map(|c| topo.index(&c))
    }
}

impl Marker for DdpmScheme {
    fn name(&self) -> &'static str {
        "ddpm"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        // Zero vector, encoded. (Encoding zero always succeeds.)
        let zero = Coord::zero(self.ndims);
        pkt.header.identification = self
            .codec
            .encode(&zero)
            .expect("zero vector always encodes");
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
        let delta = env
            .topo
            .hop_displacement(cur, next)
            .expect("simulator only forwards along real links");
        // On an honestly marked packet the accumulated vector telescopes
        // to `cur − src`, so a single-hop update can never leave the
        // codec range. A *tampered* vector (a compromised switch
        // skipping or forging its update, §6.2 threat) can push the
        // honest update out of range — and this switch cannot tell
        // tampering from truth, so it must not crash the fabric over
        // it. Leaving the field untouched keeps the packet flowing;
        // the garbage vector then misattributes or is rejected at the
        // victim, which is exactly how the compromised-switch
        // experiments score tampering.
        if let Err(e) = self.codec.apply_hop(&mut pkt.header.identification, &delta) {
            debug_assert!(
                matches!(e, ddpm_net::CodecError::ComponentOutOfRange { .. }),
                "only adversarial out-of-range is tolerated, got {e:?}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, MarkingField, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::FaultSet;

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(999, 53),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    /// End-to-end: every delivered packet identifies its true source,
    /// whatever the topology, router, and fault pattern.
    #[test]
    fn identifies_true_source_across_topologies_and_routers() {
        for topo in [
            Topology::mesh2d(6),
            Topology::torus(&[5, 5]),
            Topology::hypercube(5),
            Topology::mesh(&[4, 4, 4]),
        ] {
            let scheme = DdpmScheme::new(&topo).unwrap();
            let map = AddrMap::for_topology(&topo);
            let faults = FaultSet::none();
            for router in Router::all_for(&topo) {
                let mut sim = Simulation::new(
                    &topo,
                    &faults,
                    router,
                    SelectionPolicy::Random,
                    &scheme,
                    SimConfig::seeded(99),
                );
                let n = topo.num_nodes() as u32;
                for id in 0..200u64 {
                    let s = NodeId((id as u32 * 13 + 5) % n);
                    let d = NodeId((id as u32 * 7 + 1) % n);
                    if s == d {
                        continue;
                    }
                    sim.schedule(SimTime(id), mk_packet(&map, id, s, d));
                }
                sim.run();
                assert!(!sim.delivered().is_empty());
                for del in sim.delivered() {
                    let dest = topo.coord(del.packet.dest_node);
                    let got = scheme
                        .attribute(&topo, &dest, del.packet.header.identification)
                        .single();
                    assert_eq!(
                        got,
                        Some(del.packet.true_source),
                        "{topo} / {router}: misidentified"
                    );
                }
            }
        }
    }

    /// Spoofed source addresses do not fool DDPM: identification uses
    /// the marking field, not the (forged) source IP.
    #[test]
    fn spoofing_does_not_evade_identification() {
        let topo = Topology::mesh2d(4);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(1),
        );
        let mut p = mk_packet(&map, 1, NodeId(3), NodeId(12));
        p.header.src = map.ip_of(NodeId(9)); // spoofed
        sim.schedule(SimTime::ZERO, p);
        sim.run();
        let del = &sim.delivered()[0];
        assert!(del.packet.is_spoofed(&map));
        let dest = topo.coord(del.packet.dest_node);
        assert_eq!(
            scheme
                .attribute(&topo, &dest, del.packet.header.identification)
                .single(),
            Some(NodeId(3)),
            "must identify the true injector, not the spoofed address"
        );
    }

    /// An attacker pre-loading a forged marking field gains nothing: the
    /// injection switch resets it (§5).
    #[test]
    fn forged_marking_field_is_reset_at_injection() {
        let topo = Topology::mesh2d(4);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(2),
        );
        let mut p = mk_packet(&map, 7, NodeId(5), NodeId(10));
        p.header.identification = MarkingField::new(0xBEEF); // forged
        sim.schedule(SimTime::ZERO, p);
        sim.run();
        let del = &sim.delivered()[0];
        let dest = topo.coord(del.packet.dest_node);
        assert_eq!(
            scheme
                .attribute(&topo, &dest, del.packet.header.identification)
                .single(),
            Some(NodeId(5))
        );
    }

    /// The Fig. 3(b) worked example: forced adaptive path from (1,1) to
    /// (2,3) with the exact distance-vector sequence from §5.
    #[test]
    fn paper_fig3b_vector_sequence() {
        let topo = Topology::mesh2d(4);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let env = MarkEnv { topo: &topo };
        let map = AddrMap::for_topology(&topo);
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(0)
        };
        let path = [
            Coord::new(&[1, 1]),
            Coord::new(&[2, 1]),
            Coord::new(&[3, 1]),
            Coord::new(&[3, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[2, 1]),
            Coord::new(&[2, 2]),
            Coord::new(&[2, 3]),
        ];
        let expected = [
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[2, -1]),
            Coord::new(&[1, -1]),
            Coord::new(&[1, 0]),
            Coord::new(&[1, 1]),
            Coord::new(&[1, 2]),
        ];
        let mut pkt = mk_packet(&map, 0, topo.index(&path[0]), topo.index(&path[7]));
        scheme.on_inject(&mut pkt, &path[0], &env);
        for (i, w) in path.windows(2).enumerate() {
            scheme.on_forward(&mut pkt, &w[0], &w[1], &env, &mut rng);
            assert_eq!(
                scheme.codec().decode(pkt.header.identification),
                expected[i],
                "vector after hop {i}"
            );
        }
        assert_eq!(
            scheme.identify(&topo, &path[7], pkt.header.identification),
            Some(path[0])
        );
    }

    /// The Fig. 3(c) worked example on the 3-cube.
    #[test]
    fn paper_fig3c_vector_sequence() {
        let topo = Topology::hypercube(3);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let env = MarkEnv { topo: &topo };
        let map = AddrMap::for_topology(&topo);
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(0)
        };
        // Source (1,1,0), destination (0,0,0); the paper's vector
        // sequence is (1,0,0),(1,0,1),(0,0,1),(0,1,1),(0,1,0),(1,1,0) —
        // six hops, toggling dims 0,2,0,1,2,0.
        let path = [
            Coord::new(&[1, 1, 0]),
            Coord::new(&[0, 1, 0]),
            Coord::new(&[0, 1, 1]),
            Coord::new(&[1, 1, 1]),
            Coord::new(&[1, 0, 1]),
            Coord::new(&[1, 0, 0]),
            Coord::new(&[0, 0, 0]),
        ];
        let expected = [
            Coord::new(&[1, 0, 0]),
            Coord::new(&[1, 0, 1]),
            Coord::new(&[0, 0, 1]),
            Coord::new(&[0, 1, 1]),
            Coord::new(&[0, 1, 0]),
            Coord::new(&[1, 1, 0]),
        ];
        let mut pkt = mk_packet(&map, 0, topo.index(&path[0]), topo.index(&path[6]));
        scheme.on_inject(&mut pkt, &path[0], &env);
        for (i, w) in path.windows(2).enumerate() {
            scheme.on_forward(&mut pkt, &w[0], &w[1], &env, &mut rng);
            assert_eq!(
                scheme.codec().decode(pkt.header.identification),
                expected[i],
                "vector after hop {i}"
            );
        }
        assert_eq!(
            scheme.identify(&topo, &path[6], pkt.header.identification),
            Some(path[0])
        );
    }

    #[test]
    fn residue_mode_also_identifies() {
        let topo = Topology::mesh2d(16);
        let scheme = DdpmScheme::with_mode(&topo, CodecMode::Residue).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(3),
        );
        for id in 0..100 {
            let s = NodeId((id * 31 + 2) as u32 % 256);
            let d = NodeId((id * 17 + 9) as u32 % 256);
            if s == d {
                continue;
            }
            sim.schedule(SimTime(id), mk_packet(&map, id, s, d));
        }
        sim.run();
        for del in sim.delivered() {
            let dest = topo.coord(del.packet.dest_node);
            assert_eq!(
                scheme
                    .attribute(&topo, &dest, del.packet.header.identification)
                    .single(),
                Some(del.packet.true_source)
            );
        }
    }

    #[test]
    fn oversized_topology_is_rejected() {
        assert!(DdpmScheme::new(&Topology::mesh2d(129)).is_err());
        assert!(DdpmScheme::new(&Topology::mesh2d(128)).is_ok());
    }
}
