//! Authenticated DDPM — the §4.1/§6.2 extension.
//!
//! The paper assumes switches cannot be compromised, then hedges: "To
//! prevent even the small probability of compromising switch, we should
//! add an authentication function working on the switching layer.
//! Before putting this function into a switch, rigorous research is
//! required to consider a trade-off between performance and security."
//! (§4.1). This module is that function, with the trade-off made
//! measurable.
//!
//! ## Threat model
//!
//! Trusted switches share a marking key `K` held in a secure element;
//! compute nodes never see it, and a compromised switch forwarding
//! plane is assumed to have lost access to it too (the standard
//! split-trust assumption of switch-security work). Such a switch can
//! still corrupt the distance vector in flight — under plain DDPM that
//! **frames an innocent node** (see
//! `ddpm_attack::compromised::CompromisedSwitch`). With [`AuthDdpm`]:
//!
//! * the marking field is split into the DDPM distance sub-fields plus
//!   a truncated keyed tag over `(V, src, dst)`;
//! * every switch verifies the incoming tag *before* updating; on a
//!   mismatch it leaves the field untouched, so invalidity propagates
//!   (honest switches never re-legitimise a corrupted vector);
//! * the victim identifies only packets whose final tag verifies —
//!   corrupted packets yield [`AuthOutcome::Invalid`] instead of a
//!   framed innocent. Fail closed.
//!
//! ## The trade-off, quantified
//!
//! Tag bits come out of the same 16-bit field, so authentication costs
//! addressable cluster size (`auth_capacity_table` in
//! `ddpm_bench::exp_compromised`) and one PRF evaluation per hop (the
//! `marking` Criterion bench). A forged tag passes with probability
//! `2^-t` per packet; the experiments measure the realised
//! false-acceptance rate.
//!
//! ## Residual limitations (documented, tested)
//!
//! A compromised switch can *replay* a `(V, tag)` pair it previously
//! saw for the same (src, dst) flow, reviving an old-but-valid vector;
//! defeating replay needs per-packet binding or time-released keys
//! (Song & Perrig's direction, cited as \[17\] in the paper). The tag
//! PRF here is a fast keyed mixer, a stand-in for a real MAC with the
//! same interface and failure semantics.

use crate::ddpm::DdpmScheme;
use ddpm_net::{CodecError, CodecMode, MarkingField, Packet, MF_BITS};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::{Coord, NodeId, Topology};
use std::sync::Mutex;
use rand::rngs::SmallRng;
use std::fmt;
use std::net::Ipv4Addr;

/// SplitMix64 finaliser.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed PRF over a few words (NOT a cryptographic MAC; a stand-in
/// with the right interface — see the module docs).
#[must_use]
pub fn prf(key: u64, parts: &[u64]) -> u64 {
    let mut h = key ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= mix(p.wrapping_add(h));
        h = h.rotate_left(23).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    mix(h)
}

/// Errors from building an [`AuthDdpm`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// The underlying DDPM codec does not fit at all.
    Codec(CodecError),
    /// Too few spare bits remain for a meaningful tag.
    NoRoomForTag {
        /// Bits the distance codec leaves over.
        spare: u32,
        /// Smallest acceptable tag width.
        minimum: u32,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::Codec(e) => write!(f, "codec: {e}"),
            AuthError::NoRoomForTag { spare, minimum } => {
                write!(
                    f,
                    "only {spare} spare MF bits for the tag (need >= {minimum})"
                )
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// Victim-side outcome for one packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthOutcome {
    /// Tag verified; the identified source coordinate.
    Verified(Coord),
    /// Tag mismatch: the vector was tampered with in flight (or forged
    /// past the injection switch). No identification is produced.
    Invalid,
}

impl AuthOutcome {
    /// The verified source, if any.
    #[must_use]
    pub fn source(&self) -> Option<Coord> {
        match self {
            AuthOutcome::Verified(c) => Some(*c),
            AuthOutcome::Invalid => None,
        }
    }
}

/// Minimum acceptable tag width.
pub const MIN_TAG_BITS: u32 = 4;

/// DDPM with an in-field truncated authentication tag.
///
/// Field layout: `[tag : t][distance vector : b]` with `t = 16 − b`.
pub struct AuthDdpm {
    inner: DdpmScheme,
    key: u64,
    vec_bits: u32,
    tag_bits: u32,
    /// Tamper events observed by honest switches (verification failures
    /// at `on_forward`).
    tampered_seen: Mutex<u64>,
}

impl AuthDdpm {
    /// Builds authenticated DDPM for `topo` with marking key `key`.
    ///
    /// # Errors
    /// [`AuthError`] when the distance codec leaves fewer than
    /// [`MIN_TAG_BITS`] spare bits.
    pub fn new(topo: &Topology, key: u64) -> Result<Self, AuthError> {
        Self::with_mode(topo, key, CodecMode::Signed)
    }

    /// Builds with an explicit codec mode (`Residue` buys more tag bits
    /// at the same scale).
    pub fn with_mode(topo: &Topology, key: u64, mode: CodecMode) -> Result<Self, AuthError> {
        let inner = DdpmScheme::with_mode(topo, mode).map_err(AuthError::Codec)?;
        let vec_bits = inner.codec().bits_used();
        let spare = MF_BITS - vec_bits;
        if spare < MIN_TAG_BITS {
            return Err(AuthError::NoRoomForTag {
                spare,
                minimum: MIN_TAG_BITS,
            });
        }
        Ok(Self {
            inner,
            key,
            vec_bits,
            tag_bits: spare,
            tampered_seen: Mutex::new(0),
        })
    }

    /// Tag width in bits.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Distance-vector width in bits.
    #[must_use]
    pub fn vec_bits(&self) -> u32 {
        self.vec_bits
    }

    /// The underlying (unauthenticated) scheme.
    #[must_use]
    pub fn inner(&self) -> &DdpmScheme {
        &self.inner
    }

    /// Tamper events honest switches have detected so far.
    #[must_use]
    pub fn tampered_seen(&self) -> u64 {
        *self.tampered_seen.lock().unwrap()
    }

    fn tag_for(&self, vec_bits_value: u16, src: Ipv4Addr, dst: Ipv4Addr) -> u16 {
        let t = prf(
            self.key,
            &[
                u64::from(vec_bits_value),
                u64::from(u32::from(src)),
                u64::from(u32::from(dst)),
            ],
        );
        (t & ((1u64 << self.tag_bits) - 1)) as u16
    }

    fn split(&self, mf: MarkingField) -> (u16, u16) {
        let vec = mf.get_bits(0, self.vec_bits);
        let tag = mf.get_bits(self.vec_bits, self.tag_bits);
        (vec, tag)
    }

    fn join(&self, vec: u16, tag: u16) -> MarkingField {
        let mut mf = MarkingField::zero();
        mf.set_bits(0, self.vec_bits, vec);
        mf.set_bits(self.vec_bits, self.tag_bits, tag);
        mf
    }

    fn verify_field(&self, pkt: &Packet) -> bool {
        let (vec, tag) = self.split(pkt.header.identification);
        tag == self.tag_for(vec, pkt.header.src, pkt.header.dst)
    }

    /// Victim-side verification + identification.
    #[must_use]
    pub fn identify_verified(&self, topo: &Topology, dest: &Coord, pkt: &Packet) -> AuthOutcome {
        if !self.verify_field(pkt) {
            return AuthOutcome::Invalid;
        }
        let (vec, _) = self.split(pkt.header.identification);
        let inner_mf = MarkingField::new(vec);
        match self.inner.codec().recover_source(topo, dest, inner_mf) {
            Some(src) => AuthOutcome::Verified(src),
            None => AuthOutcome::Invalid,
        }
    }

    /// Like [`AuthDdpm::identify_verified`] but returning a node id.
    #[must_use]
    pub fn identify_verified_node(
        &self,
        topo: &Topology,
        dest: &Coord,
        pkt: &Packet,
    ) -> Option<NodeId> {
        self.identify_verified(topo, dest, pkt)
            .source()
            .map(|c| topo.index(&c))
    }
}

impl fmt::Debug for AuthDdpm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuthDdpm")
            .field("vec_bits", &self.vec_bits)
            .field("tag_bits", &self.tag_bits)
            .finish_non_exhaustive()
    }
}

impl Marker for AuthDdpm {
    fn name(&self) -> &'static str {
        "ddpm-auth"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        let zero_vec = self
            .inner
            .codec()
            .encode(&Coord::zero(pkt_ndims(&self.inner)))
            .expect("zero encodes")
            .raw();
        let tag = self.tag_for(zero_vec, pkt.header.src, pkt.header.dst);
        pkt.header.identification = self.join(zero_vec, tag);
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        _rng: &mut SmallRng,
    ) {
        // Verify BEFORE updating; never re-legitimise a corrupted field.
        if !self.verify_field(pkt) {
            *self.tampered_seen.lock().unwrap() += 1;
            return;
        }
        let (vec, _) = self.split(pkt.header.identification);
        let v = self.inner.codec().decode(MarkingField::new(vec));
        let delta = env
            .topo
            .hop_displacement(cur, next)
            .expect("simulator only forwards along real links");
        let v_new = env.topo.accumulate(&v, &delta);
        let vec_new = self
            .inner
            .codec()
            .encode(&v_new)
            .expect("accumulated vectors stay in range")
            .raw();
        let tag = self.tag_for(vec_new, pkt.header.src, pkt.header.dst);
        pkt.header.identification = self.join(vec_new, tag);
    }
}

fn pkt_ndims(scheme: &DdpmScheme) -> usize {
    scheme.codec().widths().len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, Topology};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(1, 7),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    #[test]
    fn layout_splits_the_field() {
        let topo = Topology::mesh2d(8);
        let auth = AuthDdpm::new(&topo, 0xBEEF).unwrap();
        assert_eq!(auth.vec_bits() + auth.tag_bits(), 16);
        assert_eq!(auth.vec_bits(), 8);
        assert_eq!(auth.tag_bits(), 8);
    }

    #[test]
    fn no_room_for_tag_at_table3_scale() {
        // The 128x128 mesh uses all 16 bits for the vector: no tag room.
        let err = AuthDdpm::new(&Topology::mesh2d(128), 1).unwrap_err();
        assert!(matches!(err, AuthError::NoRoomForTag { spare: 0, .. }));
        // Residue mode frees bits at the same scale.
        assert!(AuthDdpm::with_mode(&Topology::mesh2d(64), 1, CodecMode::Residue).is_ok());
    }

    #[test]
    fn honest_run_verifies_and_identifies() {
        let topo = Topology::torus(&[6, 6]);
        let auth = AuthDdpm::new(&topo, 0xD00D).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &auth,
            SimConfig::seeded(5),
        );
        for id in 0..150u64 {
            let s = NodeId((id as u32 * 7 + 1) % 36);
            let d = NodeId((id as u32 * 11 + 3) % 36);
            if s == d {
                continue;
            }
            sim.schedule(SimTime(id * 4), mk_packet(&map, id, s, d));
        }
        sim.run();
        assert!(!sim.delivered().is_empty());
        for del in sim.delivered() {
            let dest = topo.coord(del.packet.dest_node);
            assert_eq!(
                auth.identify_verified_node(&topo, &dest, &del.packet),
                Some(del.packet.true_source)
            );
        }
        assert_eq!(auth.tampered_seen(), 0);
    }

    #[test]
    fn node_forged_field_rejected_or_reset() {
        // Preloaded garbage dies at the injection switch like plain DDPM.
        let topo = Topology::mesh2d(8);
        let auth = AuthDdpm::new(&topo, 42).unwrap();
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &auth,
            SimConfig::seeded(1),
        );
        let mut p = mk_packet(&map, 1, NodeId(3), NodeId(60));
        p.header.identification = MarkingField::new(0xFFFF);
        sim.schedule(SimTime::ZERO, p);
        sim.run();
        let del = &sim.delivered()[0];
        let dest = topo.coord(del.packet.dest_node);
        assert_eq!(
            auth.identify_verified_node(&topo, &dest, &del.packet),
            Some(NodeId(3))
        );
    }

    #[test]
    fn midpath_tamper_is_detected_not_misattributed() {
        // Manually corrupt the vector between two hops, as a compromised
        // switch would, and check fail-closed behaviour end to end.
        let topo = Topology::mesh2d(8);
        let auth = AuthDdpm::new(&topo, 7).unwrap();
        let map = AddrMap::for_topology(&topo);
        let env = ddpm_sim::MarkEnv { topo: &topo };
        let mut rng = {
            use rand::SeedableRng;
            SmallRng::seed_from_u64(0)
        };
        let path = [
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[3, 0]),
            Coord::new(&[4, 0]),
        ];
        let mut pkt = mk_packet(&map, 9, topo.index(&path[0]), topo.index(&path[4]));
        auth.on_inject(&mut pkt, &path[0], &env);
        auth.on_forward(&mut pkt, &path[0], &path[1], &env, &mut rng);
        // The compromised switch rewrites the vector to frame (6,6)…
        let frame_v = topo.expected_distance(&Coord::new(&[6, 6]), &path[2]);
        let forged_vec = auth.inner().codec().encode(&frame_v).unwrap().raw();
        let (_, old_tag) = auth.split(pkt.header.identification);
        pkt.header.identification = auth.join(forged_vec, old_tag);
        // …honest switches downstream refuse to touch it…
        auth.on_forward(&mut pkt, &path[1], &path[2], &env, &mut rng);
        auth.on_forward(&mut pkt, &path[2], &path[3], &env, &mut rng);
        auth.on_forward(&mut pkt, &path[3], &path[4], &env, &mut rng);
        assert_eq!(auth.tampered_seen(), 3, "every honest hop flags it");
        // …and the victim refuses to identify (fail closed), rather than
        // convicting the framed node.
        assert_eq!(
            auth.identify_verified(&topo, &path[4], &pkt),
            AuthOutcome::Invalid
        );
    }

    #[test]
    fn prf_is_key_and_input_sensitive() {
        let a = prf(1, &[1, 2, 3]);
        assert_ne!(a, prf(2, &[1, 2, 3]));
        assert_ne!(a, prf(1, &[1, 2, 4]));
        assert_ne!(a, prf(1, &[1, 2]));
        assert_eq!(a, prf(1, &[1, 2, 3]));
    }

    #[test]
    fn forgery_acceptance_matches_tag_width() {
        // Random tags pass with probability ~2^-t.
        let topo = Topology::mesh2d(8); // t = 8
        let auth = AuthDdpm::new(&topo, 99).unwrap();
        let map = AddrMap::for_topology(&topo);
        let mut pkt = mk_packet(&map, 0, NodeId(0), NodeId(63));
        let mut accepted = 0u32;
        let trials = 4096u32;
        for i in 0..trials {
            pkt.header.identification = MarkingField::new(i as u16 ^ 0xA5A5);
            if auth.verify_field(&pkt) {
                accepted += 1;
            }
        }
        let rate = f64::from(accepted) / f64::from(trials);
        assert!(
            rate < 4.0 / 256.0,
            "acceptance {rate} far above 2^-8 = {}",
            1.0 / 256.0
        );
    }
}
