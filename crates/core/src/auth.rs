//! The split-trust keyed-tag wrapper — §4.1/§6.2, generalised to every
//! marking scheme.
//!
//! The paper assumes switches cannot be compromised, then hedges: "To
//! prevent even the small probability of compromising switch, we should
//! add an authentication function working on the switching layer.
//! Before putting this function into a switch, rigorous research is
//! required to consider a trade-off between performance and security."
//! (§4.1). [`Authenticated`] is that function as a *wrapper*: any
//! [`MarkingScheme`] slides inside it and gains tag verification at
//! every hop, with the tag bits carved out of the same 16-bit field the
//! inner scheme already budgets.
//!
//! ## Threat model (split trust)
//!
//! Trusted switches share a marking key `K` held in a secure element;
//! compute nodes never see it, and the *marking plane* of a compromised
//! switch is assumed to have lost access to it too (the standard
//! split-trust assumption of switch-security work; see DESIGN.md §12).
//! Such a switch can still corrupt the marking field in flight — under
//! an unauthenticated scheme that **frames an innocent node** (see
//! `ddpm_attack::AdversaryModel`). Under [`Authenticated`]:
//!
//! * the field is split `[inner : b][tag : t]`, the tag a truncated
//!   keyed PRF over `(inner value, src, dst, writer TTL)`;
//! * every switch verifies the incoming tag *before* running the inner
//!   update; on a mismatch it leaves the field untouched, so invalidity
//!   propagates (honest switches never re-legitimise a corrupted field);
//! * the victim trusts only packets whose final tag verifies — corrupted
//!   packets are counted and discarded instead of feeding the inner
//!   collector. Fail closed.
//!
//! ## TTL binding
//!
//! The tag covers the TTL *as the writing switch saw it*. The simulator
//! decrements TTL exactly once per intermediate-switch arrival (never at
//! the source or destination switch), so a verifier accepts a tag
//! computed over `ttl_now` (same-switch writer: the injection seal, or a
//! parked-and-rerouted packet) or `ttl_now + 1` (the previous switch).
//! The victim accepts `ttl_now` only. This pins the mark to its hop:
//! a switch that silently *skips* the update ships a tag two TTL steps
//! stale, which no downstream verifier accepts, and a replayed
//! `(field, tag)` pair from another hop of the same flow dies the same
//! way. The dual-accept window doubles the forgery acceptance to at
//! most `2 · 2^-t` per packet — the experiments measure the realised
//! rate against this model.
//!
//! ## The trade-off, quantified
//!
//! Tag bits come out of the inner scheme's own budget, so
//! authentication costs addressable scale (DDPM, DPM) or recording
//! capacity (Tracemax), plus one PRF evaluation per hop (the `marking`
//! Criterion bench). Schemes whose honest budget leaves fewer than
//! [`MIN_TAG_BITS`] spare bits on a topology are *infeasible* there —
//! [`AuthError::NoRoomForTag`] is the feasibility wall, reported by
//! `build_scheme` like any other.

use ddpm_net::{MarkingField, Packet, MF_BITS};
use ddpm_sim::{Attribution, Collector, HopCost, MarkEnv, Marker, MarkingScheme};
use ddpm_topology::{Coord, NodeId, Topology};
use rand::rngs::SmallRng;
use std::fmt;
use std::net::Ipv4Addr;
use std::sync::Mutex;

/// SplitMix64 finaliser.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Keyed PRF over a few words (NOT a cryptographic MAC; a stand-in
/// with the right interface — see the module docs).
#[must_use]
pub fn prf(key: u64, parts: &[u64]) -> u64 {
    let mut h = key ^ 0x9E37_79B9_7F4A_7C15;
    for &p in parts {
        h ^= mix(p.wrapping_add(h));
        h = h.rotate_left(23).wrapping_mul(0x2545_F491_4F6C_DD1D);
    }
    mix(h)
}

/// Minimum acceptable tag width.
pub const MIN_TAG_BITS: u32 = 4;

/// Maximum tag width the default carve-out takes (wider tags buy
/// nothing once forgery is already negligible, and starve the inner
/// scheme for no reason).
pub const MAX_TAG_BITS: u32 = 12;

/// The default tag width for a scheme leaving `spare` MF bits: all of
/// them, clamped to `[MIN_TAG_BITS, MAX_TAG_BITS]`; `None` when even
/// the minimum does not fit.
#[must_use]
pub fn default_tag_bits(spare: u32) -> Option<u32> {
    (spare >= MIN_TAG_BITS).then(|| spare.min(MAX_TAG_BITS))
}

/// Errors from wrapping a scheme in [`Authenticated`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AuthError {
    /// The requested tag does not fit next to the inner scheme's bits
    /// (or is below the minimum meaningful width).
    NoRoomForTag {
        /// MF bits the inner scheme leaves over.
        spare: u32,
        /// The tag width asked for.
        requested: u32,
        /// Smallest acceptable tag width.
        minimum: u32,
    },
}

impl fmt::Display for AuthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuthError::NoRoomForTag {
                spare,
                requested,
                minimum,
            } => {
                write!(
                    f,
                    "a {requested}-bit tag does not fit: {spare} spare MF bits \
                     (tags must be {minimum}..={MAX_TAG_BITS} bits)"
                )
            }
        }
    }
}

impl std::error::Error for AuthError {}

/// Any marking scheme under the split-trust keyed-tag discipline.
///
/// Field layout: `[inner : b][tag : t]` with `b = inner.mf_bits()` and
/// `b + t <= 16`. See the module docs for the verification protocol.
pub struct Authenticated<S> {
    inner: S,
    name: &'static str,
    key: u64,
    inner_bits: u32,
    tag_bits: u32,
    /// Tamper events observed by honest switches (verification failures
    /// at `on_forward`/`on_deliver`).
    tampered_seen: Mutex<u64>,
}

impl<S: MarkingScheme> Authenticated<S> {
    /// Wraps `inner` with a `tag_bits`-wide keyed tag under `key`.
    ///
    /// `name` is the wrapped scheme's report name (`"auth-ddpm"`, …) —
    /// the caller owns the naming because `Marker::name` must return a
    /// `&'static str`.
    ///
    /// # Errors
    /// [`AuthError::NoRoomForTag`] when `tag_bits` is below
    /// [`MIN_TAG_BITS`], above [`MAX_TAG_BITS`], or wider than the MF
    /// bits the inner scheme leaves spare.
    pub fn new(inner: S, name: &'static str, key: u64, tag_bits: u32) -> Result<Self, AuthError> {
        let inner_bits = inner.mf_bits();
        let spare = MF_BITS - inner_bits.min(MF_BITS);
        if !(MIN_TAG_BITS..=MAX_TAG_BITS).contains(&tag_bits) || tag_bits > spare {
            return Err(AuthError::NoRoomForTag {
                spare,
                requested: tag_bits,
                minimum: MIN_TAG_BITS,
            });
        }
        Ok(Self {
            inner,
            name,
            key,
            inner_bits,
            tag_bits,
            tampered_seen: Mutex::new(0),
        })
    }

    /// Tag width in bits.
    #[must_use]
    pub fn tag_bits(&self) -> u32 {
        self.tag_bits
    }

    /// Inner-scheme field width in bits.
    #[must_use]
    pub fn inner_bits(&self) -> u32 {
        self.inner_bits
    }

    /// The wrapped (unauthenticated) scheme.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Tamper events honest switches have detected so far.
    #[must_use]
    pub fn tampered_seen(&self) -> u64 {
        *self.tampered_seen.lock().expect("tamper counter poisoned")
    }

    fn tag_for(&self, inner_val: u16, src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> u16 {
        let t = prf(
            self.key,
            &[
                u64::from(inner_val),
                u64::from(u32::from(src)),
                u64::from(u32::from(dst)),
                u64::from(ttl),
            ],
        );
        (t & ((1u64 << self.tag_bits) - 1)) as u16
    }

    fn split(&self, mf: MarkingField) -> (u16, u16) {
        let inner_val = mf.get_bits(0, self.inner_bits);
        let tag = mf.get_bits(self.inner_bits, self.tag_bits);
        (inner_val, tag)
    }

    /// Writes `inner_val` back with a fresh tag over this switch's TTL.
    fn seal(&self, pkt: &mut Packet, inner_val: u16) {
        let tag = self.tag_for(inner_val, pkt.header.src, pkt.header.dst, pkt.header.ttl);
        let mut mf = MarkingField::zero();
        mf.set_bits(0, self.inner_bits, inner_val);
        mf.set_bits(self.inner_bits, self.tag_bits, tag);
        pkt.header.identification = mf;
    }

    /// In-flight verification: accepts a tag computed over `ttl_now`
    /// (same-switch writer) or `ttl_now + 1` (the previous switch).
    fn verify_in_flight(&self, pkt: &Packet) -> bool {
        let (inner_val, tag) = self.split(pkt.header.identification);
        let (src, dst, ttl) = (pkt.header.src, pkt.header.dst, pkt.header.ttl);
        tag == self.tag_for(inner_val, src, dst, ttl)
            || tag == self.tag_for(inner_val, src, dst, ttl.saturating_add(1))
    }

    /// Victim-side verification of a *delivered* packet: the destination
    /// switch never decrements TTL, so the last writer's TTL is exactly
    /// `ttl_now`. Returns the verified inner field value, or `None`
    /// (fail closed).
    #[must_use]
    pub fn verify_delivered(&self, pkt: &Packet) -> Option<MarkingField> {
        let (inner_val, tag) = self.split(pkt.header.identification);
        (tag == self.tag_for(inner_val, pkt.header.src, pkt.header.dst, pkt.header.ttl))
            .then(|| MarkingField::new(inner_val))
    }

    fn flag_tamper(&self) {
        *self.tampered_seen.lock().expect("tamper counter poisoned") += 1;
    }
}

impl<S: MarkingScheme> fmt::Debug for Authenticated<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Authenticated")
            .field("name", &self.name)
            .field("inner_bits", &self.inner_bits)
            .field("tag_bits", &self.tag_bits)
            .finish_non_exhaustive()
    }
}

impl<S: MarkingScheme> Marker for Authenticated<S> {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_inject(&self, pkt: &mut Packet, src: &Coord, env: &MarkEnv<'_>) {
        // The injection switch resets the field (§5), so there is
        // nothing to verify yet — run the inner reset, then seal.
        self.inner.on_inject(pkt, src, env);
        let inner_val = pkt.header.identification.get_bits(0, self.inner_bits);
        self.seal(pkt, inner_val);
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        // Verify BEFORE updating; never re-legitimise a corrupted field.
        if !self.verify_in_flight(pkt) {
            self.flag_tamper();
            return;
        }
        let (inner_val, _) = self.split(pkt.header.identification);
        pkt.header.identification = MarkingField::new(inner_val);
        self.inner.on_forward(pkt, cur, next, env, rng);
        let new_val = pkt.header.identification.get_bits(0, self.inner_bits);
        self.seal(pkt, new_val);
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, rng: &mut SmallRng) {
        // The destination switch never decrements TTL: the last writer
        // computed its tag over exactly `ttl_now`.
        let Some(inner_mf) = self.verify_delivered(pkt) else {
            self.flag_tamper();
            return;
        };
        pkt.header.identification = inner_mf;
        self.inner.on_deliver(pkt, dest, env, rng);
        let new_val = pkt.header.identification.get_bits(0, self.inner_bits);
        self.seal(pkt, new_val);
    }
}

/// The fail-closed collector: verifies each delivered packet's tag and
/// feeds only verified inner fields to the wrapped scheme's collector.
struct AuthCollector<'a, S: MarkingScheme> {
    auth: &'a Authenticated<S>,
    inner: Box<dyn Collector + 'a>,
    total: u64,
    rejected: u64,
}

impl<S: MarkingScheme> Collector for AuthCollector<'_, S> {
    fn observe(&mut self, _mf: MarkingField) {
        // A bare field carries no header, so the tag cannot be checked —
        // fail closed, as an unverifiable mark deserves.
        self.total += 1;
        self.rejected += 1;
    }

    fn observe_packet(&mut self, pkt: &Packet) {
        self.total += 1;
        match self.auth.verify_delivered(pkt) {
            Some(inner_mf) => self.inner.observe(inner_mf),
            None => self.rejected += 1,
        }
    }

    fn attribute(&mut self) -> Attribution {
        if self.total == 0 {
            return Attribution::none();
        }
        // The inner scheme answers from verified evidence only; its
        // confidence is then discounted by the verified fraction, so
        // pollution (rejected marks) degrades the answer instead of
        // entering it.
        let att = self.inner.attribute();
        let verified = (self.total - self.rejected) as f64;
        Attribution::from_candidates(att.candidates, att.confidence * verified / self.total as f64)
    }

    fn observed(&self) -> u64 {
        self.total
    }

    fn rejected(&self) -> u64 {
        self.rejected
    }
}

impl<S: MarkingScheme> MarkingScheme for Authenticated<S> {
    fn mf_bits(&self) -> u32 {
        self.inner_bits + self.tag_bits
    }

    fn per_hop_cost(&self) -> HopCost {
        // On top of the inner scheme: one PRF verify, one PRF re-seal,
        // one tag sub-field write.
        let c = self.inner.per_hop_cost();
        HopCost {
            field_writes: c.field_writes + 1,
            arith_ops: c.arith_ops + 2,
            probabilistic: c.probabilistic,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(AuthCollector {
            auth: self,
            inner: self.inner.collector(topo, victim),
            total: 0,
            rejected: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddpm::DdpmScheme;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, Topology};
    use rand::SeedableRng;

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(1, 7),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    fn auth_ddpm(topo: &Topology, key: u64, tag_bits: u32) -> Authenticated<DdpmScheme> {
        let inner = DdpmScheme::new(topo).unwrap();
        Authenticated::new(inner, "auth-ddpm", key, tag_bits).unwrap()
    }

    #[test]
    fn layout_splits_the_field() {
        let topo = Topology::mesh2d(8);
        let auth = auth_ddpm(&topo, 0xBEEF, 8);
        assert_eq!(auth.inner_bits(), 8);
        assert_eq!(auth.tag_bits(), 8);
        assert_eq!(auth.mf_bits(), 16);
        assert_eq!(auth.name(), "auth-ddpm");
    }

    #[test]
    fn tag_width_walls_are_checked() {
        let topo = Topology::mesh2d(8); // DDPM leaves 8 spare bits
        let inner = DdpmScheme::new(&topo).unwrap();
        let err = Authenticated::new(inner, "auth-ddpm", 1, 12).unwrap_err();
        assert!(
            matches!(
                err,
                AuthError::NoRoomForTag {
                    spare: 8,
                    requested: 12,
                    ..
                }
            ),
            "{err}"
        );
        let inner = DdpmScheme::new(&topo).unwrap();
        assert!(Authenticated::new(inner, "auth-ddpm", 1, 2).is_err());
        assert_eq!(default_tag_bits(3), None);
        assert_eq!(default_tag_bits(6), Some(6));
        assert_eq!(default_tag_bits(14), Some(MAX_TAG_BITS));
    }

    #[test]
    fn honest_run_verifies_and_identifies() {
        let topo = Topology::torus(&[6, 6]);
        let auth = auth_ddpm(&topo, 0xD00D, 8);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let victim = NodeId(21);
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &auth,
            SimConfig::seeded(5),
        );
        for id in 0..150u64 {
            let s = NodeId((id as u32 * 7 + 1) % 36);
            if s == victim {
                continue;
            }
            sim.schedule(SimTime(id * 4), mk_packet(&map, id, s, victim));
        }
        sim.run();
        assert!(!sim.delivered().is_empty());
        let mut c = auth.collector(&topo, victim);
        for d in sim.delivered() {
            assert!(auth.verify_delivered(&d.packet).is_some());
            c.observe_packet(&d.packet);
        }
        assert_eq!(c.rejected(), 0);
        let att = c.attribute();
        assert!(att.confidence > 0.9, "{att:?}");
        for d in sim.delivered() {
            assert!(att.implicates(d.packet.true_source), "{att:?}");
        }
        assert_eq!(auth.tampered_seen(), 0);
    }

    #[test]
    fn midpath_tamper_is_detected_not_misattributed() {
        // Manually corrupt the field between two hops, as a compromised
        // switch would, and check fail-closed behaviour end to end.
        let topo = Topology::mesh2d(8);
        let auth = auth_ddpm(&topo, 7, 8);
        let map = AddrMap::for_topology(&topo);
        let env = MarkEnv { topo: &topo };
        let mut rng = SmallRng::seed_from_u64(0);
        let path = [
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
            Coord::new(&[3, 0]),
            Coord::new(&[4, 0]),
        ];
        let mut pkt = mk_packet(&map, 9, topo.index(&path[0]), topo.index(&path[4]));
        auth.on_inject(&mut pkt, &path[0], &env);
        auth.on_forward(&mut pkt, &path[0], &path[1], &env, &mut rng);
        // The compromised switch rewrites the field to frame (6,6)
        // (keeping the stale tag — it has no key to forge a new one)…
        pkt.header.ttl -= 1; // arrival at the evil switch
        let framed = Coord::new(&[6, 6]);
        let frame_v = topo.expected_distance(&framed, &path[2]);
        let forged = auth.inner().codec().encode(&frame_v).unwrap().raw();
        let (_, old_tag) = auth.split(pkt.header.identification);
        let mut mf = MarkingField::zero();
        mf.set_bits(0, auth.inner_bits(), forged);
        mf.set_bits(auth.inner_bits(), auth.tag_bits(), old_tag);
        pkt.header.identification = mf;
        // …honest switches downstream refuse to touch it…
        for hop in 2..=4 {
            pkt.header.ttl -= 1;
            auth.on_forward(&mut pkt, &path[hop - 1], &path[hop], &env, &mut rng);
        }
        assert_eq!(auth.tampered_seen(), 3, "every honest hop flags it");
        // …and the victim refuses to trust it (fail closed), rather than
        // convicting the framed node.
        assert_eq!(auth.verify_delivered(&pkt), None);
        let mut c = auth.collector(&topo, topo.index(&path[4]));
        c.observe_packet(&pkt);
        assert_eq!(c.rejected(), 1);
        assert_eq!(c.attribute(), Attribution::none());
    }

    #[test]
    fn skipped_update_ships_a_stale_tag() {
        // A switch that silently skips the marking update leaves a tag
        // two TTL steps stale by the time the next honest switch looks.
        let topo = Topology::mesh2d(8);
        let auth = auth_ddpm(&topo, 3, 8);
        let map = AddrMap::for_topology(&topo);
        let env = MarkEnv { topo: &topo };
        let mut rng = SmallRng::seed_from_u64(1);
        let a = Coord::new(&[0, 0]);
        let b = Coord::new(&[1, 0]);
        let c = Coord::new(&[2, 0]);
        let d = Coord::new(&[3, 0]);
        let mut pkt = mk_packet(&map, 1, topo.index(&a), topo.index(&d));
        auth.on_inject(&mut pkt, &a, &env);
        auth.on_forward(&mut pkt, &a, &b, &env, &mut rng);
        pkt.header.ttl -= 1; // arrive at b — the evil switch skips marking
        pkt.header.ttl -= 1; // arrive at c
        auth.on_forward(&mut pkt, &c, &d, &env, &mut rng);
        assert_eq!(auth.tampered_seen(), 1, "the stale tag is flagged");
        // The victim (one more hop, no decrement at destination) also
        // refuses it.
        assert_eq!(auth.verify_delivered(&pkt), None);
    }

    #[test]
    fn prf_is_key_and_input_sensitive() {
        let a = prf(1, &[1, 2, 3]);
        assert_ne!(a, prf(2, &[1, 2, 3]));
        assert_ne!(a, prf(1, &[1, 2, 4]));
        assert_ne!(a, prf(1, &[1, 2]));
        assert_eq!(a, prf(1, &[1, 2, 3]));
    }

    #[test]
    fn forgery_acceptance_tracks_tag_width() {
        // A keyless forger's field passes the victim check with
        // probability 2^-t: sweeping the *entire* 16-bit field space,
        // each inner value has exactly one matching tag among 2^t, so
        // the realized acceptance must sit within 3x of the design
        // value at every supported width. t = 12 leaves only 4 inner
        // bits — too few for the 8x8 mesh's DDPM vector — so it runs
        // on the 2x2 mesh (the width/scale trade-off the capacity
        // table quantifies).
        for (tag_bits, radix) in [(4u32, 8u16), (8, 8), (12, 2)] {
            let topo = Topology::mesh2d(radix);
            let auth = auth_ddpm(&topo, 99, tag_bits);
            let map = AddrMap::for_topology(&topo);
            let victim = NodeId(u32::from(radix) * u32::from(radix) - 1);
            let mut pkt = mk_packet(&map, 0, NodeId(0), victim);
            let mut accepted = 0u32;
            for field in 0..=u16::MAX {
                pkt.header.identification = MarkingField::new(field);
                if auth.verify_delivered(&pkt).is_some() {
                    accepted += 1;
                }
            }
            let rate = f64::from(accepted) / f64::from(u32::from(u16::MAX) + 1);
            let design = f64::from(1u32 << tag_bits).recip();
            assert!(
                rate <= 3.0 * design,
                "t={tag_bits}: acceptance {rate} above 3x the design {design}"
            );
            assert!(
                rate >= design / 3.0,
                "t={tag_bits}: acceptance {rate} below a third of the design \
                 {design} — the verifier rejects more than bad tags"
            );
        }
    }
}
