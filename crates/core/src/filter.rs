//! Mitigation filters: acting on identified sources.
//!
//! "Once a source or a path is identified, we can protect our system by
//! blocking packets from that source or that path." (§2). Three
//! enforcement points, all pluggable into the simulator via
//! [`ddpm_sim::Filter`]:
//!
//! * [`SourceQuarantine`] — the identified node's *own switch* refuses
//!   everything its compute node injects. The strongest response,
//!   possible exactly because "one node consists of a switch and a
//!   computing node, but they are separate entities" and switches are
//!   trusted (§4.1).
//! * [`DdpmDeliveryFilter`] — the victim's switch recomputes the DDPM
//!   source of each arriving packet and discards packets from
//!   blocklisted coordinates. No cooperation from remote switches
//!   needed; spoofed headers are irrelevant.
//! * [`SignatureFilter`] — DPM-style: discard packets whose raw marking
//!   field matches a blocked signature ("The victim can block all
//!   following traffic with that marking value", §2). Cheap but, under
//!   adaptive routing, both leaky and collateral-prone — measured by the
//!   end-to-end experiment.
//! * [`IngressFilter`] — the §2 baseline defence (Ferguson & Senie,
//!   RFC 2267): every switch validates that the source address of a
//!   locally injected packet matches its own node's address in the
//!   mapping table ("switches can block packets with spoofed IP
//!   addresses by looking up a mapping table", §6.2). Stops *spoofing*
//!   cold — but not the attack: an attacker that floods under its own
//!   address sails through, which is why identification still matters.
//!
//! All mutable filters use interior mutability (`std::sync::RwLock`)
//! so a detection pipeline can extend blocklists while a simulation
//! runs.

use crate::ddpm::DdpmScheme;
use ddpm_net::{AddrMap, Packet};
use ddpm_sim::Filter;
use ddpm_topology::{Coord, Topology};
use std::sync::RwLock;
use std::collections::HashSet;

/// Quarantine at the source switch.
#[derive(Debug, Default)]
pub struct SourceQuarantine {
    blocked: RwLock<HashSet<Coord>>,
}

impl SourceQuarantine {
    /// An empty quarantine list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Quarantines the node at `coord`.
    pub fn block(&self, coord: Coord) {
        self.blocked.write().unwrap().insert(coord);
    }

    /// Number of quarantined nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocked.read().unwrap().len()
    }

    /// True if nothing is quarantined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocked.read().unwrap().is_empty()
    }
}

impl Filter for SourceQuarantine {
    fn block_at_injection(&self, _pkt: &Packet, src: &Coord) -> bool {
        let blocked = self.blocked.read().unwrap();
        !blocked.is_empty() && blocked.contains(src)
    }
}

/// Victim-side filtering keyed by DDPM-recovered source.
#[derive(Debug)]
pub struct DdpmDeliveryFilter {
    topo: Topology,
    scheme: DdpmScheme,
    blocked: RwLock<HashSet<Coord>>,
}

impl DdpmDeliveryFilter {
    /// Builds the filter for `topo`.
    #[must_use]
    pub fn new(topo: Topology, scheme: DdpmScheme) -> Self {
        Self {
            topo,
            scheme,
            blocked: RwLock::new(HashSet::new()),
        }
    }

    /// Blocks traffic whose recovered source is `coord`.
    pub fn block(&self, coord: Coord) {
        self.blocked.write().unwrap().insert(coord);
    }

    /// Number of blocked sources.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocked.read().unwrap().len()
    }

    /// True if the blocklist is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocked.read().unwrap().is_empty()
    }
}

impl Filter for DdpmDeliveryFilter {
    fn block_at_delivery(&self, pkt: &Packet, dst: &Coord) -> bool {
        let blocked = self.blocked.read().unwrap();
        if blocked.is_empty() {
            return false;
        }
        match self
            .scheme
            .identify(&self.topo, dst, pkt.header.identification)
        {
            Some(src) => blocked.contains(&src),
            None => false,
        }
    }
}

/// Victim-side filtering keyed by the raw marking-field signature (DPM).
#[derive(Debug, Default)]
pub struct SignatureFilter {
    blocked: RwLock<HashSet<u16>>,
}

impl SignatureFilter {
    /// An empty signature blocklist.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Blocks a signature.
    pub fn block(&self, signature: u16) {
        self.blocked.write().unwrap().insert(signature);
    }

    /// Blocks every signature in `signatures`.
    pub fn block_all(&self, signatures: impl IntoIterator<Item = u16>) {
        let mut w = self.blocked.write().unwrap();
        w.extend(signatures);
    }

    /// Number of blocked signatures.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocked.read().unwrap().len()
    }

    /// True if the blocklist is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocked.read().unwrap().is_empty()
    }
}

impl Filter for SignatureFilter {
    fn block_at_delivery(&self, pkt: &Packet, _dst: &Coord) -> bool {
        let blocked = self.blocked.read().unwrap();
        !blocked.is_empty() && blocked.contains(&pkt.header.identification.raw())
    }
}

/// Per-switch ingress source-address validation (the §2/§6.2 baseline).
///
/// Drops any locally injected packet whose header source address is not
/// the injecting node's own address. The cost the paper worries about —
/// "it will increase the processing time of switch" (§6.2) — is one
/// address-map lookup per injection; the `marking` bench quantifies it.
#[derive(Clone, Debug)]
pub struct IngressFilter {
    topo: Topology,
    map: AddrMap,
}

impl IngressFilter {
    /// Builds the filter for `topo` with its address map.
    #[must_use]
    pub fn new(topo: Topology, map: AddrMap) -> Self {
        Self { topo, map }
    }
}

impl Filter for IngressFilter {
    fn block_at_injection(&self, pkt: &Packet, src: &Coord) -> bool {
        let node = self.topo.index(src);
        pkt.header.src != self.map.ip_of(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, NodeId};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId, class: TrafficClass) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(5, 53),
            true_source: src,
            dest_node: dst,
            class,
        }
    }

    #[test]
    fn quarantine_blocks_only_listed_sources() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = DdpmScheme::new(&topo).unwrap();
        let q = SourceQuarantine::new();
        q.block(topo.coord(NodeId(3)));
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            &q,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 0, NodeId(3), NodeId(12), TrafficClass::Attack),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(4), NodeId(12), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
        assert_eq!(stats.attack.delivered, 0);
        assert_eq!(stats.benign.delivered, 1);
    }

    #[test]
    fn ddpm_delivery_filter_blocks_despite_spoofing() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = DdpmScheme::new(&topo).unwrap();
        let filter = DdpmDeliveryFilter::new(topo.clone(), scheme.clone());
        filter.block(topo.coord(NodeId(5)));
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            &scheme,
            &filter,
            SimConfig::seeded(3),
        );
        // Attacker at node 5 spoofs node 1's address.
        let mut atk = mk_packet(&map, 0, NodeId(5), NodeId(10), TrafficClass::Attack);
        atk.header.src = map.ip_of(NodeId(1));
        sim.schedule(SimTime::ZERO, atk);
        // Honest node 1 traffic must NOT be collateral.
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(1), NodeId(10), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
        assert_eq!(stats.benign.delivered, 1, "no collateral damage");
    }

    #[test]
    fn signature_filter_matches_raw_mf() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let scheme = crate::dpm::DpmScheme::new();
        // First run: learn the attack signature.
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::default(),
        );
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 0, NodeId(0), NodeId(15), TrafficClass::Attack),
        );
        sim.run();
        let sig = sim.delivered()[0].packet.header.identification.raw();

        // Second run: blocked.
        let filter = SignatureFilter::new();
        filter.block(sig);
        let mut sim2 = Simulation::with_filter(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            &filter,
            SimConfig::default(),
        );
        sim2.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(0), NodeId(15), TrafficClass::Attack),
        );
        let stats = sim2.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
    }

    #[test]
    fn empty_filters_pass_everything() {
        let q = SourceQuarantine::new();
        assert!(q.is_empty());
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let p = mk_packet(&map, 0, NodeId(0), NodeId(1), TrafficClass::Attack);
        assert!(!q.block_at_injection(&p, &topo.coord(NodeId(0))));
        let s = SignatureFilter::new();
        assert!(!s.block_at_delivery(&p, &topo.coord(NodeId(1))));
    }

    #[test]
    fn ingress_filter_blocks_spoofed_injections_only() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = ddpm_topology::FaultSet::none();
        let marker = ddpm_sim::NoMarking;
        let ingress = IngressFilter::new(topo.clone(), map.clone());
        let mut sim = Simulation::with_filter(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &marker,
            &ingress,
            SimConfig::default(),
        );
        // Spoofed attack packet: blocked at its own switch.
        let mut spoofed = mk_packet(&map, 0, NodeId(2), NodeId(9), TrafficClass::Attack);
        spoofed.header.src = map.ip_of(NodeId(7));
        sim.schedule(SimTime::ZERO, spoofed);
        // Honest attack packet (attacker uses its real address): passes —
        // ingress filtering does not stop a non-spoofing flooder.
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 1, NodeId(2), NodeId(9), TrafficClass::Attack),
        );
        // Honest benign packet: passes.
        sim.schedule(
            SimTime::ZERO,
            mk_packet(&map, 2, NodeId(3), NodeId(9), TrafficClass::Benign),
        );
        let stats = sim.run();
        assert_eq!(stats.attack.dropped_filtered, 1);
        assert_eq!(stats.attack.delivered, 1);
        assert_eq!(stats.benign.delivered, 1);
    }
}
