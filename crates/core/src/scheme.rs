//! Concrete [`MarkingScheme`] plugins and the scheme factory.
//!
//! `ddpm-sim` defines the two-sided plugin contract
//! ([`MarkingScheme`] = switch-side [`Marker`] + victim-side
//! [`Collector`] + budget/cost introspection); this module implements it
//! for every scheme the crate provides and owns the only place a
//! [`SchemeSpec`] becomes a live object: [`build_scheme`], which runs
//! the per-topology feasibility checks (Table 1–3 walls, power-of-two
//! radices, Tracemax path capacity) and reports them as range-checked
//! errors rather than panics.
//!
//! Collector semantics per scheme — each documents its candidate set and
//! what its `confidence` measures:
//!
//! | scheme     | candidates                           | confidence |
//! |------------|--------------------------------------|------------|
//! | `ddpm`     | census of per-packet decodes         | decoded fraction |
//! | `dpm`      | sources whose DOR signature matches  | matched-signature fraction |
//! | `ppm-edge` | reconstructed path far-ends          | 1.0, or 0.5 truncated, 0.0 empty |
//! | `ppm-xor`  | reconstructed path far-ends (XOR)    | 1.0, or 0.5 truncated, 0.0 empty |
//! | `tracemax` | census of per-packet path replays    | replayed (non-overflow) fraction |
//!
//! Documented ambiguities (the cross-scheme property test accepts
//! exactly these, and nothing else, in place of the true source): DPM
//! signature collisions and non-DOR paths; PPM under-collection (too
//! few samples to chain every level) and XOR/truncation blow-up;
//! Tracemax recordings longer than the digit string.

use crate::ddpm::DdpmScheme;
use crate::dpm::DpmScheme;
use crate::ppm::{EdgeMark, EdgePpm, XorMark, XorPpm};
use crate::reconstruct::{reconstruct_paths, reconstruct_paths_xor, DEFAULT_EXPANSION_BUDGET};
use crate::tracemax::TracemaxScheme;
use ddpm_net::{ipv4::DEFAULT_TTL, MarkingField, MF_BITS};
use ddpm_routing::{trace_path, Router, SelectionPolicy};
use ddpm_sim::{Attribution, Collector, HopCost, MarkingScheme, NoMarking, SchemeSpec};
use ddpm_topology::{Coord, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Marking probability used when a scenario or experiment selects a PPM
/// scheme without tuning `p` — Savage's classic 1/25 sampling rate.
pub const DEFAULT_PPM_P: f64 = 0.04;

/// Builds the live scheme object a [`SchemeSpec`] names, checked
/// against `topo`.
///
/// # Errors
/// A human-readable message naming the scheme, the topology and the
/// feasibility wall that was hit (field too small, non-power-of-two
/// radix, recording capacity below the diameter).
pub fn build_scheme(spec: SchemeSpec, topo: &Topology) -> Result<Box<dyn MarkingScheme>, String> {
    let err = |e: &dyn std::fmt::Display| {
        format!(
            "scheme `{}` unavailable on {}: {e}",
            spec.as_str(),
            topo.describe()
        )
    };
    match spec {
        SchemeSpec::None => Ok(Box::new(NoMarking)),
        SchemeSpec::Ddpm => DdpmScheme::new(topo)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::Dpm => Ok(Box::new(DpmScheme)),
        SchemeSpec::PpmEdge => EdgePpm::new(topo, DEFAULT_PPM_P)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::PpmXor => XorPpm::new(topo, DEFAULT_PPM_P)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::Tracemax => TracemaxScheme::new(topo)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
    }
}

// ---------------------------------------------------------------------
// DDPM
// ---------------------------------------------------------------------

struct DdpmCollector<'a> {
    scheme: &'a DdpmScheme,
    topo: &'a Topology,
    dest: Coord,
    sources: HashSet<NodeId>,
    decoded: u64,
    total: u64,
}

impl Collector for DdpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(src) = self.scheme.identify(self.topo, &self.dest, mf) {
            self.sources.insert(self.topo.index(&src));
            self.decoded += 1;
        }
    }

    fn attribute(&mut self) -> Attribution {
        if self.total == 0 {
            return Attribution::none();
        }
        Attribution::from_candidates(
            self.sources.iter().copied().collect(),
            self.decoded as f64 / self.total as f64,
        )
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for DdpmScheme {
    fn mf_bits(&self) -> u32 {
        self.codec().bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Read the vector, add the hop displacement, write it back.
        HopCost {
            field_writes: 1,
            arith_ops: 2,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(DdpmCollector {
            scheme: self,
            topo,
            dest: topo.coord(victim),
            sources: HashSet::new(),
            decoded: 0,
            total: 0,
        })
    }
}

// ---------------------------------------------------------------------
// DPM
// ---------------------------------------------------------------------

struct DpmCollector {
    /// DOR signature -> sources producing it, precomputed for the victim.
    table: HashMap<u16, Vec<NodeId>>,
    seen: HashSet<u16>,
    matched: u64,
    total: u64,
}

impl Collector for DpmCollector {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if self.table.contains_key(&mf.raw()) {
            self.matched += 1;
        }
        self.seen.insert(mf.raw());
    }

    fn attribute(&mut self) -> Attribution {
        if self.total == 0 {
            return Attribution::none();
        }
        let mut candidates = Vec::new();
        for sig in &self.seen {
            if let Some(nodes) = self.table.get(sig) {
                candidates.extend_from_slice(nodes);
            }
        }
        Attribution::from_candidates(candidates, self.matched as f64 / self.total as f64)
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for DpmScheme {
    fn mf_bits(&self) -> u32 {
        // The TTL mod 16 slot walk can touch every MF bit.
        MF_BITS
    }

    fn per_hop_cost(&self) -> HopCost {
        // Hash the switch index, take TTL mod 16, write one bit.
        HopCost {
            field_writes: 1,
            arith_ops: 2,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        // DPM attribution presumes a stable deterministic route per
        // source (§4.3's working regime), so the victim's lookup table
        // maps each node's dimension-order signature to the node.
        // Adaptive routes fragment into signatures outside this table —
        // the documented ambiguity the `dpm` experiment measures.
        let faults = FaultSet::none();
        let dest = topo.coord(victim);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut table: HashMap<u16, Vec<NodeId>> = HashMap::new();
        for src in topo.all_nodes() {
            if topo.index(&src) == victim {
                continue;
            }
            let Ok(path) = trace_path(
                topo,
                &faults,
                Router::DimensionOrder,
                SelectionPolicy::First,
                &mut rng,
                &src,
                &dest,
                topo.diameter() * 2 + 2,
            ) else {
                continue;
            };
            let sig = DpmScheme::signature_of_path(topo, &path, DEFAULT_TTL);
            table.entry(sig).or_default().push(topo.index(&src));
        }
        Box::new(DpmCollector {
            table,
            seen: HashSet::new(),
            matched: 0,
            total: 0,
        })
    }
}

// ---------------------------------------------------------------------
// PPM (edge and XOR variants)
// ---------------------------------------------------------------------

/// Confidence for a reconstruction outcome: reconstruction completeness,
/// not statistical convergence — under-collection is the documented
/// ambiguity PPM keeps until enough samples arrive.
fn reconstruction_confidence(marks: usize, truncated: bool) -> f64 {
    if marks == 0 {
        0.0
    } else if truncated {
        0.5
    } else {
        1.0
    }
}

struct EdgePpmCollector<'a> {
    scheme: &'a EdgePpm,
    victim: NodeId,
    marks: HashSet<EdgeMark>,
    total: u64,
    /// Graph reconstruction is the expensive step; redo it only when a
    /// new mark arrived since the last call.
    cache: Option<(usize, Attribution)>,
}

impl Collector for EdgePpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(mark) = self.scheme.extract(mf) {
            self.marks.insert(mark);
        }
    }

    fn attribute(&mut self) -> Attribution {
        if let Some((n, cached)) = &self.cache {
            if *n == self.marks.len() {
                return cached.clone();
            }
        }
        let r = reconstruct_paths(self.victim, &self.marks, DEFAULT_EXPANSION_BUDGET);
        let att = Attribution::from_candidates(
            r.sources,
            reconstruction_confidence(self.marks.len(), r.truncated),
        );
        self.cache = Some((self.marks.len(), att.clone()));
        att
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for EdgePpm {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Worst case (the coin lands marking): write start index, reset
        // end and distance sub-fields; every other hop ages the counter.
        HopCost {
            field_writes: 3,
            arith_ops: 1,
            probabilistic: true,
        }
    }

    fn collector<'a>(&'a self, _topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(EdgePpmCollector {
            scheme: self,
            victim,
            marks: HashSet::new(),
            total: 0,
            cache: None,
        })
    }
}

struct XorPpmCollector<'a> {
    scheme: &'a XorPpm,
    topo: &'a Topology,
    victim: NodeId,
    marks: HashSet<XorMark>,
    total: u64,
    cache: Option<(usize, Attribution)>,
}

impl Collector for XorPpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(mark) = self.scheme.extract(mf) {
            self.marks.insert(mark);
        }
    }

    fn attribute(&mut self) -> Attribution {
        if let Some((n, cached)) = &self.cache {
            if *n == self.marks.len() {
                return cached.clone();
            }
        }
        let r = reconstruct_paths_xor(self.topo, self.victim, &self.marks, DEFAULT_EXPANSION_BUDGET);
        let att = Attribution::from_candidates(
            r.sources,
            reconstruction_confidence(self.marks.len(), r.truncated),
        );
        self.cache = Some((self.marks.len(), att.clone()));
        att
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for XorPpm {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Worst case: write the XOR seed and reset the distance; the
        // completion hop XORs in place.
        HopCost {
            field_writes: 2,
            arith_ops: 1,
            probabilistic: true,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(XorPpmCollector {
            scheme: self,
            topo,
            victim,
            marks: HashSet::new(),
            total: 0,
            cache: None,
        })
    }
}

// ---------------------------------------------------------------------
// Tracemax
// ---------------------------------------------------------------------

struct TracemaxCollector<'a> {
    scheme: &'a TracemaxScheme,
    topo: &'a Topology,
    dest: Coord,
    sources: HashSet<NodeId>,
    replayed: u64,
    total: u64,
}

impl Collector for TracemaxCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(src) = self.scheme.identify(self.topo, &self.dest, mf) {
            self.sources.insert(self.topo.index(&src));
            self.replayed += 1;
        }
    }

    fn attribute(&mut self) -> Attribution {
        if self.total == 0 {
            return Attribution::none();
        }
        Attribution::from_candidates(
            self.sources.iter().copied().collect(),
            self.replayed as f64 / self.total as f64,
        )
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for TracemaxScheme {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Append one direction digit, bump the hop counter.
        HopCost {
            field_writes: 2,
            arith_ops: 1,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(TracemaxCollector {
            scheme: self,
            topo,
            dest: topo.coord(victim),
            sources: HashSet::new(),
            replayed: 0,
            total: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
    use ddpm_sim::{SimConfig, SimTime, Simulation};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(999, 53),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    #[test]
    fn every_spec_builds_on_a_small_mesh() {
        let topo = Topology::mesh2d(4);
        for spec in SchemeSpec::ALL {
            let scheme = build_scheme(spec, &topo).expect("4x4 mesh fits every scheme");
            assert_eq!(scheme.name(), spec.as_str(), "name/spec mismatch");
            assert!(scheme.mf_bits() <= MF_BITS, "{spec:?} over budget");
            let _ = scheme.per_hop_cost().describe();
        }
    }

    #[test]
    fn infeasible_combinations_are_errors_not_panics() {
        for (spec, topo) in [
            (SchemeSpec::Ddpm, Topology::mesh2d(129)),
            (SchemeSpec::PpmEdge, Topology::mesh2d(16)),
            (SchemeSpec::PpmXor, Topology::mesh(&[3, 4])),
            (SchemeSpec::Tracemax, Topology::mesh2d(8)),
        ] {
            let Err(e) = build_scheme(spec, &topo) else {
                panic!("{spec:?} on {topo} should not build");
            };
            assert!(e.contains(spec.as_str()), "{e}");
            assert!(e.contains(&topo.describe()), "{e}");
        }
    }

    /// One zombie floods one victim over dimension-order routes; every
    /// scheme's collector must end up implicating the true source (the
    /// baseline `none` scheme excepted).
    #[test]
    fn collectors_implicate_the_true_source_under_dor_flood() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let zombie = NodeId(1);
        let victim = NodeId(14);
        for spec in SchemeSpec::ALL {
            let scheme = build_scheme(spec, &topo).unwrap();
            let mut sim = Simulation::new(
                &topo,
                &faults,
                Router::DimensionOrder,
                SelectionPolicy::First,
                &*scheme,
                SimConfig::seeded(42),
            );
            for id in 0..400u64 {
                sim.schedule(SimTime(id * 2), mk_packet(&map, id, zombie, victim));
            }
            sim.run();
            let mut collector = scheme.collector(&topo, victim);
            for d in sim.delivered() {
                collector.observe(d.packet.header.identification);
            }
            assert_eq!(collector.observed(), sim.delivered().len() as u64);
            let att = collector.attribute();
            if spec == SchemeSpec::None {
                assert_eq!(att, Attribution::none());
            } else {
                assert!(
                    att.implicates(zombie),
                    "{spec:?}: {:?} does not implicate {zombie:?}",
                    att.candidates
                );
                assert!(att.confidence > 0.0, "{spec:?}");
            }
            // The single-packet schemes identify immediately and exactly.
            if matches!(spec, SchemeSpec::Ddpm | SchemeSpec::Tracemax) {
                let att = collector.attribute();
                assert_eq!(att, Attribution::exact(zombie), "{spec:?}");
            }
        }
    }

    /// PPM's attribution cache invalidates when new marks arrive.
    #[test]
    fn ppm_collector_cache_tracks_new_marks() {
        let topo = Topology::mesh2d(4);
        let scheme = EdgePpm::new(&topo, DEFAULT_PPM_P).unwrap();
        let path = [
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
        ];
        let marks = EdgePpm::enumerate_marks(&topo, &path);
        let victim = topo.index(&path[2]);
        let mut c = scheme.collector(&topo, victim);
        assert_eq!(c.attribute(), Attribution::none());
        // Feed synthetic completed marks through the wire format,
        // nearest level first so every step extends the chain.
        for m in marks.iter().rev() {
            let mut mf = MarkingField::zero();
            // marked flag, not fresh, start/end/distance per layout.
            let l = scheme.layout();
            mf.set_bit(0, true);
            mf.set_bits(2, l.dist_bits, m.distance as u16);
            mf.set_bits(2 + l.dist_bits, l.index_bits, m.end.0 as u16);
            mf.set_bits(2 + l.dist_bits + l.index_bits, l.index_bits, m.start.0 as u16);
            c.observe(mf);
            let att = c.attribute();
            assert!(!att.candidates.is_empty());
        }
        assert_eq!(c.attribute().single(), Some(topo.index(&path[0])));
    }
}
