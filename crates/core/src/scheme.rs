//! Concrete [`MarkingScheme`] plugins and the scheme factory.
//!
//! `ddpm-sim` defines the two-sided plugin contract
//! ([`MarkingScheme`] = switch-side [`Marker`] + victim-side
//! [`Collector`] + budget/cost introspection); this module implements it
//! for every scheme the crate provides and owns the only place a
//! [`SchemeSpec`] becomes a live object: [`build_scheme`], which runs
//! the per-topology feasibility checks (Table 1–3 walls, power-of-two
//! radices, Tracemax path capacity) and reports them as range-checked
//! errors rather than panics.
//!
//! Collector semantics per scheme — each documents its candidate set and
//! what its `confidence` measures:
//!
//! | scheme     | candidates                           | confidence |
//! |------------|--------------------------------------|------------|
//! | `ddpm`     | census of per-packet decodes         | decoded fraction |
//! | `dpm`      | sources whose DOR signature matches  | matched-signature fraction |
//! | `ppm-edge` | reconstructed path far-ends          | 1.0, or 0.5 truncated, 0.0 empty |
//! | `ppm-xor`  | reconstructed path far-ends (XOR)    | 1.0, or 0.5 truncated, 0.0 empty |
//! | `tracemax` | census of per-packet path replays    | replayed (non-overflow) fraction |
//!
//! Documented ambiguities (the cross-scheme property test accepts
//! exactly these, and nothing else, in place of the true source): DPM
//! signature collisions and non-DOR paths; PPM under-collection (too
//! few samples to chain every level) and XOR/truncation blow-up;
//! Tracemax recordings longer than the digit string.

use crate::auth::{default_tag_bits, Authenticated, MIN_TAG_BITS};
use crate::ddpm::DdpmScheme;
use crate::dpm::DpmScheme;
use crate::ppm::{EdgeMark, EdgePpm, XorMark, XorPpm};
use crate::reconstruct::{reconstruct_paths, reconstruct_paths_xor, DEFAULT_EXPANSION_BUDGET};
use crate::tracemax::TracemaxScheme;
use ddpm_net::{ipv4::DEFAULT_TTL, MarkingField, MF_BITS};
use ddpm_routing::{trace_path, Router, SelectionPolicy};
use ddpm_sim::{Attribution, Collector, HopCost, MarkingScheme, NoMarking, SchemeSpec};
use ddpm_topology::{Coord, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// Marking probability used when a scenario or experiment selects a PPM
/// scheme without tuning `p` — Savage's classic 1/25 sampling rate.
pub const DEFAULT_PPM_P: f64 = 0.04;

/// The marking key trusted switches share when a run does not supply
/// one. Its value is irrelevant to honest behaviour, and the adversary
/// model never reads it — compromised marking planes guess tags, they
/// do not steal keys (DESIGN.md §12).
pub const DEFAULT_AUTH_KEY: u64 = 0x0DD5_EC00_5EED_0001;

/// Default tag width for `auth-dpm` (slots shrink to `16 − t`).
const DPM_TAG_BITS: u32 = 8;

/// Default tag width for `auth-tracemax` (recording capacity pays, so
/// take the minimum).
const TRACEMAX_TAG_BITS: u32 = MIN_TAG_BITS;

/// Builds the live scheme object a [`SchemeSpec`] names, checked
/// against `topo`, with each `auth-*` scheme's default tag width.
///
/// # Errors
/// A human-readable message naming the scheme, the topology and the
/// feasibility wall that was hit (field too small, non-power-of-two
/// radix, recording capacity below the diameter, no room for the tag).
pub fn build_scheme(spec: SchemeSpec, topo: &Topology) -> Result<Box<dyn MarkingScheme>, String> {
    build_scheme_with(spec, topo, None)
}

/// [`build_scheme`] with an explicit tag width for `auth-*` schemes.
///
/// `tag_bits` carves that many bits off the inner scheme's budget for
/// the keyed tag; `None` takes the scheme's default. Passing `Some` for
/// an unauthenticated scheme is a configuration error.
///
/// # Errors
/// As [`build_scheme`], plus tag-width walls: below
/// [`MIN_TAG_BITS`](crate::auth::MIN_TAG_BITS), above
/// [`MAX_TAG_BITS`](crate::auth::MAX_TAG_BITS), wider than the inner
/// scheme leaves spare, or supplied for a scheme that takes none.
pub fn build_scheme_with(
    spec: SchemeSpec,
    topo: &Topology,
    tag_bits: Option<u32>,
) -> Result<Box<dyn MarkingScheme>, String> {
    let err = |e: &dyn std::fmt::Display| {
        format!(
            "scheme `{}` unavailable on {}: {e}",
            spec.as_str(),
            topo.describe()
        )
    };
    if tag_bits.is_some() && !spec.is_auth() {
        return Err(format!(
            "scheme `{}` takes no `tag_bits` (only auth-* schemes carry a tag)",
            spec.as_str()
        ));
    }
    if spec.is_auth() {
        let (base, t) = auth_parts(spec, topo, tag_bits)?;
        return Authenticated::new(base, spec.as_str(), DEFAULT_AUTH_KEY, t)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e));
    }
    match spec {
        SchemeSpec::None => Ok(Box::new(NoMarking)),
        SchemeSpec::Ddpm => DdpmScheme::new(topo)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::Dpm => Ok(Box::new(DpmScheme::new())),
        SchemeSpec::PpmEdge => EdgePpm::new(topo, DEFAULT_PPM_P)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::PpmXor => XorPpm::new(topo, DEFAULT_PPM_P)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        SchemeSpec::Tracemax => TracemaxScheme::new(topo)
            .map(|s| Box::new(s) as Box<dyn MarkingScheme>)
            .map_err(|e| err(&e)),
        _ => unreachable!("auth specs handled above"),
    }
}

/// The per-scheme carving rule: how an `auth-*` spec splits the field
/// between its base scheme and the tag. Returns the base scheme (built
/// to fit next to a `t`-bit tag) and `t` itself; [`Authenticated::new`]
/// then enforces the generic tag-width walls.
fn auth_parts(
    spec: SchemeSpec,
    topo: &Topology,
    requested: Option<u32>,
) -> Result<(Box<dyn MarkingScheme>, u32), String> {
    let err = |e: &dyn std::fmt::Display| {
        format!(
            "scheme `{}` unavailable on {}: {e}",
            spec.as_str(),
            topo.describe()
        )
    };
    let spare_default = |bits: u32| {
        default_tag_bits(MF_BITS.saturating_sub(bits)).unwrap_or(MIN_TAG_BITS)
    };
    match spec {
        // DDPM and PPM have fixed per-topology budgets; the tag takes
        // (up to MAX_TAG_BITS of) whatever is spare.
        SchemeSpec::AuthDdpm => {
            let inner = DdpmScheme::new(topo).map_err(|e| err(&e))?;
            let t = requested.unwrap_or_else(|| spare_default(inner.codec().bits_used()));
            Ok((Box::new(inner), t))
        }
        SchemeSpec::AuthPpmEdge => {
            let inner = EdgePpm::new(topo, DEFAULT_PPM_P).map_err(|e| err(&e))?;
            let t = requested.unwrap_or_else(|| spare_default(inner.bits_used()));
            Ok((Box::new(inner), t))
        }
        SchemeSpec::AuthPpmXor => {
            let inner = XorPpm::new(topo, DEFAULT_PPM_P).map_err(|e| err(&e))?;
            let t = requested.unwrap_or_else(|| spare_default(inner.bits_used()));
            Ok((Box::new(inner), t))
        }
        // DPM and Tracemax would use all 16 bits; shrink them to fit.
        SchemeSpec::AuthDpm => {
            let t = requested.unwrap_or(DPM_TAG_BITS);
            let slots = MF_BITS.saturating_sub(t.min(MF_BITS)).max(1);
            Ok((Box::new(DpmScheme::with_slots(slots)), t))
        }
        SchemeSpec::AuthTracemax => {
            let t = requested.unwrap_or(TRACEMAX_TAG_BITS);
            let inner = TracemaxScheme::with_budget(topo, MF_BITS.saturating_sub(t))
                .map_err(|e| err(&e))?;
            Ok((Box::new(inner), t))
        }
        _ => unreachable!("auth_parts is only called for auth specs"),
    }
}

/// Everything a compromised switch needs to forge a *well-formed* story
/// for the run's scheme: an unauthenticated replica of the base scheme
/// (the algorithms are public; the key is not) and the field split, so
/// the forger knows which bits carry the story and which it can only
/// guess. Built by [`forge_plan`].
pub struct ForgePlan {
    /// The unauthenticated base-scheme replica, carved exactly like the
    /// run's scheme (same slots/capacity under an `auth-*` spec).
    pub replica: Box<dyn MarkingScheme>,
    /// Field bits the base story occupies (`replica.mf_bits()`).
    pub story_bits: u32,
    /// Tag bits the adversary must guess; `0` for unauthenticated
    /// schemes.
    pub tag_bits: u32,
}

/// Builds the [`ForgePlan`] for `spec` on `topo` — what
/// `ddpm_attack::AdversaryModel` uses to fabricate marks.
///
/// # Errors
/// The same feasibility walls as [`build_scheme_with`] (a scheme the
/// run cannot build cannot be forged against either).
pub fn forge_plan(
    spec: SchemeSpec,
    topo: &Topology,
    tag_bits: Option<u32>,
) -> Result<ForgePlan, String> {
    if spec.is_auth() {
        let (replica, t) = auth_parts(spec, topo, tag_bits)?;
        let story_bits = replica.mf_bits();
        Ok(ForgePlan {
            replica,
            story_bits,
            tag_bits: t,
        })
    } else {
        let replica = build_scheme_with(spec, topo, None)?;
        let story_bits = replica.mf_bits();
        Ok(ForgePlan {
            replica,
            story_bits,
            tag_bits: 0,
        })
    }
}

// ---------------------------------------------------------------------
// DDPM
// ---------------------------------------------------------------------

struct DdpmCollector<'a> {
    scheme: &'a DdpmScheme,
    topo: &'a Topology,
    dest: Coord,
    /// Decoded source -> packets backing it, for the quorum filter.
    support: HashMap<NodeId, u64>,
    total: u64,
}

impl Collector for DdpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(src) = self.scheme.identify(self.topo, &self.dest, mf) {
            *self.support.entry(self.topo.index(&src)).or_insert(0) += 1;
        }
    }

    fn attribute(&mut self) -> Attribution {
        Attribution::from_census(self.support.iter().map(|(&n, &c)| (n, c)), self.total)
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for DdpmScheme {
    fn mf_bits(&self) -> u32 {
        self.codec().bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Read the vector, add the hop displacement, write it back.
        HopCost {
            field_writes: 1,
            arith_ops: 2,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(DdpmCollector {
            scheme: self,
            topo,
            dest: topo.coord(victim),
            support: HashMap::new(),
            total: 0,
        })
    }
}

// ---------------------------------------------------------------------
// DPM
// ---------------------------------------------------------------------

struct DpmCollector {
    /// DOR signature -> sources producing it, precomputed for the victim.
    table: HashMap<u16, Vec<NodeId>>,
    /// Observed signature -> packet count, for the quorum filter.
    seen: HashMap<u16, u64>,
    total: u64,
}

impl Collector for DpmCollector {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        *self.seen.entry(mf.raw()).or_insert(0) += 1;
    }

    fn attribute(&mut self) -> Attribution {
        // Signature collisions spread one packet's support over every
        // matching node; `from_candidates` clamps the confidence, so
        // the collision ambiguity shows up as extra candidates (the
        // documented DPM weakness), never as >1 confidence.
        let mut support: HashMap<NodeId, u64> = HashMap::new();
        for (sig, count) in &self.seen {
            if let Some(nodes) = self.table.get(sig) {
                for node in nodes {
                    *support.entry(*node).or_insert(0) += count;
                }
            }
        }
        Attribution::from_census(support, self.total)
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for DpmScheme {
    fn mf_bits(&self) -> u32 {
        // The TTL mod `slots` walk can touch that many low bits.
        self.slots()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Hash the switch index, take TTL mod 16, write one bit.
        HopCost {
            field_writes: 1,
            arith_ops: 2,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        // DPM attribution presumes a stable deterministic route per
        // source (§4.3's working regime), so the victim's lookup table
        // maps each node's dimension-order signature to the node.
        // Adaptive routes fragment into signatures outside this table —
        // the documented ambiguity the `dpm` experiment measures.
        let faults = FaultSet::none();
        let dest = topo.coord(victim);
        let mut rng = SmallRng::seed_from_u64(0);
        let mut table: HashMap<u16, Vec<NodeId>> = HashMap::new();
        for src in topo.all_nodes() {
            if topo.index(&src) == victim {
                continue;
            }
            let Ok(path) = trace_path(
                topo,
                &faults,
                Router::DimensionOrder,
                SelectionPolicy::First,
                &mut rng,
                &src,
                &dest,
                topo.diameter() * 2 + 2,
            ) else {
                continue;
            };
            let sig =
                DpmScheme::signature_of_path_slots(topo, &path, DEFAULT_TTL, self.slots());
            table.entry(sig).or_default().push(topo.index(&src));
        }
        Box::new(DpmCollector {
            table,
            seen: HashMap::new(),
            total: 0,
        })
    }
}

// ---------------------------------------------------------------------
// PPM (edge and XOR variants)
// ---------------------------------------------------------------------

/// Confidence for a reconstruction outcome: reconstruction completeness,
/// not statistical convergence — under-collection is the documented
/// ambiguity PPM keeps until enough samples arrive.
fn reconstruction_confidence(marks: usize, truncated: bool) -> f64 {
    if marks == 0 {
        0.0
    } else if truncated {
        0.5
    } else {
        1.0
    }
}

struct EdgePpmCollector<'a> {
    scheme: &'a EdgePpm,
    victim: NodeId,
    marks: HashSet<EdgeMark>,
    total: u64,
    /// Graph reconstruction is the expensive step; redo it only when a
    /// new mark arrived since the last call.
    cache: Option<(usize, Attribution)>,
}

impl Collector for EdgePpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(mark) = self.scheme.extract(mf) {
            self.marks.insert(mark);
        }
    }

    fn attribute(&mut self) -> Attribution {
        if let Some((n, cached)) = &self.cache {
            if *n == self.marks.len() {
                return cached.clone();
            }
        }
        let r = reconstruct_paths(self.victim, &self.marks, DEFAULT_EXPANSION_BUDGET);
        let att = Attribution::from_candidates(
            r.sources,
            reconstruction_confidence(self.marks.len(), r.truncated),
        );
        self.cache = Some((self.marks.len(), att.clone()));
        att
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for EdgePpm {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Worst case (the coin lands marking): write start index, reset
        // end and distance sub-fields; every other hop ages the counter.
        HopCost {
            field_writes: 3,
            arith_ops: 1,
            probabilistic: true,
        }
    }

    fn collector<'a>(&'a self, _topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(EdgePpmCollector {
            scheme: self,
            victim,
            marks: HashSet::new(),
            total: 0,
            cache: None,
        })
    }
}

struct XorPpmCollector<'a> {
    scheme: &'a XorPpm,
    topo: &'a Topology,
    victim: NodeId,
    marks: HashSet<XorMark>,
    total: u64,
    cache: Option<(usize, Attribution)>,
}

impl Collector for XorPpmCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(mark) = self.scheme.extract(mf) {
            self.marks.insert(mark);
        }
    }

    fn attribute(&mut self) -> Attribution {
        if let Some((n, cached)) = &self.cache {
            if *n == self.marks.len() {
                return cached.clone();
            }
        }
        let r = reconstruct_paths_xor(self.topo, self.victim, &self.marks, DEFAULT_EXPANSION_BUDGET);
        let att = Attribution::from_candidates(
            r.sources,
            reconstruction_confidence(self.marks.len(), r.truncated),
        );
        self.cache = Some((self.marks.len(), att.clone()));
        att
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for XorPpm {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Worst case: write the XOR seed and reset the distance; the
        // completion hop XORs in place.
        HopCost {
            field_writes: 2,
            arith_ops: 1,
            probabilistic: true,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(XorPpmCollector {
            scheme: self,
            topo,
            victim,
            marks: HashSet::new(),
            total: 0,
            cache: None,
        })
    }
}

// ---------------------------------------------------------------------
// Tracemax
// ---------------------------------------------------------------------

struct TracemaxCollector<'a> {
    scheme: &'a TracemaxScheme,
    topo: &'a Topology,
    dest: Coord,
    /// Replayed source -> packets backing it, for the quorum filter.
    support: HashMap<NodeId, u64>,
    total: u64,
}

impl Collector for TracemaxCollector<'_> {
    fn observe(&mut self, mf: MarkingField) {
        self.total += 1;
        if let Some(src) = self.scheme.identify(self.topo, &self.dest, mf) {
            *self.support.entry(self.topo.index(&src)).or_insert(0) += 1;
        }
    }

    fn attribute(&mut self) -> Attribution {
        Attribution::from_census(self.support.iter().map(|(&n, &c)| (n, c)), self.total)
    }

    fn observed(&self) -> u64 {
        self.total
    }
}

impl MarkingScheme for TracemaxScheme {
    fn mf_bits(&self) -> u32 {
        self.bits_used()
    }

    fn per_hop_cost(&self) -> HopCost {
        // Append one direction digit, bump the hop counter.
        HopCost {
            field_writes: 2,
            arith_ops: 1,
            probabilistic: false,
        }
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        Box::new(TracemaxCollector {
            scheme: self,
            topo,
            dest: topo.coord(victim),
            support: HashMap::new(),
            total: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
    use ddpm_sim::{SimConfig, SimTime, Simulation};

    fn mk_packet(map: &AddrMap, id: u64, src: NodeId, dst: NodeId) -> Packet {
        Packet {
            id: PacketId(id),
            header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
            l4: L4::udp(999, 53),
            true_source: src,
            dest_node: dst,
            class: TrafficClass::Attack,
        }
    }

    /// Auth specs whose inner budget leaves too little spare for a tag
    /// on the 4x4 mesh (edge PPM uses ~13 of 16 bits; Tracemax's
    /// shrunken budget cannot cover the diameter).
    const MESH4_INFEASIBLE: [SchemeSpec; 2] =
        [SchemeSpec::AuthPpmEdge, SchemeSpec::AuthTracemax];

    #[test]
    fn every_spec_builds_on_a_small_mesh() {
        let topo = Topology::mesh2d(4);
        for spec in SchemeSpec::ALL {
            if MESH4_INFEASIBLE.contains(&spec) {
                let Err(e) = build_scheme(spec, &topo) else {
                    panic!("{spec:?} should hit the documented wall");
                };
                assert!(e.contains(spec.as_str()), "{e}");
                continue;
            }
            let scheme = build_scheme(spec, &topo).expect("4x4 mesh fits every scheme");
            assert_eq!(scheme.name(), spec.as_str(), "name/spec mismatch");
            assert!(scheme.mf_bits() <= MF_BITS, "{spec:?} over budget");
            let _ = scheme.per_hop_cost().describe();
        }
    }

    #[test]
    fn infeasible_combinations_are_errors_not_panics() {
        for (spec, topo) in [
            (SchemeSpec::Ddpm, Topology::mesh2d(129)),
            (SchemeSpec::PpmEdge, Topology::mesh2d(16)),
            (SchemeSpec::PpmXor, Topology::mesh(&[3, 4])),
            (SchemeSpec::Tracemax, Topology::mesh2d(8)),
            // The auth feasibility wall: the inner scheme fits but the
            // spare budget cannot host even the minimum tag.
            (SchemeSpec::AuthPpmEdge, Topology::mesh2d(4)),
            (SchemeSpec::AuthTracemax, Topology::mesh2d(4)),
        ] {
            let Err(e) = build_scheme(spec, &topo) else {
                panic!("{spec:?} on {topo} should not build");
            };
            assert!(e.contains(spec.as_str()), "{e}");
            assert!(e.contains(&topo.describe()), "{e}");
        }
    }

    /// One zombie floods one victim over dimension-order routes; every
    /// scheme's collector must end up implicating the true source (the
    /// baseline `none` scheme excepted).
    #[test]
    fn collectors_implicate_the_true_source_under_dor_flood() {
        let topo = Topology::mesh2d(4);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let zombie = NodeId(1);
        let victim = NodeId(14);
        for spec in SchemeSpec::ALL {
            if MESH4_INFEASIBLE.contains(&spec) {
                continue;
            }
            let scheme = build_scheme(spec, &topo).unwrap();
            let mut sim = Simulation::new(
                &topo,
                &faults,
                Router::DimensionOrder,
                SelectionPolicy::First,
                &*scheme,
                SimConfig::seeded(42),
            );
            for id in 0..400u64 {
                sim.schedule(SimTime(id * 2), mk_packet(&map, id, zombie, victim));
            }
            sim.run();
            // observe_packet: the auth-* collectors verify the keyed
            // tag from the delivered header (honest runs pass), plain
            // collectors fall through to field observation.
            let mut collector = scheme.collector(&topo, victim);
            for d in sim.delivered() {
                collector.observe_packet(&d.packet);
            }
            assert_eq!(collector.observed(), sim.delivered().len() as u64);
            let att = collector.attribute();
            if spec == SchemeSpec::None {
                assert_eq!(att, Attribution::none());
            } else {
                assert!(
                    att.implicates(zombie),
                    "{spec:?}: {:?} does not implicate {zombie:?}",
                    att.candidates
                );
                assert!(att.confidence > 0.0, "{spec:?}");
            }
            // The single-packet schemes identify immediately and
            // exactly, with or without the auth wrapper.
            if matches!(
                spec,
                SchemeSpec::Ddpm | SchemeSpec::Tracemax | SchemeSpec::AuthDdpm
            ) {
                let att = collector.attribute();
                assert_eq!(att, Attribution::exact(zombie), "{spec:?}");
            }
        }
    }

    /// PPM's attribution cache invalidates when new marks arrive.
    #[test]
    fn ppm_collector_cache_tracks_new_marks() {
        let topo = Topology::mesh2d(4);
        let scheme = EdgePpm::new(&topo, DEFAULT_PPM_P).unwrap();
        let path = [
            Coord::new(&[0, 0]),
            Coord::new(&[1, 0]),
            Coord::new(&[2, 0]),
        ];
        let marks = EdgePpm::enumerate_marks(&topo, &path);
        let victim = topo.index(&path[2]);
        let mut c = scheme.collector(&topo, victim);
        assert_eq!(c.attribute(), Attribution::none());
        // Feed synthetic completed marks through the wire format,
        // nearest level first so every step extends the chain.
        for m in marks.iter().rev() {
            let mut mf = MarkingField::zero();
            // marked flag, not fresh, start/end/distance per layout.
            let l = scheme.layout();
            mf.set_bit(0, true);
            mf.set_bits(2, l.dist_bits, m.distance as u16);
            mf.set_bits(2 + l.dist_bits, l.index_bits, m.end.0 as u16);
            mf.set_bits(2 + l.dist_bits + l.index_bits, l.index_bits, m.start.0 as u16);
            c.observe(mf);
            let att = c.attribute();
            assert!(!att.candidates.is_empty());
        }
        assert_eq!(c.attribute().single(), Some(topo.index(&path[0])));
    }
}
