//! Song & Perrig's Advanced Marking Scheme (AMS) — the §2 baseline that
//! trades a router map for convergence speed.
//!
//! "Song and Perrig proposed an advanced and authenticated marking
//! scheme. With an assumption that a victim has a complete router map,
//! it can trace back by receiving less than one eighth of the packets
//! than the PPM scheme, with robustness to the compromised routers."
//! (§2, ref \[17\])
//!
//! The trick: instead of shipping fragments of edge identifiers, each
//! marking switch writes a *short hash of its own identity* — the MF
//! holds `[distance:5][hash:11]` — and the victim disambiguates using
//! its complete topology map: a hash at distance `d+1` is only accepted
//! if it matches a *neighbour* (in the map) of a switch already accepted
//! at distance `d`. One mark per (switch, distance) suffices, so
//! convergence is the plain `d`-coupon collector instead of FMS's
//! `k·d`-coupon collector — the "one eighth" (at `k = 8`) in the quote.
//!
//! What it does **not** fix — measured in the tests and the `ppm-conv`
//! experiment — is route instability: under adaptive routing the victim
//! collects hashes from many interleaved paths and the map-guided
//! frontier balloons into a candidate *set*, not a path. DDPM needs no
//! map, no packet collection, and no stable route.

use ddpm_net::{MarkingField, Packet};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::{Coord, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::{HashMap, HashSet};

const DIST_BITS: u32 = 5;
const HASH_BITS: u32 = 11;
const OFF_DIST: u32 = 0;
const OFF_HASH: u32 = DIST_BITS;
const MAX_DIST: u16 = (1 << DIST_BITS) - 1;

/// The 11-bit identity hash AMS switches write.
#[must_use]
pub fn hash11(node: NodeId) -> u16 {
    let mut x = node.0.wrapping_add(0x7F4A_7C15);
    x ^= x >> 13;
    x = x.wrapping_mul(0x85EB_CA6B);
    x ^= x >> 16;
    (x & 0x7FF) as u16
}

/// One collected AMS mark.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct AmsMark {
    /// Hops since the mark was written.
    pub distance: u16,
    /// 11-bit identity hash of the marking switch.
    pub hash: u16,
}

/// The AMS marking scheme.
#[derive(Clone, Copy, Debug)]
pub struct AmsScheme {
    /// Marking probability `p`.
    pub p: f64,
}

impl AmsScheme {
    /// Builds the scheme with marking probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is outside `0.0..=1.0`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        Self { p }
    }

    /// One switch's marking step.
    pub fn step(&self, mf: &mut MarkingField, node: NodeId, mark: bool) {
        if mark {
            mf.set_bits(OFF_HASH, HASH_BITS, hash11(node));
            mf.set_bits(OFF_DIST, DIST_BITS, 0);
        } else {
            let d = mf.get_bits(OFF_DIST, DIST_BITS);
            if d < MAX_DIST {
                mf.set_bits(OFF_DIST, DIST_BITS, d + 1);
            }
        }
    }

    /// Victim-side extraction.
    #[must_use]
    pub fn extract(&self, mf: MarkingField) -> AmsMark {
        AmsMark {
            distance: mf.get_bits(OFF_DIST, DIST_BITS),
            hash: mf.get_bits(OFF_HASH, HASH_BITS),
        }
    }
}

impl Marker for AmsScheme {
    fn name(&self) -> &'static str {
        "ppm-ams"
    }

    fn on_inject(&self, pkt: &mut Packet, _src: &Coord, _env: &MarkEnv<'_>) {
        pkt.header.identification.clear();
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        _next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let mark = rng.gen_bool(self.p);
        self.step(&mut pkt.header.identification, env.topo.index(cur), mark);
    }
}

/// Outcome of map-guided AMS reconstruction.
#[derive(Clone, Debug, Default)]
pub struct AmsReconstruction {
    /// Accepted switches per distance level, nearest the victim first.
    pub levels: Vec<Vec<NodeId>>,
    /// Candidate sources: the switches accepted at the deepest level.
    pub sources: Vec<NodeId>,
}

impl AmsReconstruction {
    /// The maximum frontier width — 1 for a clean single path; larger
    /// values measure the ambiguity adaptive routing induces.
    #[must_use]
    pub fn max_frontier(&self) -> usize {
        self.levels.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Map-guided reconstruction: walks the topology ("complete router
/// map") upstream from the victim, accepting at distance `d+1` only
/// neighbours of switches accepted at distance `d` whose hash was
/// observed at that level.
#[must_use]
pub fn reconstruct_ams(
    topo: &Topology,
    victim: NodeId,
    marks: &HashSet<AmsMark>,
) -> AmsReconstruction {
    let mut by_dist: HashMap<u16, HashSet<u16>> = HashMap::new();
    let mut max_d = 0;
    for m in marks {
        by_dist.entry(m.distance).or_default().insert(m.hash);
        max_d = max_d.max(m.distance);
    }
    let mut out = AmsReconstruction::default();
    let mut frontier: Vec<NodeId> = vec![victim];
    for d in 0..=max_d {
        let Some(hashes) = by_dist.get(&d) else {
            break;
        };
        let mut next: Vec<NodeId> = Vec::new();
        for &f in &frontier {
            for (_, nb) in topo.neighbors(&topo.coord(f)) {
                let id = topo.index(&nb);
                if hashes.contains(&hash11(id)) && !next.contains(&id) {
                    next.push(id);
                }
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_unstable();
        out.levels.push(next.clone());
        frontier = next;
    }
    out.sources = out.levels.last().cloned().unwrap_or_default();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, Ipv4Header, PacketId, Protocol, TrafficClass, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::FaultSet;

    fn collect_marks(
        topo: &Topology,
        router: Router,
        policy: SelectionPolicy,
        packets: u64,
        seed: u64,
    ) -> HashSet<AmsMark> {
        let scheme = AmsScheme::new(0.1);
        let map = AddrMap::for_topology(topo);
        let faults = FaultSet::none();
        let mut sim = Simulation::new(
            topo,
            &faults,
            router,
            policy,
            &scheme,
            SimConfig::seeded(seed),
        );
        let src = NodeId(0);
        let dst = NodeId(topo.num_nodes() as u32 - 1);
        for k in 0..packets {
            sim.schedule(
                SimTime(k * 4),
                Packet {
                    id: PacketId(k),
                    header: Ipv4Header::new(map.ip_of(src), map.ip_of(dst), Protocol::Udp, 64),
                    l4: L4::udp(1, 7),
                    true_source: src,
                    dest_node: dst,
                    class: TrafficClass::Attack,
                },
            );
        }
        sim.run();
        sim.delivered()
            .iter()
            .map(|d| scheme.extract(d.packet.header.identification))
            .collect()
    }

    #[test]
    fn stable_route_reconstructs_a_single_path() {
        let topo = Topology::mesh2d(8);
        let marks = collect_marks(
            &topo,
            Router::DimensionOrder,
            SelectionPolicy::First,
            3000,
            2,
        );
        let r = reconstruct_ams(&topo, NodeId(63), &marks);
        // 14 switches on the XY path from node 0 (victim excluded).
        assert!(r.levels.len() >= 14, "levels: {}", r.levels.len());
        assert_eq!(
            r.max_frontier(),
            1,
            "stable route + map = unambiguous path: {:?}",
            r.levels
        );
        assert_eq!(r.levels[13], vec![NodeId(0)], "source switch reached");
    }

    #[test]
    fn adaptive_routing_balloons_the_frontier() {
        let topo = Topology::mesh2d(8);
        let marks = collect_marks(
            &topo,
            Router::MinimalAdaptive,
            SelectionPolicy::Random,
            3000,
            3,
        );
        let r = reconstruct_ams(&topo, NodeId(63), &marks);
        assert!(
            r.max_frontier() > 3,
            "adaptive routing must create candidate ambiguity, got {}",
            r.max_frontier()
        );
    }

    #[test]
    fn marks_age_correctly() {
        let scheme = AmsScheme::new(1.0);
        let mut mf = MarkingField::zero();
        scheme.step(&mut mf, NodeId(7), true);
        scheme.step(&mut mf, NodeId(8), false);
        scheme.step(&mut mf, NodeId(9), false);
        let m = scheme.extract(mf);
        assert_eq!(m.distance, 2);
        assert_eq!(m.hash, hash11(NodeId(7)));
    }

    #[test]
    fn hash11_is_spread() {
        let distinct: HashSet<u16> = (0..2048).map(|i| hash11(NodeId(i))).collect();
        assert!(
            distinct.len() > 1200,
            "hash too collision-prone: {}",
            distinct.len()
        );
    }

    #[test]
    fn empty_marks_reconstruct_nothing() {
        let topo = Topology::mesh2d(4);
        let r = reconstruct_ams(&topo, NodeId(0), &HashSet::new());
        assert!(r.levels.is_empty());
        assert!(r.sources.is_empty());
    }
}
