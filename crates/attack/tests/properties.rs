//! Property-based tests for the attack workloads.

use ddpm_attack::{
    BackgroundTraffic, FloodAttack, PacketFactory, SpoofStrategy, SynFloodAttack, TrafficPattern,
    WormOutbreak,
};
use ddpm_net::{AddrMap, TrafficClass};
use ddpm_sim::SimTime;
use ddpm_topology::{NodeId, Topology};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::mesh(&[a, b])),
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::torus(&[a, b])),
        (3usize..=6).prop_map(Topology::hypercube),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every generated workload is internally consistent: unique packet
    /// ids, correct class tags, valid ground truth, headers consistent
    /// with the address map.
    #[test]
    fn flood_workloads_are_well_formed(
        topo in arb_topology(),
        seed in any::<u64>(),
        zombies in 1usize..5,
        per_zombie in 1u32..40,
    ) {
        let n = topo.num_nodes() as u32;
        let map = AddrMap::for_topology(&topo);
        let mut factory = PacketFactory::new(map.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let victim = NodeId(n - 1);
        let zombies: Vec<NodeId> =
            (0..zombies).map(|i| NodeId(i as u32 * (n / 6).max(1) % (n - 1))).collect();
        let mut dedup = zombies.clone();
        dedup.sort();
        dedup.dedup();
        let flood = FloodAttack {
            packets_per_zombie: per_zombie,
            ..FloodAttack::new(dedup.clone(), victim)
        };
        let w = flood.generate(&mut factory, &mut rng);
        prop_assert_eq!(w.len(), dedup.len() * per_zombie as usize);
        let mut ids = std::collections::HashSet::new();
        for (_, p) in &w {
            prop_assert!(ids.insert(p.id), "duplicate packet id");
            prop_assert_eq!(p.class, TrafficClass::Attack);
            prop_assert_eq!(p.dest_node, victim);
            prop_assert!(dedup.contains(&p.true_source));
            prop_assert_eq!(p.header.dst, map.ip_of(victim));
            // Random-in-cluster spoofing always claims an in-block address.
            prop_assert!(map.contains(p.header.src));
        }
    }

    /// SYN floods generate only SYNs, scheduled after `start`.
    #[test]
    fn syn_floods_generate_only_syns(
        topo in arb_topology(),
        seed in any::<u64>(),
        start in 0u64..5_000,
    ) {
        let n = topo.num_nodes() as u32;
        let map = AddrMap::for_topology(&topo);
        let mut factory = PacketFactory::new(map);
        let mut rng = SmallRng::seed_from_u64(seed);
        let flood = SynFloodAttack {
            start: SimTime(start),
            syns_per_zombie: 25,
            ..SynFloodAttack::new(vec![NodeId(0)], NodeId(n - 1))
        };
        let w = flood.generate(&mut factory, &mut rng);
        for (t, p) in &w {
            prop_assert!(t.0 >= start);
            prop_assert!(p.l4.is_syn());
        }
    }

    /// Background traffic: benign class, honest headers, horizon
    /// respected, never self-addressed.
    #[test]
    fn background_is_honest_and_bounded(
        topo in arb_topology(),
        seed in any::<u64>(),
        interval in 4u64..64,
        duration in 100u64..2_000,
    ) {
        let map = AddrMap::for_topology(&topo);
        let mut factory = PacketFactory::new(map.clone());
        let mut rng = SmallRng::seed_from_u64(seed);
        let bg = BackgroundTraffic {
            pattern: TrafficPattern::Uniform,
            interval,
            duration,
            start: SimTime::ZERO,
        };
        let w = bg.generate(&topo, &mut factory, &mut rng);
        for (t, p) in &w {
            prop_assert!(t.0 < duration);
            prop_assert_eq!(p.class, TrafficClass::Benign);
            prop_assert_ne!(p.true_source, p.dest_node);
            prop_assert!(!p.is_spoofed(&map), "benign traffic must be honest");
        }
    }

    /// Worm outbreaks: monotone growth, bounded by the cluster size,
    /// traffic proportional to the infected population.
    #[test]
    fn worm_growth_invariants(
        seed in any::<u64>(),
        nodes in 8u32..128,
        scans in 1u32..6,
        rounds in 1u32..10,
    ) {
        let side = 16u16; // address pool >= nodes
        let map = AddrMap::for_topology(&Topology::mesh2d(side));
        let mut factory = PacketFactory::new(map);
        let mut rng = SmallRng::seed_from_u64(seed);
        let worm = WormOutbreak {
            scans_per_round: scans,
            rounds,
            spoof: SpoofStrategy::RandomInCluster,
            ..WormOutbreak::new(NodeId(seed as u32 % nodes), nodes)
        };
        let trace = worm.generate(&mut factory, &mut rng);
        prop_assert_eq!(trace.infected_per_round.len(), rounds as usize);
        for w in trace.infected_per_round.windows(2) {
            prop_assert!(w[1] >= w[0], "infection must be monotone");
        }
        for &c in &trace.infected_per_round {
            prop_assert!(c <= nodes);
        }
        let expected_packets: u64 = trace
            .infected_per_round
            .iter()
            .map(|&c| u64::from(c) * u64::from(scans))
            .sum();
        prop_assert_eq!(trace.workload.len() as u64, expected_packets);
        // `infected` includes infections caused by the final round, so it
        // is at least the last round-start count and at most the cluster.
        let last = *trace.infected_per_round.last().unwrap() as usize;
        prop_assert!(trace.infected.len() >= last);
        prop_assert!(trace.infected.len() <= nodes as usize);
    }
}
