//! Cross-scheme Byzantine properties of the [`AdversaryModel`].
//!
//! The load-bearing property: for every `auth-*` scheme, on random
//! topologies, behaviors and compromised-switch sets, the adversary
//! can never *induce* a conviction of the framed innocent — if the
//! victim's quorum collector convicts the framed node under attack, it
//! convicted it on the identical honest run too (a pre-existing
//! collision class of the inner scheme, e.g. DPM's route-signature
//! ambiguity, not a forgery that got through). The unauthenticated
//! baseline is measured alongside: a framing switch on a flood path
//! pollutes the plain-DDPM census with the framed node.

use ddpm_attack::AdversaryModel;
use ddpm_core::build_scheme_with;
use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{
    AdversaryBehavior, AdversarySpec, Attribution, Marker, SchemeSpec, SimConfig, SimTime,
    Simulation,
};
use ddpm_topology::{FaultSet, NodeId, Topology};
use proptest::prelude::*;

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::mesh(&[a, b])),
        (3u16..=8, 3u16..=8).prop_map(|(a, b)| Topology::torus(&[a, b])),
        (3usize..=6).prop_map(Topology::hypercube),
    ]
}

fn arb_behavior() -> impl Strategy<Value = AdversaryBehavior> {
    (0usize..AdversaryBehavior::ALL.len()).prop_map(|i| AdversaryBehavior::ALL[i])
}

/// Runs the fixed two-zombie flood with the given marker and returns
/// the victim-side attribution of `scheme`'s collector plus how many
/// deliveries the collector rejected fail-closed.
fn run_and_attribute(
    topo: &Topology,
    spec: SchemeSpec,
    marker: &dyn Marker,
    zombies: &[NodeId],
    victim: NodeId,
    seed: u64,
) -> (Attribution, u64, Vec<Packet>) {
    let scheme = build_scheme_with(spec, topo, None).expect("caller checked feasibility");
    let map = AddrMap::for_topology(topo);
    let faults = FaultSet::none();
    let cfg = SimConfig::seeded(seed).to_builder().scheme(spec).build();
    let mut sim = Simulation::new(
        topo,
        &faults,
        Router::DimensionOrder,
        SelectionPolicy::First,
        marker,
        cfg,
    );
    let mut id = 0u64;
    for (zi, z) in zombies.iter().enumerate() {
        for k in 0..30u64 {
            sim.schedule(
                SimTime(k * 12 + zi as u64 * 6),
                Packet {
                    id: PacketId(id),
                    header: Ipv4Header::new(map.ip_of(*z), map.ip_of(victim), Protocol::Udp, 64),
                    l4: L4::udp(999, 53),
                    true_source: *z,
                    dest_node: victim,
                    class: TrafficClass::Attack,
                },
            );
            id += 1;
        }
    }
    sim.run();
    let mut coll = scheme.collector(topo, victim);
    let mut delivered = Vec::new();
    for d in sim.delivered() {
        coll.observe_packet(&d.packet);
        delivered.push(d.packet);
    }
    (coll.attribute(), coll.rejected(), delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Auth schemes: no adversary-induced framed conviction, ever.
    #[test]
    fn auth_schemes_admit_no_induced_framing(
        topo in arb_topology(),
        behavior in arb_behavior(),
        switch_seed in any::<u64>(),
        nswitches in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let n = topo.num_nodes() as u32;
        let victim = NodeId(n - 1);
        let zombies = [NodeId(1), NodeId(n / 2)];
        let framed = NodeId(n / 3 + 1);
        prop_assume!(framed != victim && !zombies.contains(&framed));

        // A random compromised set avoiding the named roles.
        let mut switches = Vec::new();
        let mut s = switch_seed;
        while switches.len() < nswitches {
            s = s.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            let cand = NodeId((s >> 33) as u32 % n);
            if cand != victim && cand != framed && !zombies.contains(&cand)
                && !switches.contains(&cand)
            {
                switches.push(cand);
            }
        }
        let aspec = AdversarySpec::new(
            switches,
            behavior,
            behavior.needs_framed().then_some(framed),
            seed,
        );

        for spec in [SchemeSpec::AuthDdpm, SchemeSpec::AuthDpm, SchemeSpec::AuthTracemax] {
            // Feasibility walls (tag bits vs. topology) are out of scope here.
            let Ok(scheme) = build_scheme_with(spec, &topo, None) else { continue };
            let (clean, clean_rejected, _) =
                run_and_attribute(&topo, spec, &*scheme, &zombies, victim, seed);
            prop_assert_eq!(clean_rejected, 0, "honest {} run must verify", spec.as_str());

            let adv = AdversaryModel::new(&*scheme, spec, &topo, aspec.clone(), None)
                .expect("roles are disjoint by construction");
            let (att, _, _) = run_and_attribute(&topo, spec, &adv, &zombies, victim, seed);
            prop_assert!(
                !att.convicts(framed) || clean.convicts(framed),
                "{} on {}: behavior {} with {:?} induced a conviction of innocent {:?}",
                spec.as_str(), topo.describe(), behavior.as_str(), aspec, framed,
            );
        }
    }

    /// The unauthenticated baseline measurably frames: a framing switch
    /// that touches a flood path pollutes the plain-DDPM census with
    /// the framed node on every tampered delivery.
    #[test]
    fn plain_ddpm_framing_is_measurable(
        topo in arb_topology(),
        seed in any::<u64>(),
    ) {
        let n = topo.num_nodes() as u32;
        let victim = NodeId(n - 1);
        let zombies = [NodeId(1), NodeId(n / 2)];
        let framed = NodeId(n / 3 + 1);
        prop_assume!(framed != victim && !zombies.contains(&framed));
        let spec = SchemeSpec::Ddpm;
        let scheme = build_scheme_with(spec, &topo, None).expect("ddpm fits every topology here");

        // Compromise the victim's own last-hop neighbourhood: the first
        // forwarding neighbour guarantees path coverage.
        let evil: Vec<NodeId> = topo
            .neighbors(&topo.coord(victim))
            .into_iter()
            .map(|(_, c)| topo.index(&c))
            .filter(|nb| *nb != framed && !zombies.contains(nb))
            .take(2)
            .collect();
        prop_assume!(!evil.is_empty());
        let aspec = AdversarySpec::new(evil, AdversaryBehavior::Frame, Some(framed), seed);
        let adv = AdversaryModel::new(&*scheme, spec, &topo, aspec, None).unwrap();
        let (att, _, delivered) = run_and_attribute(&topo, spec, &adv, &zombies, victim, seed);
        let tampered = delivered.iter().filter(|p| adv.was_tampered(p.id)).count();
        if tampered > 0 {
            prop_assert!(
                att.implicates(framed),
                "{} tampered deliveries on {} but innocent {:?} not implicated",
                tampered, topo.describe(), framed,
            );
        }
    }
}
