//! Compromised-switch behaviour — relaxing the paper's §4.1 assumption.
//!
//! "Switches provide very limited service and switches are separate
//! from computing nodes. This makes them very less unlikely to be
//! compromised. To prevent even the small probability of compromising
//! switch, we should add an authentication function …" (§4.1). Here we
//! make that small probability concrete: [`CompromisedSwitch`] wraps an
//! honest marking scheme and replaces the behaviour of one designated
//! switch with a chosen attack, so experiments can measure
//!
//! * how badly plain DDPM misattributes under each behaviour, and
//! * how completely `ddpm_core::auth::AuthDdpm` contains it.
//!
//! The compromised forwarding plane does **not** hold the marking key
//! (split-trust assumption, documented in `ddpm_core::auth`).

use ddpm_net::{MarkingField, Packet};
use ddpm_sim::{MarkEnv, Marker};
use ddpm_topology::{Coord, Topology};
use std::sync::Mutex;
use rand::rngs::SmallRng;
use rand::Rng;

/// Forged-vector constructor used by [`EvilBehavior::FrameNode`]:
/// `(topology, framed node, next hop) -> forged marking field`.
type ForgeFn<'a> = Box<dyn Fn(&Topology, &Coord, &Coord) -> MarkingField + Sync + Send + 'a>;

/// What the compromised switch does to packets it forwards.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EvilBehavior {
    /// Skip the marking update entirely. Under plain DDPM the victim
    /// then recovers `true source ⊕ skipped displacement` — a neighbour
    /// of the truth: quiet, plausible misattribution.
    SkipMarking,
    /// Rewrite the vector so the victim convicts `frame` — targeted
    /// framing of an innocent node. The switch knows the topology and
    /// the packet's next hop, so it can compute the exact forged vector.
    FrameNode {
        /// The innocent node to frame.
        frame: Coord,
    },
    /// Overwrite the marking field with attacker-chosen garbage.
    Garbage,
}

/// A marking layer in which one switch is compromised.
///
/// Wraps the honest `inner` scheme: every switch except `evil` behaves
/// honestly; `evil` applies `behavior` instead. The compromised switch
/// still *forwards* correctly (routing is untouched) — the attack is on
/// the traceback metadata, which is the interesting case; a switch that
/// drops or misroutes is just a fault, already modelled by `FaultSet`.
pub struct CompromisedSwitch<'a> {
    inner: &'a dyn Marker,
    evil: Coord,
    behavior: EvilBehavior,
    /// How does the evil switch compute the forged vector for
    /// `FrameNode`? It needs the codec; we keep it behind a closure so
    /// this type stays scheme-agnostic.
    forge: Option<ForgeFn<'a>>,
    /// Packets the evil switch has touched.
    tampered: Mutex<u64>,
}

impl<'a> CompromisedSwitch<'a> {
    /// A compromised switch at `evil` applying `behavior`.
    ///
    /// For [`EvilBehavior::FrameNode`] use
    /// [`CompromisedSwitch::framing`], which wires the forged-vector
    /// computation.
    #[must_use]
    pub fn new(inner: &'a dyn Marker, evil: Coord, behavior: EvilBehavior) -> Self {
        assert!(
            !matches!(behavior, EvilBehavior::FrameNode { .. }),
            "use CompromisedSwitch::framing for FrameNode"
        );
        Self {
            inner,
            evil,
            behavior,
            forge: None,
            tampered: Mutex::new(0),
        }
    }

    /// A compromised switch that frames `frame` by rewriting the DDPM
    /// vector. `encode` maps a distance vector to a marking field (pass
    /// the scheme's codec); the evil switch sets
    /// `V' = expected_distance(frame, next)` so that after honest
    /// downstream accumulation the victim computes exactly `frame`.
    #[must_use]
    pub fn framing(
        inner: &'a dyn Marker,
        evil: Coord,
        frame: Coord,
        encode: impl Fn(&Coord) -> MarkingField + Sync + Send + 'a,
    ) -> Self {
        Self {
            inner,
            evil,
            behavior: EvilBehavior::FrameNode { frame },
            forge: Some(Box::new(move |topo, frame_c, next| {
                encode(&topo.expected_distance(frame_c, next))
            })),
            tampered: Mutex::new(0),
        }
    }

    /// Packets the evil switch has manipulated so far.
    #[must_use]
    pub fn tampered(&self) -> u64 {
        *self.tampered.lock().unwrap()
    }

    /// The compromised switch's coordinate.
    #[must_use]
    pub fn evil(&self) -> Coord {
        self.evil
    }
}

impl Marker for CompromisedSwitch<'_> {
    fn name(&self) -> &'static str {
        "compromised-switch"
    }

    fn on_inject(&self, pkt: &mut Packet, src: &Coord, env: &MarkEnv<'_>) {
        // Injection resets are performed by the *source* switch; if the
        // evil switch is someone's source switch it still must produce
        // plausible output or be trivially caught, so it behaves
        // honestly here and attacks in transit.
        self.inner.on_inject(pkt, src, env);
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        if *cur != self.evil {
            self.inner.on_forward(pkt, cur, next, env, rng);
            return;
        }
        *self.tampered.lock().unwrap() += 1;
        match self.behavior {
            EvilBehavior::SkipMarking => {}
            EvilBehavior::Garbage => {
                pkt.header.identification = MarkingField::new(rng.gen());
            }
            EvilBehavior::FrameNode { frame } => {
                let forge = self.forge.as_ref().expect("framing constructor used");
                pkt.header.identification = forge(env.topo, &frame, next);
            }
        }
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, rng: &mut SmallRng) {
        if *dest != self.evil {
            self.inner.on_deliver(pkt, dest, env, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PacketFactory;
    use ddpm_core::{AuthDdpm, AuthOutcome, DdpmScheme};
    use ddpm_net::{AddrMap, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, NodeId, Topology};

    /// Drive a flow whose dimension-order path crosses the evil switch.
    fn run_through_evil(marker: &dyn Marker, topo: &Topology) -> Vec<ddpm_sim::Delivered> {
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(topo);
        let mut factory = PacketFactory::new(map);
        let mut sim = Simulation::new(
            topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            marker,
            SimConfig::seeded(3),
        );
        // (0,0) -> (4,0): the XY path passes (2,0), our evil switch.
        for k in 0..40u64 {
            let p = factory.benign(NodeId(0), NodeId(32), L4::udp(1, 7), 64);
            sim.schedule(SimTime(k * 8), p);
        }
        sim.run();
        sim.into_delivered()
    }

    #[test]
    fn skip_marking_misattributes_under_plain_ddpm() {
        let topo = Topology::mesh2d(8);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let evil = CompromisedSwitch::new(&scheme, Coord::new(&[2, 0]), EvilBehavior::SkipMarking);
        let delivered = run_through_evil(&evil, &topo);
        assert!(evil.tampered() > 0);
        for d in &delivered {
            let dest = topo.coord(d.packet.dest_node);
            let got = scheme
                .identify(&topo, &dest, d.packet.header.identification)
                .unwrap();
            // The skipped hop shifts the recovered source by one: an
            // innocent neighbour is blamed.
            assert_ne!(topo.index(&got), d.packet.true_source);
            assert_eq!(got, Coord::new(&[1, 0]), "blames the node one hop over");
        }
    }

    #[test]
    fn framing_convicts_the_framed_node_under_plain_ddpm() {
        let topo = Topology::mesh2d(8);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let framed = Coord::new(&[7, 7]);
        let codec = scheme.codec().clone();
        let evil = CompromisedSwitch::framing(&scheme, Coord::new(&[2, 0]), framed, move |v| {
            codec.encode(v).expect("frame vector encodes")
        });
        let delivered = run_through_evil(&evil, &topo);
        for d in &delivered {
            let dest = topo.coord(d.packet.dest_node);
            let got = scheme
                .identify(&topo, &dest, d.packet.header.identification)
                .unwrap();
            assert_eq!(got, framed, "plain DDPM convicts the framed innocent");
        }
    }

    #[test]
    fn auth_ddpm_contains_all_behaviors() {
        let topo = Topology::mesh2d(8);
        let auth = AuthDdpm::new(&topo, 0x5EC0).unwrap();
        for behavior in [EvilBehavior::SkipMarking, EvilBehavior::Garbage] {
            let evil = CompromisedSwitch::new(&auth, Coord::new(&[2, 0]), behavior);
            let delivered = run_through_evil(&evil, &topo);
            assert!(!delivered.is_empty());
            let mut garbage_verified = 0u32;
            for d in &delivered {
                let dest = topo.coord(d.packet.dest_node);
                match auth.identify_verified(&topo, &dest, &d.packet) {
                    AuthOutcome::Verified(src) => {
                        if behavior == EvilBehavior::Garbage {
                            // A random field carries a valid 8-bit tag
                            // with probability 2^-8 per verification, so
                            // zero accidental acceptances cannot be
                            // asserted — only that the rate stays at the
                            // documented 2^-t residual, not wholesale.
                            garbage_verified += 1;
                        } else {
                            // Skip: stale V yields a neighbour, which
                            // DOES verify (the tag covers the stale V).
                            // This is the measured residual gap.
                            assert_eq!(src, Coord::new(&[1, 0]));
                        }
                    }
                    AuthOutcome::Invalid => {}
                }
            }
            if behavior == EvilBehavior::Garbage {
                // 40 packets x ~3 verification points at 2^-8 each:
                // expectation ~0.5 accidental acceptances; 5+ would mean
                // the tag is not doing its job.
                assert!(
                    garbage_verified < 5,
                    "garbage verified {garbage_verified}/{} times, far above the 2^-8 residual",
                    delivered.len()
                );
            }
        }
    }

    #[test]
    fn auth_ddpm_blocks_framing() {
        let topo = Topology::mesh2d(8);
        let auth = AuthDdpm::new(&topo, 0x5EC0).unwrap();
        let framed = Coord::new(&[7, 7]);
        let codec = auth.inner().codec().clone();
        // The evil switch forges the vector but cannot compute the tag
        // (no key): it writes the forged vector with a guessed tag of 0.
        let tag_bits = auth.tag_bits();
        let vec_bits = auth.vec_bits();
        let evil = CompromisedSwitch::framing(&auth, Coord::new(&[2, 0]), framed, move |v| {
            let vec = codec.encode(v).expect("encodes").raw();
            let mut mf = ddpm_net::MarkingField::zero();
            mf.set_bits(0, vec_bits, vec);
            mf.set_bits(vec_bits, tag_bits, 0); // guessed tag
            mf
        });
        let delivered = run_through_evil(&evil, &topo);
        assert!(evil.tampered() > 0);
        let mut invalid = 0;
        let mut framed_convictions = 0;
        for d in &delivered {
            let dest = topo.coord(d.packet.dest_node);
            match auth.identify_verified(&topo, &dest, &d.packet) {
                AuthOutcome::Invalid => invalid += 1,
                AuthOutcome::Verified(src) if src == framed => framed_convictions += 1,
                AuthOutcome::Verified(_) => {}
            }
        }
        assert_eq!(framed_convictions, 0, "framing must never stick");
        assert!(invalid > 0, "tampering must be visible");
        assert!(auth.tampered_seen() > 0, "honest switches flagged it");
    }
}
