//! DDoS attack workloads, benign background traffic, and detection.
//!
//! Section 1 of the paper frames the threat: "once a hacker breaks in
//! the cluster, the impact of DDoS attack within a cluster would be even
//! severe since one infected system, which is believed to be
//! trustworthy, may instantly paralyze the whole cluster through the
//! high speed network." This crate builds those workloads:
//!
//! * [`flood`] — first-generation volumetric floods "by using DDoS
//!   attack tools such as Tribe Flood Network (TFN) and trinoo":
//!   multiple compromised zombies dumping UDP/ICMP at one victim;
//! * [`synflood`] — the TCP SYN flood of §1, with the victim's
//!   half-open connection table modelled so denial of service is
//!   *measured*, not asserted;
//! * [`worm`] — second-generation attacks: an epidemic scanner whose
//!   "total traffic increases exponentially";
//! * [`spoof`] — source-address spoofing strategies (§4.1: "attackers
//!   generate packets with spoofed IP addresses");
//! * [`background`] — benign cluster traffic patterns (uniform random,
//!   transpose, hot-spot, nearest-neighbour) so experiments measure
//!   collateral damage;
//! * [`detect`] — concrete detectors (rate, source-entropy, half-open
//!   count). The paper assumes detection exists (§6.1); we implement it
//!   so the end-to-end pipeline — detect → identify → block — runs.
//! * [`scenario`] — composition glue used by examples and benches.
//! * [`adversary`] — the Byzantine marking-plane adversary: compromised
//!   switches that skip, forge, randomize or replay the mark (§4.1's
//!   "to prevent even the small probability of compromising switch"
//!   made concrete), contained by the `auth-*` schemes.

#![warn(missing_docs)]

pub mod adversary;
pub mod background;
pub mod console;
pub mod detect;
pub mod flood;
pub mod scenario;
pub mod spoof;
pub mod synflood;
pub mod worm;

pub use adversary::AdversaryModel;
pub use background::{BackgroundTraffic, TrafficPattern};
pub use console::{ConsoleConfig, VictimConsole};
pub use detect::{DetectionVerdict, EntropyDetector, RateDetector, SynHalfOpenDetector};
pub use flood::FloodAttack;
pub use scenario::{PacketFactory, Workload};
pub use spoof::SpoofStrategy;
pub use synflood::{HalfOpenTable, SynFloodAttack};
pub use worm::WormOutbreak;
