//! Benign cluster traffic.
//!
//! Experiments need a background against which attacks stand out and
//! collateral damage is measurable. These are the standard interconnect
//! evaluation patterns:
//!
//! * **uniform random** — each packet picks a uniform destination;
//! * **transpose** — node `(x, y)` talks to `(y, x)` (a classic
//!   adversarial-permutation pattern for 2-D meshes);
//! * **hot spot** — a fraction of traffic converges on one node (e.g. a
//!   file server), the rest uniform;
//! * **nearest neighbour** — stencil-style communication with one of
//!   the physical neighbours.

use crate::scenario::{PacketFactory, Workload};
use ddpm_net::L4;
use ddpm_sim::SimTime;
use ddpm_topology::{NodeId, Topology};
use rand::Rng;

/// The spatial distribution of benign traffic.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrafficPattern {
    /// Uniform random destinations.
    Uniform,
    /// `(x, y) → (y, x)`; 2-D topologies only. Nodes on the diagonal
    /// fall back to uniform.
    Transpose,
    /// `fraction` of packets go to `node`, the rest uniform.
    HotSpot {
        /// The hot node (e.g. a file server).
        node: NodeId,
        /// Fraction of traffic aimed at it, `0.0..=1.0`.
        fraction: f64,
    },
    /// A uniformly chosen physical neighbour.
    NearestNeighbor,
}

/// A benign background workload.
#[derive(Clone, Debug)]
pub struct BackgroundTraffic {
    /// Destination distribution.
    pub pattern: TrafficPattern,
    /// Mean cycles between injections per node (exponential-ish via
    /// uniform jitter).
    pub interval: u64,
    /// Workload horizon in cycles.
    pub duration: u64,
    /// First injection time.
    pub start: SimTime,
}

impl BackgroundTraffic {
    /// Uniform background with the given per-node interval and horizon.
    #[must_use]
    pub fn uniform(interval: u64, duration: u64) -> Self {
        Self {
            pattern: TrafficPattern::Uniform,
            interval,
            duration,
            start: SimTime::ZERO,
        }
    }

    fn pick_dest<R: Rng + ?Sized>(&self, topo: &Topology, src: NodeId, rng: &mut R) -> NodeId {
        let n = topo.num_nodes() as u32;
        let uniform = |rng: &mut R| loop {
            let d = NodeId(rng.gen_range(0..n));
            if d != src {
                break d;
            }
        };
        match self.pattern {
            TrafficPattern::Uniform => uniform(rng),
            TrafficPattern::Transpose => {
                let c = topo.coord(src);
                if topo.ndims() == 2 {
                    let t = ddpm_topology::Coord::new(&[c.get(1), c.get(0)]);
                    if topo.contains(&t) && t != c {
                        return topo.index(&t);
                    }
                }
                uniform(rng)
            }
            TrafficPattern::HotSpot { node, fraction } => {
                if node != src && rng.gen_bool(fraction.clamp(0.0, 1.0)) {
                    node
                } else {
                    uniform(rng)
                }
            }
            TrafficPattern::NearestNeighbor => {
                let nbs = topo.neighbors(&topo.coord(src));
                let (_, c) = nbs[rng.gen_range(0..nbs.len())];
                topo.index(&c)
            }
        }
    }

    /// Generates the benign schedule: every node injects on its own
    /// jittered clock for the whole horizon.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        factory: &mut PacketFactory,
        rng: &mut R,
    ) -> Workload {
        let mut out = Workload::new();
        let n = topo.num_nodes() as u32;
        for src in 0..n {
            let src = NodeId(src);
            let mut t = self.start + rng.gen_range(0..self.interval.max(1));
            while t.cycles() < self.start.cycles() + self.duration {
                let dst = self.pick_dest(topo, src, rng);
                let l4 = L4::udp(rng.gen_range(1024..=u16::MAX), 9999);
                out.push((t, factory.benign(src, dst, l4, 256)));
                // Jittered inter-arrival: uniform in [interval/2, 3*interval/2].
                let gap = self.interval / 2 + rng.gen_range(0..=self.interval.max(1));
                t += gap.max(1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, TrafficClass};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup(topo: &Topology) -> (PacketFactory, SmallRng) {
        (
            PacketFactory::new(AddrMap::for_topology(topo)),
            SmallRng::seed_from_u64(11),
        )
    }

    #[test]
    fn uniform_covers_many_destinations() {
        let topo = Topology::mesh2d(6);
        let (mut f, mut rng) = setup(&topo);
        let bg = BackgroundTraffic::uniform(16, 2048);
        let w = bg.generate(&topo, &mut f, &mut rng);
        assert!(!w.is_empty());
        assert!(w.iter().all(|(_, p)| p.class == TrafficClass::Benign));
        assert!(w.iter().all(|(_, p)| p.true_source != p.dest_node));
        let dests: std::collections::HashSet<NodeId> = w.iter().map(|(_, p)| p.dest_node).collect();
        assert!(dests.len() > 20);
    }

    #[test]
    fn transpose_maps_xy_to_yx() {
        let topo = Topology::mesh2d(4);
        let (mut f, mut rng) = setup(&topo);
        let bg = BackgroundTraffic {
            pattern: TrafficPattern::Transpose,
            ..BackgroundTraffic::uniform(32, 512)
        };
        let w = bg.generate(&topo, &mut f, &mut rng);
        for (_, p) in &w {
            let s = topo.coord(p.true_source);
            if s.get(0) != s.get(1) {
                let d = topo.coord(p.dest_node);
                assert_eq!((d.get(0), d.get(1)), (s.get(1), s.get(0)));
            }
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let topo = Topology::mesh2d(6);
        let (mut f, mut rng) = setup(&topo);
        let hot = NodeId(0);
        let bg = BackgroundTraffic {
            pattern: TrafficPattern::HotSpot {
                node: hot,
                fraction: 0.5,
            },
            ..BackgroundTraffic::uniform(16, 2048)
        };
        let w = bg.generate(&topo, &mut f, &mut rng);
        let to_hot = w.iter().filter(|(_, p)| p.dest_node == hot).count();
        let frac = to_hot as f64 / w.len() as f64;
        assert!(frac > 0.35, "hotspot fraction too low: {frac}");
    }

    #[test]
    fn nearest_neighbor_is_one_hop() {
        let topo = Topology::torus(&[4, 4]);
        let (mut f, mut rng) = setup(&topo);
        let bg = BackgroundTraffic {
            pattern: TrafficPattern::NearestNeighbor,
            ..BackgroundTraffic::uniform(32, 512)
        };
        let w = bg.generate(&topo, &mut f, &mut rng);
        for (_, p) in &w {
            assert_eq!(
                topo.min_hops(&topo.coord(p.true_source), &topo.coord(p.dest_node)),
                1
            );
        }
    }

    #[test]
    fn horizon_respected() {
        let topo = Topology::mesh2d(4);
        let (mut f, mut rng) = setup(&topo);
        let bg = BackgroundTraffic {
            start: SimTime(100),
            ..BackgroundTraffic::uniform(8, 300)
        };
        let w = bg.generate(&topo, &mut f, &mut rng);
        assert!(w.iter().all(|(t, _)| t.0 >= 100 && t.0 < 400));
    }
}
