//! TCP SYN flooding and the victim's half-open connection table.
//!
//! "TCP SYN flooding attack makes as many TCP half-open connections as
//! the victim host is limited to receive. However, the individual
//! connection has nothing wrong except that the connection does not
//! complete three-way handshaking." (§1).
//!
//! [`SynFloodAttack`] generates the spoofed SYNs; [`HalfOpenTable`]
//! models the victim's backlog so the experiments can report the actual
//! denial metric: the fraction of *legitimate* connection attempts
//! rejected because the backlog was full of attack state.

use crate::scenario::{PacketFactory, Workload};
use crate::spoof::SpoofStrategy;
use ddpm_net::{Packet, TrafficClass, L4};
use ddpm_sim::SimTime;
use ddpm_topology::NodeId;
use rand::Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A distributed SYN flood.
#[derive(Clone, Debug)]
pub struct SynFloodAttack {
    /// Compromised nodes sending the SYNs.
    pub zombies: Vec<NodeId>,
    /// The flooded service node.
    pub victim: NodeId,
    /// Target service port.
    pub port: u16,
    /// Cycles between SYNs per zombie.
    pub interval: u64,
    /// Attack start time.
    pub start: SimTime,
    /// SYNs each zombie sends.
    pub syns_per_zombie: u32,
    /// Source-address forging strategy.
    pub spoof: SpoofStrategy,
}

impl SynFloodAttack {
    /// A default-shaped SYN flood against `victim:80`.
    #[must_use]
    pub fn new(zombies: Vec<NodeId>, victim: NodeId) -> Self {
        Self {
            zombies,
            victim,
            port: 80,
            interval: 16,
            start: SimTime::ZERO,
            syns_per_zombie: 64,
            spoof: SpoofStrategy::RandomInCluster,
        }
    }

    /// Generates the SYN schedule. Spoofed SYNs never complete the
    /// handshake — the SYN-ACK goes to the forged address.
    pub fn generate<R: Rng + ?Sized>(&self, factory: &mut PacketFactory, rng: &mut R) -> Workload {
        let mut out = Workload::new();
        for (zi, &zombie) in self.zombies.iter().enumerate() {
            assert_ne!(zombie, self.victim, "zombie cannot flood itself");
            let phase = (zi as u64 * 5) % self.interval.max(1);
            for k in 0..self.syns_per_zombie {
                let t = self.start + phase + u64::from(k) * self.interval;
                let claimed = self.spoof.claimed_ip(factory.map(), zombie, rng);
                let l4 = L4::tcp_syn(rng.gen_range(1024..=u16::MAX), self.port, rng.gen());
                out.push((t, factory.attack(zombie, claimed, self.victim, l4, 40)));
            }
        }
        out
    }
}

/// Key identifying one pending handshake.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct ConnKey {
    src_ip: Ipv4Addr,
    src_port: u16,
}

/// Outcome of feeding one packet to the table.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SynOutcome {
    /// SYN accepted: backlog slot allocated.
    Accepted,
    /// SYN rejected: backlog full — **service denied**.
    Rejected,
    /// Handshake completed: slot released.
    Completed,
    /// Not a handshake packet; ignored by the table.
    Ignored,
}

/// The victim's half-open (SYN backlog) table.
///
/// Entries expire after `timeout` cycles, mirroring a real SYN-received
/// timer; spoofed entries are only ever reclaimed by that timer.
#[derive(Clone, Debug)]
pub struct HalfOpenTable {
    capacity: usize,
    timeout: u64,
    pending: HashMap<ConnKey, SimTime>,
    /// Legitimate SYNs rejected (the denial metric numerator).
    pub rejected_benign: u64,
    /// Attack SYNs rejected.
    pub rejected_attack: u64,
    /// Total SYNs accepted.
    pub accepted: u64,
}

impl HalfOpenTable {
    /// A table with `capacity` slots and `timeout`-cycle expiry.
    #[must_use]
    pub fn new(capacity: usize, timeout: u64) -> Self {
        Self {
            capacity,
            timeout,
            pending: HashMap::with_capacity(capacity),
            rejected_benign: 0,
            rejected_attack: 0,
            accepted: 0,
        }
    }

    /// Current backlog occupancy.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.pending.len()
    }

    fn expire(&mut self, now: SimTime) {
        let timeout = self.timeout;
        self.pending.retain(|_, t0| now.since(*t0) < timeout);
    }

    /// Feeds one delivered packet to the victim's TCP stack model.
    pub fn on_packet(&mut self, pkt: &Packet, now: SimTime) -> SynOutcome {
        self.expire(now);
        let L4::Tcp {
            src_port, flags, ..
        } = pkt.l4
        else {
            return SynOutcome::Ignored;
        };
        let key = ConnKey {
            src_ip: pkt.header.src,
            src_port,
        };
        if flags.syn && !flags.ack {
            if self.pending.len() >= self.capacity {
                match pkt.class {
                    TrafficClass::Benign => self.rejected_benign += 1,
                    TrafficClass::Attack => self.rejected_attack += 1,
                }
                return SynOutcome::Rejected;
            }
            self.pending.insert(key, now);
            self.accepted += 1;
            SynOutcome::Accepted
        } else if flags.ack && !flags.syn {
            if self.pending.remove(&key).is_some() {
                SynOutcome::Completed
            } else {
                SynOutcome::Ignored
            }
        } else {
            SynOutcome::Ignored
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::AddrMap;
    use ddpm_net::TcpFlags;
    use ddpm_topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn factory() -> PacketFactory {
        let topo = Topology::mesh2d(8);
        PacketFactory::new(AddrMap::for_topology(&topo))
    }

    #[test]
    fn flood_generates_spoofed_syns() {
        let mut f = factory();
        let mut rng = SmallRng::seed_from_u64(3);
        let atk = SynFloodAttack::new(vec![NodeId(1), NodeId(2)], NodeId(63));
        let w = atk.generate(&mut f, &mut rng);
        assert_eq!(w.len(), 128);
        assert!(w.iter().all(|(_, p)| p.l4.is_syn()));
    }

    #[test]
    fn backlog_fills_and_rejects() {
        let mut f = factory();
        let mut table = HalfOpenTable::new(4, 1_000_000);
        let mut rng = SmallRng::seed_from_u64(1);
        // 6 spoofed attack SYNs into a 4-slot table.
        for i in 0..6u16 {
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(f.map(), NodeId(1), &mut rng);
            let p = f.attack(
                NodeId(1),
                claimed,
                NodeId(0),
                L4::tcp_syn(1000 + i, 80, 1),
                40,
            );
            table.on_packet(&p, SimTime(u64::from(i)));
        }
        assert_eq!(table.occupancy(), 4);
        assert_eq!(table.rejected_attack, 2);
        // A legitimate SYN is now denied.
        let honest = f.benign(NodeId(5), NodeId(0), L4::tcp_syn(2000, 80, 9), 40);
        assert_eq!(table.on_packet(&honest, SimTime(10)), SynOutcome::Rejected);
        assert_eq!(table.rejected_benign, 1);
    }

    #[test]
    fn handshake_completion_frees_slot() {
        let mut f = factory();
        let mut table = HalfOpenTable::new(1, 1_000_000);
        let syn = f.benign(NodeId(5), NodeId(0), L4::tcp_syn(2000, 80, 9), 40);
        assert_eq!(table.on_packet(&syn, SimTime(0)), SynOutcome::Accepted);
        assert_eq!(table.occupancy(), 1);
        let ack = f.benign(
            NodeId(5),
            NodeId(0),
            L4::Tcp {
                src_port: 2000,
                dst_port: 80,
                flags: TcpFlags::ack(),
                seq: 10,
            },
            40,
        );
        assert_eq!(table.on_packet(&ack, SimTime(5)), SynOutcome::Completed);
        assert_eq!(table.occupancy(), 0);
    }

    #[test]
    fn timeout_reclaims_spoofed_slots() {
        let mut f = factory();
        let mut table = HalfOpenTable::new(2, 100);
        let mut rng = SmallRng::seed_from_u64(2);
        for i in 0..2u16 {
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(f.map(), NodeId(1), &mut rng);
            let p = f.attack(NodeId(1), claimed, NodeId(0), L4::tcp_syn(i, 80, 1), 40);
            table.on_packet(&p, SimTime(0));
        }
        assert_eq!(table.occupancy(), 2);
        // After the timeout the slots are reclaimable.
        let honest = f.benign(NodeId(5), NodeId(0), L4::tcp_syn(999, 80, 1), 40);
        assert_eq!(table.on_packet(&honest, SimTime(200)), SynOutcome::Accepted);
    }

    #[test]
    fn non_tcp_ignored() {
        let mut f = factory();
        let mut table = HalfOpenTable::new(2, 100);
        let p = f.benign(NodeId(5), NodeId(0), L4::udp(1, 2), 64);
        assert_eq!(table.on_packet(&p, SimTime(0)), SynOutcome::Ignored);
    }
}
