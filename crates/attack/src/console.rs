//! The victim console: the whole defence pipeline behind one API.
//!
//! Examples and experiments kept re-assembling the same loop — feed
//! delivered packets through the TCP model, the detectors, and the DDPM
//! census, then decide whom to quarantine. [`VictimConsole`] packages
//! it: stream [`Delivered`] packets in, read alarms, identified
//! sources, and quarantine recommendations out. This is the component a
//! real deployment would run on (or beside) each protected node.

use crate::detect::{DetectionVerdict, EntropyDetector, SynHalfOpenDetector};
use crate::synflood::HalfOpenTable;
use ddpm_core::DdpmScheme;
use ddpm_sim::Delivered;
use ddpm_topology::{NodeId, Topology};
use std::collections::HashMap;

/// Configuration knobs for the console.
#[derive(Clone, Copy, Debug)]
pub struct ConsoleConfig {
    /// SYN backlog capacity of the protected service.
    pub backlog_capacity: usize,
    /// SYN-received timeout in cycles.
    pub backlog_timeout: u64,
    /// Packets per entropy window.
    pub entropy_window: usize,
    /// Alarm threshold in bits of source entropy per window.
    pub entropy_threshold_bits: f64,
    /// Backlog occupancy that triggers the half-open alarm.
    pub halfopen_threshold: usize,
    /// Identified-source packet count that earns a quarantine
    /// recommendation (set relative to the expected benign rate).
    pub quarantine_threshold: u64,
}

impl Default for ConsoleConfig {
    fn default() -> Self {
        Self {
            backlog_capacity: 128,
            backlog_timeout: 2_000,
            entropy_window: 64,
            entropy_threshold_bits: 4.5,
            halfopen_threshold: 96,
            quarantine_threshold: 50,
        }
    }
}

/// Streaming victim-side defence state for one protected node.
pub struct VictimConsole {
    topo: Topology,
    scheme: DdpmScheme,
    victim: NodeId,
    cfg: ConsoleConfig,
    table: HalfOpenTable,
    entropy: EntropyDetector,
    halfopen: SynHalfOpenDetector,
    /// DDPM-identified source → packets seen *since the first alarm*.
    suspect_census: HashMap<NodeId, u64>,
    packets_seen: u64,
}

impl VictimConsole {
    /// A console protecting `victim` on `topo`.
    #[must_use]
    pub fn new(topo: Topology, scheme: DdpmScheme, victim: NodeId, cfg: ConsoleConfig) -> Self {
        Self {
            topo,
            scheme,
            victim,
            cfg,
            table: HalfOpenTable::new(cfg.backlog_capacity, cfg.backlog_timeout),
            entropy: EntropyDetector::new(cfg.entropy_window, cfg.entropy_threshold_bits),
            halfopen: SynHalfOpenDetector::new(cfg.halfopen_threshold),
            suspect_census: HashMap::new(),
            packets_seen: 0,
        }
    }

    /// Feeds one delivered packet. Packets for other destinations are
    /// ignored (the console guards one node).
    pub fn on_packet(&mut self, d: &Delivered) {
        if d.packet.dest_node != self.victim {
            return;
        }
        self.packets_seen += 1;
        self.table.on_packet(&d.packet, d.delivered_at);
        self.entropy.observe(&d.packet, d.delivered_at);
        self.halfopen.observe(&self.table, d.delivered_at);
        if self.alarmed() {
            // Attribution only runs once something is wrong: the census
            // is a post-alarm incident log, not standing surveillance.
            let dest = self.topo.coord(self.victim);
            if let Some(src) = self
                .scheme
                .attribute(&self.topo, &dest, d.packet.header.identification)
                .single()
            {
                *self.suspect_census.entry(src).or_insert(0) += 1;
            }
        }
    }

    /// Feeds a batch of delivered packets.
    pub fn on_packets<'a>(&mut self, delivered: impl IntoIterator<Item = &'a Delivered>) {
        for d in delivered {
            self.on_packet(d);
        }
    }

    /// True once any detector has fired.
    #[must_use]
    pub fn alarmed(&self) -> bool {
        self.entropy.verdict().is_alarm() || self.halfopen.verdict().is_alarm()
    }

    /// The earliest alarm, if any.
    #[must_use]
    pub fn first_alarm(&self) -> Option<ddpm_sim::SimTime> {
        let at = |v: DetectionVerdict| match v {
            DetectionVerdict::Alarm { at } => Some(at),
            DetectionVerdict::Normal => None,
        };
        match (at(self.entropy.verdict()), at(self.halfopen.verdict())) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Sources the console recommends quarantining, heaviest first.
    #[must_use]
    pub fn quarantine_recommendations(&self) -> Vec<(NodeId, u64)> {
        let mut out: Vec<(NodeId, u64)> = self
            .suspect_census
            .iter()
            .filter(|&(_, &c)| c >= self.cfg.quarantine_threshold)
            .map(|(&n, &c)| (n, c))
            .collect();
        out.sort_by_key(|&(n, c)| (std::cmp::Reverse(c), n));
        out
    }

    /// Benign connection attempts rejected so far (denial metric).
    #[must_use]
    pub fn benign_rejections(&self) -> u64 {
        self.table.rejected_benign
    }

    /// Packets this console has inspected.
    #[must_use]
    pub fn packets_seen(&self) -> u64 {
        self.packets_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PacketFactory;
    use crate::spoof::SpoofStrategy;
    use crate::synflood::SynFloodAttack;
    use ddpm_net::{AddrMap, L4};
    use ddpm_routing::{Router, SelectionPolicy};
    use ddpm_sim::{SimConfig, SimTime, Simulation};
    use ddpm_topology::{FaultSet, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn console_detects_and_recommends_exactly_the_zombies() {
        let topo = Topology::torus(&[8, 8]);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let victim = NodeId(27);
        let zombies = [NodeId(3), NodeId(40)];
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut factory = PacketFactory::new(map);
        let mut rng = SmallRng::seed_from_u64(7);
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &scheme,
            SimConfig::seeded(7),
        );
        // Benign chatter first, then the flood.
        for k in 0..60u64 {
            sim.schedule(
                SimTime(k * 40),
                factory.benign(NodeId(k as u32 % 20 + 1), victim, L4::udp(1, 80), 64),
            );
        }
        let flood = SynFloodAttack {
            start: SimTime(1_000),
            syns_per_zombie: 300,
            interval: 6,
            spoof: SpoofStrategy::RandomInCluster,
            ..SynFloodAttack::new(zombies.to_vec(), victim)
        };
        for (t, p) in flood.generate(&mut factory, &mut rng) {
            sim.schedule(t, p);
        }
        sim.run();

        let mut console = VictimConsole::new(
            topo.clone(),
            scheme.clone(),
            victim,
            ConsoleConfig::default(),
        );
        console.on_packets(sim.delivered());
        assert!(console.alarmed(), "flood must raise an alarm");
        assert!(console.first_alarm().is_some());
        let recs: Vec<NodeId> = console
            .quarantine_recommendations()
            .iter()
            .map(|&(n, _)| n)
            .collect();
        let mut sorted = recs.clone();
        sorted.sort();
        let mut want = zombies.to_vec();
        want.sort();
        assert_eq!(sorted, want, "recommendations must be exactly the zombies");
    }

    #[test]
    fn console_stays_quiet_on_benign_traffic() {
        let topo = Topology::mesh2d(6);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let victim = NodeId(20);
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut factory = PacketFactory::new(map);
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(2),
        );
        for k in 0..400u64 {
            sim.schedule(
                SimTime(k * 12),
                factory.benign(NodeId((k % 4) as u32), victim, L4::udp(1, 80), 64),
            );
        }
        sim.run();
        let mut console = VictimConsole::new(
            topo.clone(),
            scheme.clone(),
            victim,
            ConsoleConfig::default(),
        );
        console.on_packets(sim.delivered());
        assert!(!console.alarmed());
        assert!(console.quarantine_recommendations().is_empty());
        assert_eq!(console.benign_rejections(), 0);
        assert_eq!(console.packets_seen(), 400);
    }

    #[test]
    fn console_ignores_other_destinations() {
        let topo = Topology::mesh2d(4);
        let scheme = DdpmScheme::new(&topo).unwrap();
        let mut console = VictimConsole::new(
            topo.clone(),
            scheme.clone(),
            NodeId(0),
            ConsoleConfig::default(),
        );
        let map = AddrMap::for_topology(&topo);
        let faults = FaultSet::none();
        let mut factory = PacketFactory::new(map);
        let mut sim = Simulation::new(
            &topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            &scheme,
            SimConfig::seeded(1),
        );
        sim.schedule(
            SimTime::ZERO,
            factory.benign(NodeId(1), NodeId(5), L4::udp(1, 80), 64),
        );
        sim.run();
        console.on_packets(sim.delivered());
        assert_eq!(console.packets_seen(), 0);
    }
}
