//! Worm outbreak: the second-generation attack of §1.
//!
//! "The second generation DDoS attacks are by worms or viruses. … Even
//! though these attacks do not target a specific system, it can use up
//! system and network resources because its total traffic increases
//! exponentially." (§1, citing CodeRed and Nimda.)
//!
//! [`WormOutbreak`] is a discrete-round SI (susceptible–infected)
//! epidemic with uniform random scanning inside the cluster: each
//! infected node emits `scans_per_round` probe packets per round; a
//! probe landing on a susceptible node infects it at the start of the
//! next round. The generator returns both the packet workload (for the
//! simulator) and the infection timeline (for the experiments' growth
//! curves).

use crate::scenario::{PacketFactory, Workload};
use crate::spoof::SpoofStrategy;
use ddpm_net::L4;
use ddpm_sim::SimTime;
use ddpm_topology::NodeId;
use rand::Rng;

/// An epidemic scanning worm.
#[derive(Clone, Debug)]
pub struct WormOutbreak {
    /// Nodes infected at time zero (patient zero set).
    pub seeds: Vec<NodeId>,
    /// Cluster size (scan space).
    pub num_nodes: u32,
    /// Probe packets per infected node per round.
    pub scans_per_round: u32,
    /// Round duration in cycles.
    pub round_cycles: u64,
    /// Number of rounds to simulate.
    pub rounds: u32,
    /// Worm probes usually spoof, too.
    pub spoof: SpoofStrategy,
    /// Target port the worm exploits.
    pub port: u16,
}

/// Result of expanding an outbreak into traffic.
#[derive(Clone, Debug)]
pub struct OutbreakTrace {
    /// The probe packets to inject.
    pub workload: Workload,
    /// Infected-node count at the start of each round.
    pub infected_per_round: Vec<u32>,
    /// Every node that ended up infected.
    pub infected: Vec<NodeId>,
}

impl WormOutbreak {
    /// A default-shaped outbreak from one seed.
    #[must_use]
    pub fn new(seed: NodeId, num_nodes: u32) -> Self {
        Self {
            seeds: vec![seed],
            num_nodes,
            scans_per_round: 4,
            round_cycles: 256,
            rounds: 12,
            spoof: SpoofStrategy::RandomInCluster,
            port: 445,
        }
    }

    /// Expands the epidemic into a packet workload and growth curve.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        factory: &mut PacketFactory,
        rng: &mut R,
    ) -> OutbreakTrace {
        assert!(self.num_nodes >= 2, "need at least two nodes");
        let mut infected = vec![false; self.num_nodes as usize];
        for s in &self.seeds {
            infected[s.as_usize()] = true;
        }
        let mut workload = Workload::new();
        let mut infected_per_round = Vec::with_capacity(self.rounds as usize);
        for round in 0..self.rounds {
            let round_start = SimTime(u64::from(round) * self.round_cycles);
            let currently: Vec<NodeId> = (0..self.num_nodes)
                .filter(|&i| infected[i as usize])
                .map(NodeId)
                .collect();
            infected_per_round.push(currently.len() as u32);
            let mut newly = Vec::new();
            for &src in &currently {
                for k in 0..self.scans_per_round {
                    // Uniform random scanning over the whole cluster.
                    let target = loop {
                        let t = NodeId(rng.gen_range(0..self.num_nodes));
                        if t != src {
                            break t;
                        }
                    };
                    let jitter =
                        u64::from(k) * self.round_cycles / u64::from(self.scans_per_round.max(1));
                    let claimed = self.spoof.claimed_ip(factory.map(), src, rng);
                    let l4 = L4::tcp_syn(rng.gen_range(1024..=u16::MAX), self.port, rng.gen());
                    let pkt = factory.attack(src, claimed, target, l4, 376);
                    workload.push((round_start + jitter, pkt));
                    if !infected[target.as_usize()] {
                        newly.push(target);
                    }
                }
            }
            for n in newly {
                infected[n.as_usize()] = true;
            }
        }
        OutbreakTrace {
            workload,
            infected_per_round,
            infected: (0..self.num_nodes)
                .filter(|&i| infected[i as usize])
                .map(NodeId)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::AddrMap;
    use ddpm_topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn factory() -> PacketFactory {
        let topo = Topology::mesh2d(8);
        PacketFactory::new(AddrMap::for_topology(&topo))
    }

    #[test]
    fn growth_is_monotone_and_initially_exponential_ish() {
        let mut f = factory();
        let mut rng = SmallRng::seed_from_u64(5);
        let worm = WormOutbreak::new(NodeId(0), 64);
        let trace = worm.generate(&mut f, &mut rng);
        // Monotone non-decreasing infected counts.
        for w in trace.infected_per_round.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert_eq!(trace.infected_per_round[0], 1);
        // With 4 scans/round on 64 nodes the epidemic saturates well
        // within 12 rounds.
        assert_eq!(
            *trace.infected_per_round.last().unwrap(),
            64,
            "outbreak should saturate: {:?}",
            trace.infected_per_round
        );
        // Early growth at least doubles per round while the susceptible
        // pool is large.
        assert!(trace.infected_per_round[1] >= 2);
        assert!(trace.infected_per_round[2] >= 2 * trace.infected_per_round[1].min(8));
    }

    #[test]
    fn traffic_grows_with_infection() {
        let mut f = factory();
        let mut rng = SmallRng::seed_from_u64(6);
        let worm = WormOutbreak {
            rounds: 6,
            ..WormOutbreak::new(NodeId(3), 64)
        };
        let trace = worm.generate(&mut f, &mut rng);
        // Packets per round = infected * scans_per_round.
        let mut per_round = [0u32; 6];
        for (t, _) in &trace.workload {
            per_round[(t.0 / worm.round_cycles) as usize] += 1;
        }
        for (r, &count) in per_round.iter().enumerate() {
            assert_eq!(count, trace.infected_per_round[r] * worm.scans_per_round);
        }
        assert!(per_round[5] > per_round[0], "traffic must grow");
    }

    #[test]
    fn probes_never_self_target() {
        let mut f = factory();
        let mut rng = SmallRng::seed_from_u64(8);
        let worm = WormOutbreak::new(NodeId(0), 16);
        let trace = worm.generate(&mut f, &mut rng);
        assert!(trace
            .workload
            .iter()
            .all(|(_, p)| p.true_source != p.dest_node));
    }

    #[test]
    fn multiple_seeds_supported() {
        let mut f = factory();
        let mut rng = SmallRng::seed_from_u64(9);
        let worm = WormOutbreak {
            seeds: vec![NodeId(0), NodeId(32)],
            rounds: 3,
            ..WormOutbreak::new(NodeId(0), 64)
        };
        let trace = worm.generate(&mut f, &mut rng);
        assert_eq!(trace.infected_per_round[0], 2);
    }
}
