//! Source-address spoofing strategies.
//!
//! "DDoS attacks often use spoofed IP addresses, meaning that an
//! attacker uses a fake IP addresses instead of the real source IP
//! address." (§1). Strategies differ in how hard they are on naive
//! defences: in-block random spoofing defeats ingress filtering (§2)
//! because every forged address is a legitimate cluster address.

use ddpm_net::AddrMap;
use ddpm_topology::NodeId;
use rand::Rng;
use std::net::Ipv4Addr;

/// How an attacker forges the source-address field.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SpoofStrategy {
    /// No spoofing: the attacker's real address (naïve attacker).
    None,
    /// A fixed innocent node's address — frames one victim.
    FrameNode(NodeId),
    /// A fresh uniformly random in-cluster address per packet —
    /// maximises source entropy, defeats address-based blocking.
    RandomInCluster,
    /// A random address *outside* the cluster block — caught by ingress
    /// filtering (the §2 baseline defence), included for contrast.
    RandomExternal,
}

impl SpoofStrategy {
    /// The forged source address for one packet from `true_src`.
    pub fn claimed_ip<R: Rng + ?Sized>(
        self,
        map: &AddrMap,
        true_src: NodeId,
        rng: &mut R,
    ) -> Ipv4Addr {
        match self {
            SpoofStrategy::None => map.ip_of(true_src),
            SpoofStrategy::FrameNode(n) => map.ip_of(n),
            SpoofStrategy::RandomInCluster => {
                let n = rng.gen_range(0..map.len());
                map.ip_of(NodeId(n))
            }
            SpoofStrategy::RandomExternal => {
                // Addresses in 203.0.113.0/24 (TEST-NET-3): never in the
                // cluster block.
                Ipv4Addr::new(203, 0, 113, rng.gen_range(1..=254))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (AddrMap, SmallRng) {
        let topo = Topology::mesh2d(8);
        (AddrMap::for_topology(&topo), SmallRng::seed_from_u64(1))
    }

    #[test]
    fn none_is_honest() {
        let (map, mut rng) = setup();
        assert_eq!(
            SpoofStrategy::None.claimed_ip(&map, NodeId(5), &mut rng),
            map.ip_of(NodeId(5))
        );
    }

    #[test]
    fn frame_node_is_constant() {
        let (map, mut rng) = setup();
        for _ in 0..10 {
            assert_eq!(
                SpoofStrategy::FrameNode(NodeId(9)).claimed_ip(&map, NodeId(5), &mut rng),
                map.ip_of(NodeId(9))
            );
        }
    }

    #[test]
    fn random_in_cluster_stays_in_block_and_varies() {
        let (map, mut rng) = setup();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let ip = SpoofStrategy::RandomInCluster.claimed_ip(&map, NodeId(0), &mut rng);
            assert!(map.contains(ip), "{ip} escaped the cluster block");
            seen.insert(ip);
        }
        assert!(seen.len() > 20, "entropy too low: {}", seen.len());
    }

    #[test]
    fn random_external_is_outside_block() {
        let (map, mut rng) = setup();
        for _ in 0..50 {
            let ip = SpoofStrategy::RandomExternal.claimed_ip(&map, NodeId(0), &mut rng);
            assert!(!map.contains(ip), "{ip} must be outside the cluster");
        }
    }
}
