//! The Byzantine marking-plane adversary — the mechanism half of
//! [`AdversarySpec`].
//!
//! §4.1 of the paper hedges that switches "are very less unlikely to be
//! compromised" and sketches authentication as the remedy if that
//! assumption falls. [`AdversaryModel`] drops the assumption: it wraps
//! the run's honest [`MarkingScheme`] and replaces the *marking plane*
//! of every switch named in an [`AdversarySpec`] with the configured
//! [`AdversaryBehavior`], so experiments can measure
//!
//! * how badly each unauthenticated scheme misattributes under each
//!   behavior, and
//! * how completely the `auth-*` discipline (`ddpm_core::auth`)
//!   contains it.
//!
//! ## Split trust, and what stays honest
//!
//! Only marking misbehaves. The forwarding plane (routing, TTL,
//! buffering) stays correct — a switch that corrupts forwarding takes
//! the fabric down, which is a different failure already modelled by
//! fault injection. Compromised switches do **not** hold the `auth-*`
//! key: forging a valid tag means guessing, at the documented `2^-t`
//! per packet. Injection and delivery run honestly even at compromised
//! switches — a source switch that emits implausible fields is
//! trivially caught, so the adversary attacks in transit.
//!
//! ## Story forging
//!
//! `frame`, `mark-flood` and `collude` do not scribble garbage; they
//! fabricate the *exact field an honest packet from the framed node
//! would carry* at this point in the fabric. The forgery replays the
//! framed node's hypothetical history on a private replica of the base
//! scheme ([`ForgePlan`]): inject at the framed node, forward along the
//! dimension-order path to the compromised switch, with the
//! hypothetical TTL arranged to coincide with the real packet's TTL on
//! arrival. Against displacement accumulation (DDPM) and path replay
//! (Tracemax) this framing is exact; against DPM/PPM it is plausible
//! rather than exact (measured, not assumed). The replica cannot seal
//! tags — against `auth-*` runs the remaining `tag_bits` are guessed
//! per packet.
//!
//! All adversary randomness (tag guesses, pollution-source rotation) is
//! derived from [`AdversarySpec::seed`] and the packet id, never from
//! the run RNG, so serial and sharded engines tamper bit-identically.

use ddpm_core::prf;
use ddpm_core::scheme::{forge_plan, ForgePlan};
use ddpm_net::{MarkingField, Packet, PacketId};
use ddpm_routing::{trace_path, Router, SelectionPolicy};
use ddpm_sim::{
    AdversaryBehavior, AdversarySpec, AdversaryState, Collector, HopCost, MarkEnv, Marker,
    MarkingScheme, SchemeSpec,
};
use ddpm_topology::{Coord, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Mutex;

/// A marking layer in which a set of switches is compromised.
///
/// Wraps the run's honest scheme: every switch outside
/// [`AdversarySpec::switches`] behaves honestly; compromised switches
/// apply [`AdversarySpec::behavior`] on forward. Implements
/// [`MarkingScheme`] by delegation (same budget, cost and collector as
/// the wrapped scheme), so the scenario driver slots it in wherever the
/// honest scheme went — the victim does not get a cleaner view just
/// because the fabric is dirty.
pub struct AdversaryModel<'a> {
    inner: &'a dyn MarkingScheme,
    spec: AdversarySpec,
    /// Replica of the base scheme used to fabricate framed stories;
    /// `None` for behaviors that forge no story.
    plan: Option<ForgePlan>,
    /// Checkpointable dynamic state, indexed like `spec.switches`.
    state: Mutex<AdversaryState>,
    /// Ids of packets whose field some compromised switch touched.
    /// Experiment-side ground truth (false-accept measurement); *not*
    /// part of [`AdversaryState`] — a resumed run replays marking
    /// bit-identically from `last_seen`/`tampered` alone, and reports
    /// always run uninterrupted.
    tampered_ids: Mutex<HashSet<PacketId>>,
}

impl<'a> AdversaryModel<'a> {
    /// Wraps `inner` (the run's scheme, built from `run` on `topo`)
    /// with the misbehavior described by `spec`. `tag_bits` must echo
    /// the run's tag-width override so the forged story is carved
    /// exactly like the honest field.
    ///
    /// # Errors
    /// Rejects out-of-range switch or framed ids, a missing `framed`
    /// for behaviors that need one, framing a compromised switch, an
    /// empty switch set, and any [`forge_plan`] feasibility wall.
    pub fn new(
        inner: &'a dyn MarkingScheme,
        run: SchemeSpec,
        topo: &Topology,
        spec: AdversarySpec,
        tag_bits: Option<u32>,
    ) -> Result<Self, String> {
        let n = topo.num_nodes();
        if spec.switches.is_empty() {
            return Err("adversary needs at least one compromised switch".into());
        }
        if let Some(bad) = spec.switches.iter().find(|s| u64::from(s.0) >= n) {
            return Err(format!(
                "compromised switch {} out of range (fabric has {n} nodes)",
                bad.0
            ));
        }
        let needs_story = matches!(
            spec.behavior,
            AdversaryBehavior::Frame | AdversaryBehavior::MarkFlood | AdversaryBehavior::Collude
        );
        match spec.framed {
            None if spec.behavior.needs_framed() => {
                return Err(format!(
                    "adversary behavior `{}` needs a framed node",
                    spec.behavior.as_str()
                ));
            }
            Some(f) if u64::from(f.0) >= n => {
                return Err(format!(
                    "framed node {} out of range (fabric has {n} nodes)",
                    f.0
                ));
            }
            Some(f) if spec.index_of(f).is_some() => {
                return Err(format!(
                    "framed node {} is itself compromised — frame an innocent",
                    f.0
                ));
            }
            _ => {}
        }
        let plan = if needs_story {
            Some(forge_plan(run, topo, tag_bits)?)
        } else {
            None
        };
        let state = Mutex::new(spec.fresh_state());
        Ok(Self {
            inner,
            spec,
            plan,
            state,
            tampered_ids: Mutex::new(HashSet::new()),
        })
    }

    /// The adversary configuration.
    #[must_use]
    pub fn spec(&self) -> &AdversarySpec {
        &self.spec
    }

    /// A checkpointable copy of the dynamic state.
    ///
    /// # Panics
    /// Panics if the state mutex is poisoned.
    #[must_use]
    pub fn state(&self) -> AdversaryState {
        self.state.lock().unwrap().clone()
    }

    /// Restores dynamic state captured by [`AdversaryModel::state`],
    /// so a resumed run tampers exactly like the uninterrupted one.
    ///
    /// # Errors
    /// The state must be sized for this spec's switch list.
    pub fn restore(&self, state: AdversaryState) -> Result<(), String> {
        let want = self.spec.switches.len();
        if state.last_seen.len() != want || state.tampered.len() != want {
            return Err(format!(
                "adversary state sized for {} switches, spec has {want}",
                state.last_seen.len()
            ));
        }
        *self.state.lock().unwrap() = state;
        Ok(())
    }

    /// Packets misbehaved on so far, across all compromised switches.
    ///
    /// # Panics
    /// Panics if the state mutex is poisoned.
    #[must_use]
    pub fn total_tampered(&self) -> u64 {
        self.state.lock().unwrap().total_tampered()
    }

    /// True if some compromised switch misbehaved on this packet —
    /// the ground truth behind the false-accept metric (a delivered,
    /// tampered packet that still *verifies* is a successful forgery).
    ///
    /// # Panics
    /// Panics if the id-set mutex is poisoned.
    #[must_use]
    pub fn was_tampered(&self, id: PacketId) -> bool {
        self.tampered_ids.lock().unwrap().contains(&id)
    }

    /// Private per-packet randomness. `salt` distinguishes independent
    /// guessers (per-switch) from colluders (shared stream).
    fn forge_rng(&self, pkt: &Packet, salt: u64) -> SmallRng {
        SmallRng::seed_from_u64(prf(self.spec.seed, &[pkt.id.0, salt]))
    }

    /// The field an honest packet injected at `framed` would carry
    /// leaving `cur` toward `next`, with the hypothetical TTL arranged
    /// to equal the real packet's current TTL, plus a guessed tag when
    /// the run is authenticated.
    fn forged_story(
        &self,
        pkt: &Packet,
        framed: &Coord,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) -> MarkingField {
        let plan = self.plan.as_ref().expect("story behaviors carry a plan");
        // The fabricated approach path. The real fabric may have faults;
        // the story does not need to match it — only to be a history the
        // victim's decoder accepts.
        let hops = trace_path(
            env.topo,
            &FaultSet::none(),
            Router::DimensionOrder,
            SelectionPolicy::First,
            rng,
            framed,
            cur,
            env.topo.diameter().max(1) * 2,
        )
        .unwrap_or_else(|_| vec![*framed]);
        let mut scratch = *pkt;
        // TTL decrements on arrival at each switch after the source, so
        // after |hops|-1 decrements the hypothetical TTL meets the real
        // one at `cur` — the tag-relevant and DPM-slot-relevant value.
        let approach = u8::try_from(hops.len() - 1).unwrap_or(u8::MAX);
        scratch.header.ttl = pkt.header.ttl.saturating_add(approach);
        scratch.header.identification = MarkingField::zero();
        plan.replica.on_inject(&mut scratch, framed, env);
        for pair in hops.windows(2) {
            plan.replica
                .on_forward(&mut scratch, &pair[0], &pair[1], env, rng);
            scratch.header.ttl = scratch.header.ttl.saturating_sub(1);
        }
        plan.replica.on_forward(&mut scratch, cur, next, env, rng);
        let mut forged = scratch.header.identification;
        if plan.tag_bits > 0 {
            let guess = rng.gen::<u16>() & ((1u16 << plan.tag_bits) - 1);
            forged.set_bits(plan.story_bits, plan.tag_bits, guess);
        }
        forged
    }

    /// A rotating innocent for `mark-flood`: any node that is neither
    /// compromised nor the packet's own destination.
    fn rotating_innocent(&self, pkt: &Packet, env: &MarkEnv<'_>, rng: &mut SmallRng) -> Coord {
        let n = u32::try_from(env.topo.num_nodes()).expect("fabric fits u32");
        loop {
            let id = NodeId(rng.gen_range(0..n));
            if self.spec.index_of(id).is_none() && id.0 != pkt.dest_node.0 {
                return env.topo.coord(id);
            }
        }
    }
}

impl Marker for AdversaryModel<'_> {
    fn name(&self) -> &'static str {
        // The adversary does not announce itself: reports and telemetry
        // keep the wrapped scheme's name.
        self.inner.name()
    }

    fn on_inject(&self, pkt: &mut Packet, src: &Coord, env: &MarkEnv<'_>) {
        self.inner.on_inject(pkt, src, env);
    }

    fn on_forward(
        &self,
        pkt: &mut Packet,
        cur: &Coord,
        next: &Coord,
        env: &MarkEnv<'_>,
        rng: &mut SmallRng,
    ) {
        let Some(idx) = self.spec.index_of(env.topo.index(cur)) else {
            self.inner.on_forward(pkt, cur, next, env, rng);
            return;
        };
        let seen = pkt.header.identification;
        let replayed = {
            let mut st = self.state.lock().unwrap();
            let replayed = st.last_seen[idx];
            st.last_seen[idx] = Some(seen.raw());
            st.tampered[idx] += 1;
            replayed
        };
        self.tampered_ids.lock().unwrap().insert(pkt.id);
        match self.spec.behavior {
            AdversaryBehavior::Skip => {}
            AdversaryBehavior::Randomize => {
                let mut frng = self.forge_rng(pkt, idx as u64);
                pkt.header.identification = MarkingField::new(frng.gen());
            }
            AdversaryBehavior::Replay => {
                // Resurrect the last field this switch saw (first packet
                // has nothing to replay), then run the honest update on
                // the corrupted state. Authenticated schemes refuse the
                // update — the replayed tag no longer matches — which is
                // exactly the containment being measured.
                if let Some(old) = replayed {
                    pkt.header.identification = MarkingField::new(old);
                }
                self.inner.on_forward(pkt, cur, next, env, rng);
            }
            AdversaryBehavior::Frame => {
                let framed = env.topo.coord(self.spec.framed.expect("validated"));
                let mut frng = self.forge_rng(pkt, idx as u64);
                pkt.header.identification =
                    self.forged_story(pkt, &framed, cur, next, env, &mut frng);
            }
            AdversaryBehavior::MarkFlood => {
                let mut frng = self.forge_rng(pkt, idx as u64);
                let framed = self.rotating_innocent(pkt, env, &mut frng);
                pkt.header.identification =
                    self.forged_story(pkt, &framed, cur, next, env, &mut frng);
            }
            AdversaryBehavior::Collude => {
                // Shared forge stream (salt 0 for every colluder): all
                // compromised switches tell the same story about the
                // same innocent, down to the same tag guess — and a
                // co-conspirator's still-consistent forgery is left
                // intact rather than re-stamped.
                let framed = env.topo.coord(self.spec.framed.expect("validated"));
                let mut frng = self.forge_rng(pkt, 0);
                let forged = self.forged_story(pkt, &framed, cur, next, env, &mut frng);
                if seen != forged {
                    pkt.header.identification = forged;
                }
            }
        }
    }

    fn on_deliver(&self, pkt: &mut Packet, dest: &Coord, env: &MarkEnv<'_>, rng: &mut SmallRng) {
        self.inner.on_deliver(pkt, dest, env, rng);
    }
}

impl MarkingScheme for AdversaryModel<'_> {
    fn mf_bits(&self) -> u32 {
        self.inner.mf_bits()
    }

    fn per_hop_cost(&self) -> HopCost {
        self.inner.per_hop_cost()
    }

    fn collector<'a>(&'a self, topo: &'a Topology, victim: NodeId) -> Box<dyn Collector + 'a> {
        self.inner.collector(topo, victim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PacketFactory;
    use ddpm_core::scheme::{build_scheme, DEFAULT_AUTH_KEY};
    use ddpm_core::{Authenticated, DdpmScheme};
    use ddpm_net::{AddrMap, L4};
    use ddpm_sim::{Delivered, SimConfig, SimTime, Simulation, CONVICTION_CONFIDENCE};
    use ddpm_topology::NodeId;

    fn spec(behavior: AdversaryBehavior, framed: Option<u32>) -> AdversarySpec {
        AdversarySpec::new(vec![NodeId(16)], behavior, framed.map(NodeId), 0xBAD5EED)
    }

    /// Drives floods from `sources` to (4,0) on an 8x8 mesh; every XY
    /// path from row 0 crosses (2,0) = NodeId(16), the compromised
    /// switch.
    fn run_flows(marker: &dyn Marker, topo: &Topology, sources: &[NodeId]) -> Vec<Delivered> {
        let faults = FaultSet::none();
        let map = AddrMap::for_topology(topo);
        let mut factory = PacketFactory::new(map);
        let mut sim = Simulation::new(
            topo,
            &faults,
            Router::DimensionOrder,
            SelectionPolicy::First,
            marker,
            SimConfig::seeded(3),
        );
        for k in 0..40u64 {
            for (i, &src) in sources.iter().enumerate() {
                let p = factory.benign(src, NodeId(32), L4::udp(1, 7), 64);
                sim.schedule(SimTime(k * 8 + i as u64), p);
            }
        }
        sim.run();
        sim.into_delivered()
    }

    /// The single-flow case: (0,0) -> (4,0) through the evil (2,0).
    fn run_through_evil(marker: &dyn Marker, topo: &Topology) -> Vec<Delivered> {
        run_flows(marker, topo, &[NodeId(0)])
    }

    #[test]
    fn skip_misattributes_under_plain_ddpm() {
        let topo = Topology::mesh2d(8);
        let scheme = build_scheme(SchemeSpec::Ddpm, &topo).unwrap();
        let adv = AdversaryModel::new(
            &scheme,
            SchemeSpec::Ddpm,
            &topo,
            spec(AdversaryBehavior::Skip, None),
            None,
        )
        .unwrap();
        let delivered = run_through_evil(&adv, &topo);
        assert!(adv.total_tampered() > 0);
        let inner = DdpmScheme::new(&topo).unwrap();
        for d in &delivered {
            let dest = topo.coord(d.packet.dest_node);
            let got = inner
                .identify(&topo, &dest, d.packet.header.identification)
                .unwrap();
            // The skipped hop shifts the recovered source by one: an
            // innocent neighbour is blamed.
            assert_eq!(got, Coord::new(&[1, 0]), "blames the node one hop over");
            assert!(adv.was_tampered(d.packet.id));
        }
    }

    #[test]
    fn framing_convicts_the_framed_node_under_plain_ddpm() {
        let topo = Topology::mesh2d(8);
        let scheme = build_scheme(SchemeSpec::Ddpm, &topo).unwrap();
        let adv = AdversaryModel::new(
            &scheme,
            SchemeSpec::Ddpm,
            &topo,
            spec(AdversaryBehavior::Frame, Some(63)),
            None,
        )
        .unwrap();
        let delivered = run_through_evil(&adv, &topo);
        assert!(!delivered.is_empty());
        let mut coll = adv.collector(&topo, NodeId(32));
        for d in &delivered {
            coll.observe_packet(&d.packet);
        }
        let att = coll.attribute();
        assert!(
            att.convicts(NodeId(63)),
            "plain DDPM convicts the framed innocent: {att:?}"
        );
    }

    #[test]
    fn collude_is_one_consistent_story() {
        let topo = Topology::mesh2d(8);
        let scheme = build_scheme(SchemeSpec::Ddpm, &topo).unwrap();
        // Two colluders on the same XY path: (1,0) and (2,0).
        let spec = AdversarySpec::new(
            vec![NodeId(8), NodeId(16)],
            AdversaryBehavior::Collude,
            Some(NodeId(63)),
            0xBAD5EED,
        );
        let adv = AdversaryModel::new(&scheme, SchemeSpec::Ddpm, &topo, spec, None).unwrap();
        let delivered = run_through_evil(&adv, &topo);
        let mut coll = adv.collector(&topo, NodeId(32));
        for d in &delivered {
            coll.observe_packet(&d.packet);
        }
        assert!(coll.attribute().convicts(NodeId(63)));
        let st = adv.state();
        assert!(st.tampered.iter().all(|&t| t > 0), "both colluders acted");
    }

    #[test]
    fn auth_contains_every_behavior() {
        let topo = Topology::mesh2d(8);
        let auth = Authenticated::new(
            DdpmScheme::new(&topo).unwrap(),
            "auth-ddpm",
            DEFAULT_AUTH_KEY,
            8,
        )
        .unwrap();
        for behavior in AdversaryBehavior::ALL {
            let framed = behavior.needs_framed().then_some(63);
            let adv = AdversaryModel::new(
                &auth,
                SchemeSpec::AuthDdpm,
                &topo,
                spec(behavior, framed),
                None,
            )
            .unwrap();
            // Two flows through the evil switch: replay then corrupts
            // across flows (a same-flow replay is bit-identical and
            // legitimately invisible).
            let delivered = run_flows(&adv, &topo, &[NodeId(0), NodeId(8)]);
            assert!(!delivered.is_empty());
            assert!(adv.total_tampered() > 0, "{behavior:?} never fired");
            let mut coll = adv.collector(&topo, NodeId(32));
            for d in &delivered {
                coll.observe_packet(&d.packet);
            }
            assert!(coll.rejected() > 0, "{behavior:?}: tampering invisible");
            let att = coll.attribute();
            assert!(
                !att.convicts(NodeId(63)),
                "{behavior:?}: framed innocent convicted at \
                 confidence >= {CONVICTION_CONFIDENCE}: {att:?}"
            );
        }
    }

    #[test]
    fn state_round_trips_for_resume() {
        let topo = Topology::mesh2d(8);
        let scheme = build_scheme(SchemeSpec::Ddpm, &topo).unwrap();
        let adv = AdversaryModel::new(
            &scheme,
            SchemeSpec::Ddpm,
            &topo,
            spec(AdversaryBehavior::Replay, None),
            None,
        )
        .unwrap();
        let _ = run_through_evil(&adv, &topo);
        let st = adv.state();
        assert!(st.total_tampered() > 0);
        assert!(st.last_seen[0].is_some(), "replay recorded a field");
        let fresh = AdversaryModel::new(
            &scheme,
            SchemeSpec::Ddpm,
            &topo,
            spec(AdversaryBehavior::Replay, None),
            None,
        )
        .unwrap();
        fresh.restore(st.clone()).unwrap();
        assert_eq!(fresh.state(), st);
        assert!(fresh.restore(AdversaryState::default()).is_err());
    }

    #[test]
    fn constructor_rejects_bad_configs() {
        let topo = Topology::mesh2d(4);
        let scheme = build_scheme(SchemeSpec::Ddpm, &topo).unwrap();
        let mk = |spec: AdversarySpec| {
            AdversaryModel::new(&scheme, SchemeSpec::Ddpm, &topo, spec, None)
                .err()
                .unwrap()
        };
        let e = mk(AdversarySpec::new(
            vec![],
            AdversaryBehavior::Skip,
            None,
            0,
        ));
        assert!(e.contains("at least one"), "{e}");
        let e = mk(AdversarySpec::new(
            vec![NodeId(99)],
            AdversaryBehavior::Skip,
            None,
            0,
        ));
        assert!(e.contains("out of range"), "{e}");
        let e = mk(AdversarySpec::new(
            vec![NodeId(5)],
            AdversaryBehavior::Frame,
            None,
            0,
        ));
        assert!(e.contains("needs a framed node"), "{e}");
        let e = mk(AdversarySpec::new(
            vec![NodeId(5)],
            AdversaryBehavior::Frame,
            Some(NodeId(5)),
            0,
        ));
        assert!(e.contains("itself compromised"), "{e}");
    }
}
