//! DDoS detection at the victim.
//!
//! §6.1: "in this paper, we assumed there exists an efficient DDoS
//! detection method in cluster interconnects." We build three concrete
//! ones so the full pipeline (detect → identify → block) is runnable,
//! while noting — as the paper does — that detection quality is not the
//! contribution under test:
//!
//! * [`RateDetector`] — packets-per-window threshold (volumetric
//!   floods);
//! * [`EntropyDetector`] — source-address entropy per window: random
//!   in-cluster spoofing drives entropy far above the benign baseline;
//! * [`SynHalfOpenDetector`] — backlog occupancy threshold (SYN
//!   floods).

use crate::synflood::HalfOpenTable;
use ddpm_net::Packet;
use ddpm_sim::SimTime;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A detector's view after one observation.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum DetectionVerdict {
    /// Nothing anomalous (yet).
    Normal,
    /// Attack detected at the given time.
    Alarm {
        /// When the detector fired.
        at: SimTime,
    },
}

impl DetectionVerdict {
    /// True once an alarm has fired.
    #[must_use]
    pub fn is_alarm(&self) -> bool {
        matches!(self, DetectionVerdict::Alarm { .. })
    }
}

/// Sliding-window packet-rate detector.
#[derive(Clone, Debug)]
pub struct RateDetector {
    window: u64,
    threshold: u64,
    window_start: SimTime,
    count: u64,
    verdict: DetectionVerdict,
}

impl RateDetector {
    /// Alarms when more than `threshold` packets arrive within any
    /// `window`-cycle span.
    #[must_use]
    pub fn new(window: u64, threshold: u64) -> Self {
        Self {
            window,
            threshold,
            window_start: SimTime::ZERO,
            count: 0,
            verdict: DetectionVerdict::Normal,
        }
    }

    /// Observes one delivered packet.
    pub fn observe(&mut self, now: SimTime) -> DetectionVerdict {
        if self.verdict.is_alarm() {
            return self.verdict;
        }
        if now.since(self.window_start) >= self.window {
            self.window_start = now;
            self.count = 0;
        }
        self.count += 1;
        if self.count > self.threshold {
            self.verdict = DetectionVerdict::Alarm { at: now };
        }
        self.verdict
    }

    /// Current verdict.
    #[must_use]
    pub fn verdict(&self) -> DetectionVerdict {
        self.verdict
    }
}

/// Shannon entropy (bits) of a count distribution.
#[must_use]
pub fn shannon_entropy(counts: impl Iterator<Item = u64>) -> f64 {
    let counts: Vec<u64> = counts.filter(|&c| c > 0).collect();
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Source-address entropy detector.
///
/// Random in-cluster spoofing makes every packet claim a fresh address,
/// pushing per-window source entropy toward `log2(window packets)`,
/// far above a benign baseline where a bounded working set of peers
/// talks to the victim.
#[derive(Clone, Debug)]
pub struct EntropyDetector {
    window_packets: usize,
    threshold_bits: f64,
    current: HashMap<Ipv4Addr, u64>,
    seen: usize,
    verdict: DetectionVerdict,
    /// Entropy of each completed window (for experiment plots).
    pub history: Vec<f64>,
}

impl EntropyDetector {
    /// Alarms when a window of `window_packets` has source entropy above
    /// `threshold_bits`.
    #[must_use]
    pub fn new(window_packets: usize, threshold_bits: f64) -> Self {
        assert!(window_packets > 0);
        Self {
            window_packets,
            threshold_bits,
            current: HashMap::new(),
            seen: 0,
            verdict: DetectionVerdict::Normal,
            history: Vec::new(),
        }
    }

    /// Observes one delivered packet.
    pub fn observe(&mut self, pkt: &Packet, now: SimTime) -> DetectionVerdict {
        if self.verdict.is_alarm() {
            return self.verdict;
        }
        *self.current.entry(pkt.header.src).or_insert(0) += 1;
        self.seen += 1;
        if self.seen >= self.window_packets {
            let h = shannon_entropy(self.current.values().copied());
            self.history.push(h);
            self.current.clear();
            self.seen = 0;
            if h > self.threshold_bits {
                self.verdict = DetectionVerdict::Alarm { at: now };
            }
        }
        self.verdict
    }

    /// Current verdict.
    #[must_use]
    pub fn verdict(&self) -> DetectionVerdict {
        self.verdict
    }
}

/// SYN-backlog occupancy detector.
#[derive(Clone, Debug)]
pub struct SynHalfOpenDetector {
    threshold: usize,
    verdict: DetectionVerdict,
}

impl SynHalfOpenDetector {
    /// Alarms when backlog occupancy reaches `threshold`.
    #[must_use]
    pub fn new(threshold: usize) -> Self {
        Self {
            threshold,
            verdict: DetectionVerdict::Normal,
        }
    }

    /// Checks the half-open table after it processed a packet.
    pub fn observe(&mut self, table: &HalfOpenTable, now: SimTime) -> DetectionVerdict {
        if !self.verdict.is_alarm() && table.occupancy() >= self.threshold {
            self.verdict = DetectionVerdict::Alarm { at: now };
        }
        self.verdict
    }

    /// Current verdict.
    #[must_use]
    pub fn verdict(&self) -> DetectionVerdict {
        self.verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PacketFactory;
    use crate::spoof::SpoofStrategy;
    use ddpm_net::{AddrMap, L4};
    use ddpm_topology::{NodeId, Topology};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_detector_fires_on_burst_only() {
        let mut d = RateDetector::new(100, 10);
        // Slow traffic: 5 packets per window.
        for i in 0..50 {
            assert!(!d.observe(SimTime(i * 20)).is_alarm());
        }
        // Burst: 11 packets in one window.
        let mut d = RateDetector::new(100, 10);
        for i in 0..11 {
            d.observe(SimTime(1000 + i));
        }
        assert!(d.verdict().is_alarm());
    }

    #[test]
    fn entropy_math() {
        assert_eq!(shannon_entropy([8u64].into_iter()), 0.0);
        let h = shannon_entropy([1u64, 1, 1, 1].into_iter());
        assert!((h - 2.0).abs() < 1e-9);
        assert_eq!(shannon_entropy(std::iter::empty()), 0.0);
    }

    #[test]
    fn entropy_detector_separates_spoofed_flood_from_benign() {
        let topo = Topology::mesh2d(8);
        let mut f = PacketFactory::new(AddrMap::for_topology(&topo));
        let mut rng = SmallRng::seed_from_u64(4);
        let mut det = EntropyDetector::new(32, 4.0);
        // Benign: three steady peers — entropy ≈ log2(3) < 4.
        for i in 0..96u64 {
            let src = NodeId((i % 3) as u32 + 1);
            let p = f.benign(src, NodeId(0), L4::udp(1, 2), 64);
            assert!(
                !det.observe(&p, SimTime(i)).is_alarm(),
                "benign traffic must not alarm"
            );
        }
        // Spoofed flood: fresh random source per packet.
        for i in 0..64u64 {
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(f.map(), NodeId(5), &mut rng);
            let p = f.attack(NodeId(5), claimed, NodeId(0), L4::udp(1, 2), 512);
            det.observe(&p, SimTime(1000 + i));
        }
        assert!(det.verdict().is_alarm(), "spoofed flood must alarm");
        assert!(!det.history.is_empty());
    }

    #[test]
    fn halfopen_detector() {
        let topo = Topology::mesh2d(4);
        let mut f = PacketFactory::new(AddrMap::for_topology(&topo));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut table = HalfOpenTable::new(64, 1_000_000);
        let mut det = SynHalfOpenDetector::new(8);
        for i in 0..16u16 {
            let claimed = SpoofStrategy::RandomInCluster.claimed_ip(f.map(), NodeId(1), &mut rng);
            let p = f.attack(NodeId(1), claimed, NodeId(0), L4::tcp_syn(i, 80, 0), 40);
            table.on_packet(&p, SimTime(u64::from(i)));
            det.observe(&table, SimTime(u64::from(i)));
        }
        assert!(det.verdict().is_alarm());
        if let DetectionVerdict::Alarm { at } = det.verdict() {
            assert_eq!(at, SimTime(7), "alarm at the 8th SYN");
        }
    }
}
