//! Workload plumbing shared by all generators.

use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_sim::SimTime;
use ddpm_topology::NodeId;
use std::net::Ipv4Addr;

/// A schedule of packet injections.
pub type Workload = Vec<(SimTime, Packet)>;

/// Stamps unique packet ids and fills headers consistently with the
/// cluster address map.
#[derive(Clone, Debug)]
pub struct PacketFactory {
    map: AddrMap,
    next_id: u64,
}

impl PacketFactory {
    /// A factory over `map`, ids starting at 0.
    #[must_use]
    pub fn new(map: AddrMap) -> Self {
        Self { map, next_id: 0 }
    }

    /// The address map in use.
    #[must_use]
    pub fn map(&self) -> &AddrMap {
        &self.map
    }

    /// Ids handed out so far.
    #[must_use]
    pub fn issued(&self) -> u64 {
        self.next_id
    }

    /// An honest packet: header source matches the true source.
    pub fn benign(&mut self, src: NodeId, dst: NodeId, l4: L4, payload: u16) -> Packet {
        self.build(
            src,
            self.map.ip_of(src),
            dst,
            l4,
            payload,
            TrafficClass::Benign,
        )
    }

    /// An attack packet whose header claims `claimed_src_ip`.
    pub fn attack(
        &mut self,
        true_src: NodeId,
        claimed_src_ip: Ipv4Addr,
        dst: NodeId,
        l4: L4,
        payload: u16,
    ) -> Packet {
        self.build(
            true_src,
            claimed_src_ip,
            dst,
            l4,
            payload,
            TrafficClass::Attack,
        )
    }

    fn build(
        &mut self,
        true_src: NodeId,
        src_ip: Ipv4Addr,
        dst: NodeId,
        l4: L4,
        payload: u16,
        class: TrafficClass,
    ) -> Packet {
        let id = PacketId(self.next_id);
        self.next_id += 1;
        let protocol = match l4 {
            L4::Udp { .. } => Protocol::Udp,
            L4::Tcp { .. } => Protocol::Tcp,
            L4::Icmp { .. } => Protocol::Icmp,
        };
        Packet {
            id,
            header: Ipv4Header::new(src_ip, self.map.ip_of(dst), protocol, payload),
            l4,
            true_source: true_src,
            dest_node: dst,
            class,
        }
    }
}

/// Merges workloads into one schedule (the simulator orders by time, so
/// this is a simple concatenation; kept for readability at call sites).
#[must_use]
pub fn merge(workloads: Vec<Workload>) -> Workload {
    let mut out: Workload = workloads.into_iter().flatten().collect();
    out.sort_by_key(|(t, p)| (*t, p.id));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_topology::Topology;

    #[test]
    fn ids_are_unique_and_headers_consistent() {
        let topo = Topology::mesh2d(4);
        let mut f = PacketFactory::new(AddrMap::for_topology(&topo));
        let a = f.benign(NodeId(1), NodeId(2), L4::udp(1, 2), 64);
        let b = f.benign(NodeId(1), NodeId(2), L4::udp(1, 2), 64);
        assert_ne!(a.id, b.id);
        assert_eq!(a.header.src, f.map().ip_of(NodeId(1)));
        assert_eq!(a.header.dst, f.map().ip_of(NodeId(2)));
        assert!(!a.is_spoofed(f.map()));
        assert_eq!(f.issued(), 2);
    }

    #[test]
    fn attack_packets_carry_claimed_source() {
        let topo = Topology::mesh2d(4);
        let mut f = PacketFactory::new(AddrMap::for_topology(&topo));
        let claimed = f.map().ip_of(NodeId(9));
        let p = f.attack(NodeId(3), claimed, NodeId(0), L4::tcp_syn(5, 80, 1), 40);
        assert_eq!(p.header.src, claimed);
        assert_eq!(p.true_source, NodeId(3));
        assert!(p.is_spoofed(f.map()));
        assert_eq!(p.header.protocol, Protocol::Tcp);
    }

    #[test]
    fn merge_orders_by_time() {
        let topo = Topology::mesh2d(4);
        let mut f = PacketFactory::new(AddrMap::for_topology(&topo));
        let w1 = vec![(
            SimTime(10),
            f.benign(NodeId(0), NodeId(1), L4::udp(1, 2), 8),
        )];
        let w2 = vec![(SimTime(5), f.benign(NodeId(2), NodeId(3), L4::udp(1, 2), 8))];
        let merged = merge(vec![w1, w2]);
        assert_eq!(merged[0].0, SimTime(5));
        assert_eq!(merged[1].0, SimTime(10));
    }
}
