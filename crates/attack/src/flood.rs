//! Volumetric multi-zombie floods (TFN / trinoo style).
//!
//! "The first generation DDoS attacks dump huge number of packets to a
//! specific target system by using DDoS attack tools such as Tribe Flood
//! Network (TFN) and trinoo. Aggregated traffic causes system-slowdown
//! or even breakdown because of too large amount of traffic to handle."
//! (§1). A [`FloodAttack`] coordinates a set of compromised nodes
//! (zombies) to inject spoofed UDP or ICMP traffic at a fixed per-zombie
//! rate for a fixed duration.

use crate::scenario::{PacketFactory, Workload};
use crate::spoof::SpoofStrategy;
use ddpm_net::L4;
use ddpm_sim::SimTime;
use ddpm_topology::NodeId;
use rand::Rng;

/// Payload carried by flood packets (bytes).
const FLOOD_PAYLOAD: u16 = 512;

/// A coordinated volumetric flood.
#[derive(Clone, Debug)]
pub struct FloodAttack {
    /// Compromised nodes injecting attack traffic.
    pub zombies: Vec<NodeId>,
    /// The target node.
    pub victim: NodeId,
    /// Cycles between consecutive packets *per zombie*.
    pub interval: u64,
    /// Attack start time.
    pub start: SimTime,
    /// Packets each zombie sends.
    pub packets_per_zombie: u32,
    /// Spoofing strategy.
    pub spoof: SpoofStrategy,
    /// Use ICMP echo instead of UDP.
    pub icmp: bool,
}

impl FloodAttack {
    /// A default-shaped flood: UDP, random in-cluster spoofing.
    #[must_use]
    pub fn new(zombies: Vec<NodeId>, victim: NodeId) -> Self {
        Self {
            zombies,
            victim,
            interval: 8,
            start: SimTime::ZERO,
            packets_per_zombie: 100,
            spoof: SpoofStrategy::RandomInCluster,
            icmp: false,
        }
    }

    /// Total packets the attack will inject.
    #[must_use]
    pub fn total_packets(&self) -> u64 {
        self.zombies.len() as u64 * u64::from(self.packets_per_zombie)
    }

    /// Generates the injection schedule.
    ///
    /// # Panics
    /// Panics if a zombie targets itself.
    pub fn generate<R: Rng + ?Sized>(&self, factory: &mut PacketFactory, rng: &mut R) -> Workload {
        let mut out = Workload::with_capacity(self.total_packets() as usize);
        for (zi, &zombie) in self.zombies.iter().enumerate() {
            assert_ne!(zombie, self.victim, "zombie cannot flood itself");
            // Zombies de-synchronise slightly, like independent agents.
            let phase = (zi as u64 * 3) % self.interval.max(1);
            for k in 0..self.packets_per_zombie {
                let t = self.start + phase + u64::from(k) * self.interval;
                let claimed = self.spoof.claimed_ip(factory.map(), zombie, rng);
                let l4 = if self.icmp {
                    L4::Icmp { kind: 8 }
                } else {
                    L4::udp(rng.gen_range(1024..=u16::MAX), 7) // echo port
                };
                let pkt = factory.attack(zombie, claimed, self.victim, l4, FLOOD_PAYLOAD);
                out.push((t, pkt));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddpm_net::{AddrMap, TrafficClass};
    use ddpm_topology::Topology;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (PacketFactory, SmallRng) {
        let topo = Topology::mesh2d(8);
        (
            PacketFactory::new(AddrMap::for_topology(&topo)),
            SmallRng::seed_from_u64(7),
        )
    }

    #[test]
    fn generates_expected_count_and_class() {
        let (mut f, mut rng) = setup();
        let attack = FloodAttack {
            zombies: vec![NodeId(1), NodeId(2), NodeId(3)],
            victim: NodeId(60),
            packets_per_zombie: 10,
            ..FloodAttack::new(vec![], NodeId(60))
        };
        let w = attack.generate(&mut f, &mut rng);
        assert_eq!(w.len(), 30);
        assert!(w
            .iter()
            .all(|(_, p)| p.class == TrafficClass::Attack && p.dest_node == NodeId(60)));
    }

    #[test]
    fn per_zombie_rate_respected() {
        let (mut f, mut rng) = setup();
        let attack = FloodAttack {
            zombies: vec![NodeId(5)],
            victim: NodeId(0),
            interval: 10,
            packets_per_zombie: 5,
            start: SimTime(100),
            ..FloodAttack::new(vec![], NodeId(0))
        };
        let w = attack.generate(&mut f, &mut rng);
        let times: Vec<u64> = w.iter().map(|(t, _)| t.0).collect();
        assert_eq!(times, vec![100, 110, 120, 130, 140]);
    }

    #[test]
    fn spoofed_sources_hide_zombies() {
        let (mut f, mut rng) = setup();
        let attack = FloodAttack::new(vec![NodeId(9)], NodeId(0));
        let w = attack.generate(&mut f, &mut rng);
        let spoofed = w.iter().filter(|(_, p)| p.is_spoofed(f.map())).count();
        // Random in-cluster spoofing: all but (statistically) ~1/N.
        assert!(spoofed as f64 / w.len() as f64 > 0.9);
        // Ground truth is preserved for evaluation.
        assert!(w.iter().all(|(_, p)| p.true_source == NodeId(9)));
    }

    #[test]
    #[should_panic(expected = "cannot flood itself")]
    fn zombie_equal_victim_rejected() {
        let (mut f, mut rng) = setup();
        let attack = FloodAttack::new(vec![NodeId(0)], NodeId(0));
        let _ = attack.generate(&mut f, &mut rng);
    }

    #[test]
    fn icmp_mode() {
        let (mut f, mut rng) = setup();
        let mut attack = FloodAttack::new(vec![NodeId(1)], NodeId(2));
        attack.icmp = true;
        attack.packets_per_zombie = 3;
        let w = attack.generate(&mut f, &mut rng);
        assert!(w.iter().all(|(_, p)| matches!(p.l4, L4::Icmp { kind: 8 })));
    }
}
