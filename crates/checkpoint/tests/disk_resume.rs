//! End-to-end: a live run checkpointed **through disk** mid-flight,
//! loaded back, restored into a fresh world and continued, reproduces
//! the uninterrupted run bit-for-bit.
//!
//! `ddpm-sim`'s own resume tests pin `snapshot()`/`restore()` in
//! memory; this one additionally crosses the binary codec and the
//! atomic file discipline, so any field the codec drops or distorts
//! shows up as a fingerprint diff here.

use ddpm_net::{AddrMap, Ipv4Header, Packet, PacketId, Protocol, TrafficClass, L4};
use ddpm_routing::{Router, SelectionPolicy};
use ddpm_sim::{
    InvariantConfig, NoMarking, RetryPolicy, SimConfig, SimTime, Simulation, WatchdogConfig,
};
use ddpm_topology::{ChurnConfig, FaultSchedule, FaultSet, NodeId, Topology};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

const NODES: u32 = 36;
const PACKETS: u64 = 220;

fn stress_cfg() -> SimConfig {
    SimConfig::builder()
        .seed(0xC0FFEE)
        .buffer_packets(3)
        .bit_error_rate(0.01)
        .max_hops(48)
        .record_paths(true)
        .fault_tolerance(RetryPolicy::capped(3, 4, 64))
        .watchdog(WatchdogConfig {
            check_period: 64,
            max_age: 512,
            stall_cycles: 4096,
            escape: Some(Router::DimensionOrder),
        })
        .invariants(InvariantConfig::recording())
        .build()
}

fn churn(topo: &Topology) -> FaultSchedule {
    let mut rng = SmallRng::seed_from_u64(7);
    FaultSchedule::churn(
        topo,
        &ChurnConfig {
            horizon: 600,
            period: 100,
            link_rate: 0.02,
            switch_rate: 0.005,
            down_time: 150,
        },
        move || rng.gen::<f64>(),
    )
}

fn build<'a>(topo: &'a Topology, marker: &'a NoMarking) -> Simulation<'a> {
    let map = AddrMap::for_topology(topo);
    let mut sim = Simulation::new(
        topo,
        &FaultSet::none(),
        Router::fully_adaptive_for(topo),
        SelectionPolicy::Random,
        marker,
        stress_cfg(),
    );
    sim.schedule_faults(&churn(topo));
    for k in 0..PACKETS {
        let s = NodeId((k as u32 * 5) % NODES);
        let d = NodeId((k as u32 * 11 + 3) % NODES);
        if s == d {
            continue;
        }
        sim.schedule(
            SimTime(k * 2),
            Packet {
                id: PacketId(k),
                header: Ipv4Header::new(map.ip_of(s), map.ip_of(d), Protocol::Udp, 64),
                l4: L4::udp(1, 7),
                true_source: s,
                dest_node: d,
                class: TrafficClass::Benign,
            },
        );
    }
    sim
}

fn fingerprint_run(sim: &Simulation<'_>) -> String {
    let mut out = String::new();
    for d in sim.delivered() {
        out.push_str(&format!("D {:?}\n", d));
    }
    for (id, r) in sim.drops() {
        out.push_str(&format!("X {:?} {:?}\n", id, r));
    }
    for v in sim.violations() {
        out.push_str(&format!("V {:?}\n", v));
    }
    out.push_str(&format!("S {:?}\n", sim.stats()));
    out
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ddpm-ckpt-e2e-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn resume_through_disk_is_bit_identical() {
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let expected = {
        let mut sim = build(&topo, &marker);
        sim.run();
        fingerprint_run(&sim)
    };

    let dir = tmpdir("resume");
    let fp = ddpm_checkpoint::fingerprint("disk_resume stress scenario");
    for pause in [1, 137, 555] {
        let mut first = build(&topo, &marker);
        let done = first.run_until(pause);
        ddpm_checkpoint::store(&dir, fp, "scenario-json-here", &first.snapshot(), 2)
            .expect("store");
        drop(first);

        let scan = ddpm_checkpoint::latest(&dir, Some(fp)).expect("scan");
        assert!(scan.skipped.is_empty(), "no rejects expected: {:?}", scan.skipped);
        let (_, ckpt) = scan.best.expect("checkpoint present");
        assert_eq!(ckpt.scenario, "scenario-json-here");
        assert_eq!(ckpt.cycle, ckpt.snapshot.now);

        let mut second = Simulation::new(
            &topo,
            &FaultSet::none(),
            Router::fully_adaptive_for(&topo),
            SelectionPolicy::Random,
            &marker,
            stress_cfg(),
        );
        second.restore(ckpt.snapshot);
        if !done {
            second.run();
        }
        assert_eq!(
            fingerprint_run(&second),
            expected,
            "disk resume from pause {pause} diverged"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn encode_of_real_snapshot_is_lossless_and_deterministic() {
    let topo = Topology::torus(&[6, 6]);
    let marker = NoMarking;
    let mut sim = build(&topo, &marker);
    sim.run_until(400);
    let snap = sim.snapshot();
    let bytes = ddpm_checkpoint::encode_snapshot(&snap);
    assert_eq!(
        bytes,
        ddpm_checkpoint::encode_snapshot(&snap),
        "encoding is a pure function"
    );
    let back = ddpm_checkpoint::decode_snapshot(&bytes).expect("decodes");
    assert_eq!(
        format!("{snap:?}"),
        format!("{back:?}"),
        "codec must preserve every field of a live mid-run snapshot"
    );
}
