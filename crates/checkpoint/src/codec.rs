//! Binary codec for [`SimSnapshot`].
//!
//! A deliberately boring little-endian format: fixed-width integers,
//! `u32`-length-prefixed strings and sequences, one tag byte per enum
//! variant. No self-description — the [`crate::FORMAT_VERSION`] in the
//! checkpoint header is the only schema negotiation — but every decode
//! is fully validated: truncation, unknown tags and unknown interned
//! identifiers all surface as a typed [`DecodeError`] rather than a
//! panic or a silently wrong snapshot.
//!
//! The `&'static str` identifiers embedded in violations and telemetry
//! events (invariant names, watchdog actions, drop reasons) are written
//! as plain strings and re-interned on decode against the closed
//! vocabulary in [`intern`]; the vocabulary is append-only, exactly
//! like the NDJSON schema it mirrors.

use ddpm_net::{Ipv4Header, L4, MarkingField, Packet, PacketId, Protocol, TcpFlags, TrafficClass};
use ddpm_routing::RouteState;
use ddpm_sim::event::{Event, EventKind};
use ddpm_sim::network::{Delivered, DropReason};
use ddpm_sim::snapshot::{FlightSnap, SimSnapshot, SlotSnap};
use ddpm_sim::stats::{ClassCounters, FaultStats, SimStats};
use ddpm_sim::watchdog::WatchdogStats;
use ddpm_sim::{AdversaryState, SimTime, Violation};
use ddpm_telemetry::{EventKind as TelKind, LatencyStats, PacketEvent, RetryKind};
use ddpm_topology::{FaultEvent, NodeId};
use std::fmt;
use std::net::Ipv4Addr;

/// Why a byte stream failed to decode.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DecodeError {
    /// The stream ended before the value it promised.
    Truncated,
    /// An enum tag byte outside the known range.
    BadTag {
        /// Which enum was being decoded.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// An embedded string was not valid UTF-8.
    BadUtf8,
    /// An interned identifier outside the closed vocabulary (a newer
    /// writer, or corruption that survived the checksum).
    UnknownIdent(String),
    /// Bytes left over after the root value — length corruption.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "payload truncated"),
            DecodeError::BadTag { what, tag } => write!(f, "bad {what} tag {tag:#04x}"),
            DecodeError::BadUtf8 => write!(f, "embedded string is not UTF-8"),
            DecodeError::UnknownIdent(s) => write!(f, "unknown interned identifier {s:?}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after snapshot"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// The closed vocabulary of `&'static str` identifiers a snapshot can
/// embed. Append-only — removing or renaming an entry orphans every
/// existing checkpoint that uses it.
const IDENTS: &[&str] = &[
    // Invariant identifiers (`Violation::invariant`).
    "conservation",
    "mark_in_transit",
    "path_consistency",
    "fault_coherence",
    "stale_handle",
    "selftest",
    // Watchdog actions (`EventKind::Watchdog`).
    "deadlock_detected",
    "livelock_detected",
    "starvation_detected",
    "escape",
    // Drop reasons (`DropReason::as_str`, embedded in trace events).
    "buffer_overflow",
    "ttl_expired",
    "blocked",
    "hop_limit",
    "filtered",
    "corrupted",
    "switch_down",
    "link_down",
    "reroute_exhausted",
    "source_down",
    "livelock_escaped",
    "deadlock_victim",
    // Marking-scheme names (`Marker::name`, embedded in the
    // Mark/Attribute/AuthReject telemetry events a snapshot buffers).
    "none",
    "ddpm",
    "dpm",
    "ppm-edge",
    "ppm-xor",
    "ppm-bitdiff",
    "ppm-ams",
    "ppm-fms",
    "tracemax",
    "port",
    "auth-ddpm",
    "auth-dpm",
    "auth-ppm-edge",
    "auth-ppm-xor",
    "auth-tracemax",
    // Adversary behaviors (`AdversaryBehavior::as_str`, embedded in
    // MarkTamper telemetry events).
    "skip",
    "frame",
    "randomize",
    "replay",
    "mark-flood",
    "collude",
];

/// Re-interns `s` against the closed vocabulary.
fn intern(s: &str) -> Result<&'static str, DecodeError> {
    IDENTS
        .iter()
        .find(|&&k| k == s)
        .copied()
        .ok_or_else(|| DecodeError::UnknownIdent(s.to_string()))
}

/// Little-endian byte writer.
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    /// The accumulated bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn len(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("sequence longer than u32::MAX"));
    }

    fn str(&mut self, s: &str) {
        self.len(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

impl Default for Writer {
    fn default() -> Self {
        Self::new()
    }
}

/// Validating little-endian byte reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reads from the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, DecodeError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(DecodeError::BadTag { what: "bool", tag }),
        }
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn seq_len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        // A sequence of n elements needs at least n bytes — reject
        // absurd lengths before any attempt to reserve memory for them.
        if n > self.remaining() {
            return Err(DecodeError::Truncated);
        }
        Ok(n)
    }

    fn str(&mut self) -> Result<String, DecodeError> {
        let n = self.seq_len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }

    fn ident(&mut self) -> Result<&'static str, DecodeError> {
        intern(&self.str()?)
    }
}

// --------------------------------------------------------------------
// Leaf types
// --------------------------------------------------------------------

fn put_node(w: &mut Writer, n: NodeId) {
    w.u32(n.0);
}

fn get_node(r: &mut Reader<'_>) -> Result<NodeId, DecodeError> {
    Ok(NodeId(r.u32()?))
}

fn put_header(w: &mut Writer, h: &Ipv4Header) {
    w.u8(h.tos);
    w.u16(h.total_length);
    w.u16(h.identification.raw());
    w.u16(h.flags_fragment);
    w.u8(h.ttl);
    w.u8(h.protocol.number());
    w.u32(u32::from(h.src));
    w.u32(u32::from(h.dst));
}

fn get_header(r: &mut Reader<'_>) -> Result<Ipv4Header, DecodeError> {
    Ok(Ipv4Header {
        tos: r.u8()?,
        total_length: r.u16()?,
        identification: MarkingField::new(r.u16()?),
        flags_fragment: r.u16()?,
        ttl: r.u8()?,
        protocol: Protocol::from_number(r.u8()?),
        src: Ipv4Addr::from(r.u32()?),
        dst: Ipv4Addr::from(r.u32()?),
    })
}

fn put_l4(w: &mut Writer, l4: &L4) {
    match *l4 {
        L4::Udp { src_port, dst_port } => {
            w.u8(0);
            w.u16(src_port);
            w.u16(dst_port);
        }
        L4::Tcp {
            src_port,
            dst_port,
            flags,
            seq,
        } => {
            w.u8(1);
            w.u16(src_port);
            w.u16(dst_port);
            w.u8(flags.to_byte());
            w.u32(seq);
        }
        L4::Icmp { kind } => {
            w.u8(2);
            w.u8(kind);
        }
    }
}

fn get_l4(r: &mut Reader<'_>) -> Result<L4, DecodeError> {
    match r.u8()? {
        0 => Ok(L4::Udp {
            src_port: r.u16()?,
            dst_port: r.u16()?,
        }),
        1 => Ok(L4::Tcp {
            src_port: r.u16()?,
            dst_port: r.u16()?,
            flags: TcpFlags::from_byte(r.u8()?),
            seq: r.u32()?,
        }),
        2 => Ok(L4::Icmp { kind: r.u8()? }),
        tag => Err(DecodeError::BadTag { what: "L4", tag }),
    }
}

fn put_packet(w: &mut Writer, p: &Packet) {
    w.u64(p.id.0);
    put_header(w, &p.header);
    put_l4(w, &p.l4);
    put_node(w, p.true_source);
    put_node(w, p.dest_node);
    w.u8(match p.class {
        TrafficClass::Benign => 0,
        TrafficClass::Attack => 1,
    });
}

fn get_packet(r: &mut Reader<'_>) -> Result<Packet, DecodeError> {
    Ok(Packet {
        id: PacketId(r.u64()?),
        header: get_header(r)?,
        l4: get_l4(r)?,
        true_source: get_node(r)?,
        dest_node: get_node(r)?,
        class: match r.u8()? {
            0 => TrafficClass::Benign,
            1 => TrafficClass::Attack,
            tag => return Err(DecodeError::BadTag { what: "TrafficClass", tag }),
        },
    })
}

fn put_route_state(w: &mut Writer, s: &RouteState) {
    w.u32(s.hops);
    w.u32(s.misroutes_used);
    w.u32(s.misroute_budget);
    w.u16(s.moved_plus);
    w.u16(s.moved_minus);
}

fn get_route_state(r: &mut Reader<'_>) -> Result<RouteState, DecodeError> {
    Ok(RouteState {
        hops: r.u32()?,
        misroutes_used: r.u32()?,
        misroute_budget: r.u32()?,
        moved_plus: r.u16()?,
        moved_minus: r.u16()?,
    })
}

fn put_fault_event(w: &mut Writer, e: &FaultEvent) {
    match *e {
        FaultEvent::LinkDown { a, b } => {
            w.u8(0);
            put_node(w, a);
            put_node(w, b);
        }
        FaultEvent::LinkUp { a, b } => {
            w.u8(1);
            put_node(w, a);
            put_node(w, b);
        }
        FaultEvent::SwitchDown { node } => {
            w.u8(2);
            put_node(w, node);
        }
        FaultEvent::SwitchUp { node } => {
            w.u8(3);
            put_node(w, node);
        }
    }
}

fn get_fault_event(r: &mut Reader<'_>) -> Result<FaultEvent, DecodeError> {
    match r.u8()? {
        0 => Ok(FaultEvent::LinkDown {
            a: get_node(r)?,
            b: get_node(r)?,
        }),
        1 => Ok(FaultEvent::LinkUp {
            a: get_node(r)?,
            b: get_node(r)?,
        }),
        2 => Ok(FaultEvent::SwitchDown { node: get_node(r)? }),
        3 => Ok(FaultEvent::SwitchUp { node: get_node(r)? }),
        tag => Err(DecodeError::BadTag { what: "FaultEvent", tag }),
    }
}

fn put_event(w: &mut Writer, e: &Event) {
    w.u64(e.time.0);
    w.u64(e.seq);
    match e.kind {
        EventKind::Inject { pkt } => {
            w.u8(0);
            w.u64(pkt as u64);
        }
        EventKind::Arrive { pkt, node, from } => {
            w.u8(1);
            w.u64(pkt as u64);
            w.u32(node);
            w.u32(from);
        }
        EventKind::Reroute { pkt, node } => {
            w.u8(2);
            w.u64(pkt as u64);
            w.u32(node);
        }
        EventKind::Fault { event } => {
            w.u8(3);
            put_fault_event(w, &event);
        }
        EventKind::Watchdog => w.u8(4),
    }
}

fn get_event(r: &mut Reader<'_>) -> Result<Event, DecodeError> {
    let time = SimTime(r.u64()?);
    let seq = r.u64()?;
    let kind = match r.u8()? {
        0 => EventKind::Inject {
            pkt: r.u64()? as usize,
        },
        1 => EventKind::Arrive {
            pkt: r.u64()? as usize,
            node: r.u32()?,
            from: r.u32()?,
        },
        2 => EventKind::Reroute {
            pkt: r.u64()? as usize,
            node: r.u32()?,
        },
        3 => EventKind::Fault {
            event: get_fault_event(r)?,
        },
        4 => EventKind::Watchdog,
        tag => return Err(DecodeError::BadTag { what: "EventKind", tag }),
    };
    Ok(Event { time, seq, kind })
}

fn put_latency(w: &mut Writer, l: &LatencyStats) {
    w.u64(l.count);
    w.u64(l.sum);
    w.u64(l.min);
    w.u64(l.max);
}

fn get_latency(r: &mut Reader<'_>) -> Result<LatencyStats, DecodeError> {
    Ok(LatencyStats {
        count: r.u64()?,
        sum: r.u64()?,
        min: r.u64()?,
        max: r.u64()?,
    })
}

fn put_class(w: &mut Writer, c: &ClassCounters) {
    w.u64(c.injected);
    w.u64(c.delivered);
    w.u64(c.dropped_buffer);
    w.u64(c.dropped_ttl);
    w.u64(c.dropped_blocked);
    w.u64(c.dropped_hop_limit);
    w.u64(c.dropped_filtered);
    w.u64(c.dropped_corrupt);
    w.u64(c.dropped_switch_down);
    w.u64(c.dropped_link_down);
    w.u64(c.dropped_reroute);
    w.u64(c.dropped_source_down);
    w.u64(c.dropped_livelock);
    w.u64(c.dropped_deadlock);
    put_latency(w, &c.latency);
    w.u64(c.total_hops);
}

fn get_class(r: &mut Reader<'_>) -> Result<ClassCounters, DecodeError> {
    Ok(ClassCounters {
        injected: r.u64()?,
        delivered: r.u64()?,
        dropped_buffer: r.u64()?,
        dropped_ttl: r.u64()?,
        dropped_blocked: r.u64()?,
        dropped_hop_limit: r.u64()?,
        dropped_filtered: r.u64()?,
        dropped_corrupt: r.u64()?,
        dropped_switch_down: r.u64()?,
        dropped_link_down: r.u64()?,
        dropped_reroute: r.u64()?,
        dropped_source_down: r.u64()?,
        dropped_livelock: r.u64()?,
        dropped_deadlock: r.u64()?,
        latency: get_latency(r)?,
        total_hops: r.u64()?,
    })
}

fn put_stats(w: &mut Writer, s: &SimStats) {
    put_class(w, &s.benign);
    put_class(w, &s.attack);
    w.u64(s.faults.events_applied);
    w.u64(s.faults.window_injected);
    w.u64(s.faults.window_delivered);
    w.u64(s.faults.degraded_cycles);
    put_latency(w, &s.faults.recovery);
    w.u64(s.watchdog.checks);
    w.u64(s.watchdog.livelocks);
    w.u64(s.watchdog.starvations);
    w.u64(s.watchdog.deadlocks);
    w.u64(s.watchdog.escapes);
    w.u64(s.watchdog.max_age_seen);
    w.u64(s.end_time);
    w.bool(s.telemetry_degraded);
    w.u64(s.peak_arena_bytes);
    w.u64(s.port_bytes);
}

fn get_stats(r: &mut Reader<'_>) -> Result<SimStats, DecodeError> {
    Ok(SimStats {
        benign: get_class(r)?,
        attack: get_class(r)?,
        faults: FaultStats {
            events_applied: r.u64()?,
            window_injected: r.u64()?,
            window_delivered: r.u64()?,
            degraded_cycles: r.u64()?,
            recovery: get_latency(r)?,
        },
        watchdog: WatchdogStats {
            checks: r.u64()?,
            livelocks: r.u64()?,
            starvations: r.u64()?,
            deadlocks: r.u64()?,
            escapes: r.u64()?,
            max_age_seen: r.u64()?,
        },
        end_time: r.u64()?,
        telemetry_degraded: r.bool()?,
        peak_arena_bytes: r.u64()?,
        port_bytes: r.u64()?,
    })
}

fn drop_reason_tag(d: DropReason) -> u8 {
    match d {
        DropReason::BufferOverflow => 0,
        DropReason::TtlExpired => 1,
        DropReason::Blocked => 2,
        DropReason::HopLimit => 3,
        DropReason::Filtered => 4,
        DropReason::Corrupted => 5,
        DropReason::SwitchDown => 6,
        DropReason::LinkDown => 7,
        DropReason::RerouteExhausted => 8,
        DropReason::SourceDown => 9,
        DropReason::LivelockEscaped => 10,
        DropReason::DeadlockVictim => 11,
    }
}

fn drop_reason_from_tag(tag: u8) -> Result<DropReason, DecodeError> {
    Ok(match tag {
        0 => DropReason::BufferOverflow,
        1 => DropReason::TtlExpired,
        2 => DropReason::Blocked,
        3 => DropReason::HopLimit,
        4 => DropReason::Filtered,
        5 => DropReason::Corrupted,
        6 => DropReason::SwitchDown,
        7 => DropReason::LinkDown,
        8 => DropReason::RerouteExhausted,
        9 => DropReason::SourceDown,
        10 => DropReason::LivelockEscaped,
        11 => DropReason::DeadlockVictim,
        tag => return Err(DecodeError::BadTag { what: "DropReason", tag }),
    })
}

fn put_delivered(w: &mut Writer, d: &Delivered) {
    put_packet(w, &d.packet);
    w.u64(d.injected_at.0);
    w.u64(d.delivered_at.0);
    w.u32(d.hops);
    match &d.path {
        None => w.u8(0),
        Some(path) => {
            w.u8(1);
            w.len(path.len());
            for &n in path {
                put_node(w, n);
            }
        }
    }
}

fn get_delivered(r: &mut Reader<'_>) -> Result<Delivered, DecodeError> {
    Ok(Delivered {
        packet: get_packet(r)?,
        injected_at: SimTime(r.u64()?),
        delivered_at: SimTime(r.u64()?),
        hops: r.u32()?,
        path: match r.u8()? {
            0 => None,
            1 => {
                let n = r.seq_len()?;
                let mut path = Vec::with_capacity(n);
                for _ in 0..n {
                    path.push(get_node(r)?);
                }
                Some(path)
            }
            tag => return Err(DecodeError::BadTag { what: "Option<path>", tag }),
        },
    })
}

fn put_violation(w: &mut Writer, v: &Violation) {
    w.u64(v.cycle);
    w.u64(v.pkt);
    w.u32(v.node);
    w.str(v.invariant);
    w.str(&v.detail);
}

fn get_violation(r: &mut Reader<'_>) -> Result<Violation, DecodeError> {
    Ok(Violation {
        cycle: r.u64()?,
        pkt: r.u64()?,
        node: r.u32()?,
        invariant: r.ident()?,
        detail: r.str()?,
    })
}

fn put_tel_event(w: &mut Writer, e: &PacketEvent) {
    w.u64(e.cycle);
    w.u64(e.pkt);
    w.u32(e.node);
    match e.kind {
        TelKind::Inject => w.u8(0),
        TelKind::Forward { next } => {
            w.u8(1);
            w.u32(next);
        }
        TelKind::Mark { mf, scheme } => {
            w.u8(2);
            w.u16(mf);
            w.str(scheme);
        }
        TelKind::Retry { what, attempt } => {
            w.u8(3);
            w.u8(match what {
                RetryKind::Inject => 0,
                RetryKind::Reroute => 1,
            });
            w.u32(attempt);
        }
        TelKind::Drop { reason } => {
            w.u8(4);
            w.str(reason);
        }
        TelKind::Deliver { mf, latency, hops } => {
            w.u8(5);
            w.u16(mf);
            w.u64(latency);
            w.u32(hops);
        }
        TelKind::Watchdog { action } => {
            w.u8(6);
            w.str(action);
        }
        TelKind::Violation { invariant } => {
            w.u8(7);
            w.str(invariant);
        }
        TelKind::Attribute {
            scheme,
            candidates,
            confidence_pm,
        } => {
            w.u8(8);
            w.str(scheme);
            w.u32(candidates);
            w.u32(confidence_pm);
        }
        TelKind::MarkTamper { mf, behavior } => {
            w.u8(9);
            w.u16(mf);
            w.str(behavior);
        }
        TelKind::AuthReject { scheme } => {
            w.u8(10);
            w.str(scheme);
        }
    }
}

fn get_tel_event(r: &mut Reader<'_>) -> Result<PacketEvent, DecodeError> {
    let cycle = r.u64()?;
    let pkt = r.u64()?;
    let node = r.u32()?;
    let kind = match r.u8()? {
        0 => TelKind::Inject,
        1 => TelKind::Forward { next: r.u32()? },
        2 => TelKind::Mark {
            mf: r.u16()?,
            scheme: r.ident()?,
        },
        3 => TelKind::Retry {
            what: match r.u8()? {
                0 => RetryKind::Inject,
                1 => RetryKind::Reroute,
                tag => return Err(DecodeError::BadTag { what: "RetryKind", tag }),
            },
            attempt: r.u32()?,
        },
        4 => TelKind::Drop { reason: r.ident()? },
        5 => TelKind::Deliver {
            mf: r.u16()?,
            latency: r.u64()?,
            hops: r.u32()?,
        },
        6 => TelKind::Watchdog { action: r.ident()? },
        7 => TelKind::Violation {
            invariant: r.ident()?,
        },
        8 => TelKind::Attribute {
            scheme: r.ident()?,
            candidates: r.u32()?,
            confidence_pm: r.u32()?,
        },
        9 => TelKind::MarkTamper {
            mf: r.u16()?,
            behavior: r.ident()?,
        },
        10 => TelKind::AuthReject { scheme: r.ident()? },
        tag => return Err(DecodeError::BadTag { what: "PacketEvent", tag }),
    };
    Ok(PacketEvent {
        cycle,
        pkt,
        node,
        kind,
    })
}

fn put_flight(w: &mut Writer, f: &FlightSnap) {
    put_packet(w, &f.packet);
    put_route_state(w, &f.state);
    for word in f.rng {
        w.u64(word);
    }
    w.u64(f.injected_at);
    w.len(f.path.len());
    for &n in &f.path {
        put_node(w, n);
    }
    w.u32(f.inject_attempts);
    w.u32(f.reroutes);
    w.bool(f.under_fault);
    w.bool(f.launched);
    w.bool(f.escaped);
    w.u64(f.escaped_at);
    w.u64(f.last_hop_at);
    w.u32(f.last_node);
    w.u16(f.wire_mf);
}

fn get_flight(r: &mut Reader<'_>) -> Result<FlightSnap, DecodeError> {
    let packet = get_packet(r)?;
    let state = get_route_state(r)?;
    let rng = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let injected_at = r.u64()?;
    let n = r.seq_len()?;
    let mut path = Vec::with_capacity(n);
    for _ in 0..n {
        path.push(get_node(r)?);
    }
    Ok(FlightSnap {
        packet,
        state,
        rng,
        injected_at,
        path,
        inject_attempts: r.u32()?,
        reroutes: r.u32()?,
        under_fault: r.bool()?,
        launched: r.bool()?,
        escaped: r.bool()?,
        escaped_at: r.u64()?,
        last_hop_at: r.u64()?,
        last_node: r.u32()?,
        wire_mf: r.u16()?,
    })
}

fn put_adversary(w: &mut Writer, st: &AdversaryState) {
    w.len(st.last_seen.len());
    for &seen in &st.last_seen {
        match seen {
            None => w.u8(0),
            Some(mf) => {
                w.u8(1);
                w.u16(mf);
            }
        }
    }
    w.len(st.tampered.len());
    for &t in &st.tampered {
        w.u64(t);
    }
}

fn get_adversary(r: &mut Reader<'_>) -> Result<AdversaryState, DecodeError> {
    let n = r.seq_len()?;
    let mut last_seen = Vec::with_capacity(n);
    for _ in 0..n {
        last_seen.push(match r.u8()? {
            0 => None,
            1 => Some(r.u16()?),
            tag => return Err(DecodeError::BadTag { what: "Option<u16>", tag }),
        });
    }
    let n = r.seq_len()?;
    let mut tampered = Vec::with_capacity(n);
    for _ in 0..n {
        tampered.push(r.u64()?);
    }
    Ok(AdversaryState { last_seen, tampered })
}

fn put_opt_u64(w: &mut Writer, v: Option<u64>) {
    match v {
        None => w.u8(0),
        Some(x) => {
            w.u8(1);
            w.u64(x);
        }
    }
}

fn get_opt_u64(r: &mut Reader<'_>) -> Result<Option<u64>, DecodeError> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.u64()?)),
        tag => Err(DecodeError::BadTag { what: "Option<u64>", tag }),
    }
}

// --------------------------------------------------------------------
// Root
// --------------------------------------------------------------------

/// Encodes a snapshot into the flat payload format.
#[must_use]
pub fn encode_snapshot(snap: &SimSnapshot) -> Vec<u8> {
    let mut w = Writer::new();
    w.u64(snap.now);
    w.len(snap.events.len());
    for e in &snap.events {
        put_event(&mut w, e);
    }
    w.u64(snap.queue_seq);
    w.len(snap.slots.len());
    for s in &snap.slots {
        w.u32(s.generation);
        match &s.flight {
            None => w.u8(0),
            Some(f) => {
                w.u8(1);
                put_flight(&mut w, f);
            }
        }
    }
    w.len(snap.ports.len());
    for &p in &snap.ports {
        w.u64(p);
    }
    put_stats(&mut w, &snap.stats);
    w.len(snap.delivered.len());
    for d in &snap.delivered {
        put_delivered(&mut w, d);
    }
    w.len(snap.drops.len());
    for &(id, reason) in &snap.drops {
        w.u64(id.0);
        w.u8(drop_reason_tag(reason));
    }
    w.len(snap.failed_links.len());
    for &(a, b) in &snap.failed_links {
        put_node(&mut w, a);
        put_node(&mut w, b);
    }
    w.len(snap.failed_switches.len());
    for &n in &snap.failed_switches {
        put_node(&mut w, n);
    }
    put_opt_u64(&mut w, snap.degraded_since);
    put_opt_u64(&mut w, snap.pending_recovery);
    w.u64(snap.live_count);
    w.u64(snap.injected_total);
    w.u64(snap.delivered_total);
    w.u64(snap.dropped_total);
    w.u64(snap.gone_info.0);
    w.u32(snap.gone_info.1);
    w.u64(snap.last_progress);
    w.bool(snap.watchdog_armed);
    w.len(snap.violations.len());
    for v in &snap.violations {
        put_violation(&mut w, v);
    }
    w.len(snap.trace_tail.len());
    for e in &snap.trace_tail {
        put_tel_event(&mut w, e);
    }
    w.bool(snap.selftest_fired);
    match &snap.adversary {
        None => w.u8(0),
        Some(st) => {
            w.u8(1);
            put_adversary(&mut w, st);
        }
    }
    w.len(snap.pending.len());
    for (t, p) in &snap.pending {
        w.u64(*t);
        put_packet(&mut w, p);
    }
    w.u64(snap.pending_peak);
    w.u64(snap.peak_arena_bytes);
    w.into_bytes()
}

/// Decodes a payload produced by [`encode_snapshot`], validating every
/// byte (the whole buffer must be consumed).
///
/// # Errors
/// A [`DecodeError`] naming the first malformed construct.
pub fn decode_snapshot(bytes: &[u8]) -> Result<SimSnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    let now = r.u64()?;
    let n = r.seq_len()?;
    let mut events = Vec::with_capacity(n);
    for _ in 0..n {
        events.push(get_event(&mut r)?);
    }
    let queue_seq = r.u64()?;
    let n = r.seq_len()?;
    let mut slots = Vec::with_capacity(n);
    for _ in 0..n {
        let generation = r.u32()?;
        let flight = match r.u8()? {
            0 => None,
            1 => Some(get_flight(&mut r)?),
            tag => return Err(DecodeError::BadTag { what: "Option<FlightSnap>", tag }),
        };
        slots.push(SlotSnap { generation, flight });
    }
    let n = r.seq_len()?;
    let mut ports = Vec::with_capacity(n);
    for _ in 0..n {
        ports.push(r.u64()?);
    }
    let stats = get_stats(&mut r)?;
    let n = r.seq_len()?;
    let mut delivered = Vec::with_capacity(n);
    for _ in 0..n {
        delivered.push(get_delivered(&mut r)?);
    }
    let n = r.seq_len()?;
    let mut drops = Vec::with_capacity(n);
    for _ in 0..n {
        let id = PacketId(r.u64()?);
        drops.push((id, drop_reason_from_tag(r.u8()?)?));
    }
    let n = r.seq_len()?;
    let mut failed_links = Vec::with_capacity(n);
    for _ in 0..n {
        failed_links.push((get_node(&mut r)?, get_node(&mut r)?));
    }
    let n = r.seq_len()?;
    let mut failed_switches = Vec::with_capacity(n);
    for _ in 0..n {
        failed_switches.push(get_node(&mut r)?);
    }
    let degraded_since = get_opt_u64(&mut r)?;
    let pending_recovery = get_opt_u64(&mut r)?;
    let live_count = r.u64()?;
    let injected_total = r.u64()?;
    let delivered_total = r.u64()?;
    let dropped_total = r.u64()?;
    let gone_info = (r.u64()?, r.u32()?);
    let last_progress = r.u64()?;
    let watchdog_armed = r.bool()?;
    let n = r.seq_len()?;
    let mut violations = Vec::with_capacity(n);
    for _ in 0..n {
        violations.push(get_violation(&mut r)?);
    }
    let n = r.seq_len()?;
    let mut trace_tail = Vec::with_capacity(n);
    for _ in 0..n {
        trace_tail.push(get_tel_event(&mut r)?);
    }
    let selftest_fired = r.bool()?;
    let adversary = match r.u8()? {
        0 => None,
        1 => Some(get_adversary(&mut r)?),
        tag => return Err(DecodeError::BadTag { what: "Option<AdversaryState>", tag }),
    };
    let n = r.seq_len()?;
    let mut pending = Vec::with_capacity(n);
    for _ in 0..n {
        let t = r.u64()?;
        pending.push((t, get_packet(&mut r)?));
    }
    let pending_peak = r.u64()?;
    let peak_arena_bytes = r.u64()?;
    if r.remaining() != 0 {
        return Err(DecodeError::TrailingBytes(r.remaining()));
    }
    Ok(SimSnapshot {
        now,
        events,
        queue_seq,
        slots,
        ports,
        stats,
        delivered,
        drops,
        failed_links,
        failed_switches,
        degraded_since,
        pending_recovery,
        live_count,
        injected_total,
        delivered_total,
        dropped_total,
        gone_info,
        last_progress,
        watchdog_armed,
        violations,
        trace_tail,
        selftest_fired,
        adversary,
        pending,
        pending_peak,
        peak_arena_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_flight(seed: u64) -> FlightSnap {
        FlightSnap {
            packet: Packet {
                id: PacketId(seed),
                header: Ipv4Header::new(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 1, 7),
                    Protocol::Tcp,
                    64,
                ),
                l4: L4::tcp_syn(1000, 80, 42),
                true_source: NodeId(3),
                dest_node: NodeId(9),
                class: TrafficClass::Attack,
            },
            state: RouteState {
                hops: 4,
                misroutes_used: 1,
                misroute_budget: 2,
                moved_plus: 0b01,
                moved_minus: 0b10,
            },
            rng: [seed, seed ^ 1, seed ^ 2, seed ^ 3],
            injected_at: 17,
            path: vec![NodeId(3), NodeId(4), NodeId(5)],
            inject_attempts: 2,
            reroutes: 1,
            under_fault: true,
            launched: true,
            escaped: false,
            escaped_at: 0,
            last_hop_at: 29,
            last_node: 5,
            wire_mf: 0xBEEF,
        }
    }

    fn sample_snapshot() -> SimSnapshot {
        let mut stats = SimStats::default();
        stats.benign.injected = 7;
        stats.benign.latency.record(12);
        stats.attack.dropped_livelock = 1;
        stats.faults.events_applied = 3;
        stats.faults.recovery.record(5);
        stats.watchdog.checks = 2;
        stats.end_time = 0;
        stats.telemetry_degraded = true;
        SimSnapshot {
            now: 400,
            events: vec![
                Event {
                    time: SimTime(401),
                    seq: 9,
                    kind: EventKind::Arrive {
                        pkt: 1,
                        node: 4,
                        from: 3,
                    },
                },
                Event {
                    time: SimTime(450),
                    seq: 2,
                    kind: EventKind::Fault {
                        event: FaultEvent::LinkUp {
                            a: NodeId(1),
                            b: NodeId(2),
                        },
                    },
                },
                Event {
                    time: SimTime(464),
                    seq: 3,
                    kind: EventKind::Watchdog,
                },
                Event {
                    time: SimTime(470),
                    seq: 5,
                    kind: EventKind::Reroute { pkt: 2, node: 8 },
                },
                Event {
                    time: SimTime(480),
                    seq: 6,
                    kind: EventKind::Inject { pkt: 3 },
                },
            ],
            queue_seq: 11,
            slots: vec![
                SlotSnap {
                    generation: 0,
                    flight: Some(sample_flight(1)),
                },
                SlotSnap {
                    generation: u32::MAX,
                    flight: None,
                },
            ],
            ports: vec![0, 17, 404, u64::MAX],
            stats,
            delivered: vec![Delivered {
                packet: sample_flight(4).packet,
                injected_at: SimTime(10),
                delivered_at: SimTime(60),
                hops: 6,
                path: Some(vec![NodeId(0), NodeId(1)]),
            }],
            drops: vec![
                (PacketId(5), DropReason::BufferOverflow),
                (PacketId(6), DropReason::DeadlockVictim),
            ],
            failed_links: vec![(NodeId(1), NodeId(2))],
            failed_switches: vec![NodeId(30)],
            degraded_since: Some(390),
            pending_recovery: None,
            live_count: 1,
            injected_total: 7,
            delivered_total: 1,
            dropped_total: 2,
            gone_info: (399, 12),
            last_progress: 398,
            watchdog_armed: true,
            violations: vec![Violation {
                cycle: 100,
                pkt: 3,
                node: u32::MAX,
                invariant: "stale_handle",
                detail: "handle 3 gen 7 != slot gen 8".to_string(),
            }],
            trace_tail: vec![
                PacketEvent {
                    cycle: 1,
                    pkt: 2,
                    node: 3,
                    kind: TelKind::Drop {
                        reason: "reroute_exhausted",
                    },
                },
                PacketEvent {
                    cycle: 2,
                    pkt: 2,
                    node: 3,
                    kind: TelKind::Watchdog {
                        action: "livelock_detected",
                    },
                },
                PacketEvent {
                    cycle: 3,
                    pkt: 2,
                    node: 3,
                    kind: TelKind::Retry {
                        what: RetryKind::Reroute,
                        attempt: 1,
                    },
                },
                PacketEvent {
                    cycle: 4,
                    pkt: 2,
                    node: 3,
                    kind: TelKind::MarkTamper {
                        mf: 0x0BAD,
                        behavior: "mark-flood",
                    },
                },
                PacketEvent {
                    cycle: 5,
                    pkt: 2,
                    node: 3,
                    kind: TelKind::AuthReject { scheme: "auth-ddpm" },
                },
            ],
            selftest_fired: true,
            adversary: Some(AdversaryState {
                last_seen: vec![Some(0xBEEF), None],
                tampered: vec![12, 0],
            }),
            pending: vec![(500, sample_flight(8).packet)],
            pending_peak: 3,
            peak_arena_bytes: 4096,
        }
    }

    #[test]
    fn snapshot_roundtrips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).expect("decodes");
        // SimSnapshot has no PartialEq (SimStats doesn't derive it);
        // Debug covers every field, including the conditional
        // telemetry_degraded one, which the sample sets.
        assert_eq!(format!("{snap:?}"), format!("{back:?}"));
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = encode_snapshot(&sample_snapshot());
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut])
                .expect_err("a proper prefix must never decode");
            // Any typed error is acceptable; a panic is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot());
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes).expect_err("over-long payload must be rejected"),
            DecodeError::TrailingBytes(1)
        );
    }

    #[test]
    fn unknown_ident_rejected() {
        let mut snap = sample_snapshot();
        snap.violations[0].detail = String::new();
        let bytes = encode_snapshot(&snap);
        // Corrupt the interned "stale_handle" into an unknown word of
        // the same length so lengths stay consistent.
        let pos = bytes
            .windows(12)
            .position(|w| w == b"stale_handle")
            .expect("ident present");
        let mut bad = bytes.clone();
        bad[pos..pos + 12].copy_from_slice(b"stale_handlf");
        assert_eq!(
            decode_snapshot(&bad).expect_err("unknown ident must be rejected"),
            DecodeError::UnknownIdent("stale_handlf".to_string())
        );
    }

    #[test]
    fn vocabulary_matches_the_simulator() {
        // Every DropReason::as_str value must be internable — a new
        // variant without a vocabulary entry would orphan checkpoints.
        for reason in [
            DropReason::BufferOverflow,
            DropReason::TtlExpired,
            DropReason::Blocked,
            DropReason::HopLimit,
            DropReason::Filtered,
            DropReason::Corrupted,
            DropReason::SwitchDown,
            DropReason::LinkDown,
            DropReason::RerouteExhausted,
            DropReason::SourceDown,
            DropReason::LivelockEscaped,
            DropReason::DeadlockVictim,
        ] {
            assert!(intern(reason.as_str()).is_ok(), "{:?}", reason);
            assert_eq!(
                drop_reason_from_tag(drop_reason_tag(reason)),
                Ok(reason),
                "tag roundtrip"
            );
        }
        // Every Marker::name the workspace ships must be internable —
        // Mark/Attribute events embed it, and a checkpoint taken mid-run
        // buffers those events. (The marker crates sit above this one in
        // the dependency graph, so the list is spelled out literally;
        // `telemetry_trace`-style integration tests exercise the real
        // schemes end to end.)
        for scheme in [
            "none",
            "ddpm",
            "dpm",
            "ppm-edge",
            "ppm-xor",
            "ppm-bitdiff",
            "ppm-ams",
            "ppm-fms",
            "tracemax",
            "port",
            "auth-ddpm",
            "auth-dpm",
            "auth-ppm-edge",
            "auth-ppm-xor",
            "auth-tracemax",
        ] {
            assert!(intern(scheme).is_ok(), "{scheme}");
        }
        // Every adversary behavior name must be internable — MarkTamper
        // events embed it.
        for behavior in ["skip", "frame", "randomize", "replay", "mark-flood", "collude"] {
            assert!(intern(behavior).is_ok(), "{behavior}");
        }
    }
}
