//! Cooperative SIGINT/SIGTERM handling for long runs.
//!
//! Long drivers (`report -- soak`, checkpointed scenario runs) want to
//! *finish the current cell or window*, flush a final checkpoint and a
//! summary, and only then exit — not die mid-write. The handler here
//! does the only async-signal-safe thing possible: it sets a flag. The
//! driver polls [`requested`] at its natural barriers and performs the
//! orderly shutdown itself.
//!
//! Implemented against the raw C `signal(2)` entry point so the crate
//! needs no external dependency; on non-Unix targets the module
//! compiles to a no-op ([`install`] does nothing and [`requested`] is
//! always `false`).

use std::sync::atomic::{AtomicBool, Ordering};

/// SIGINT's portable Unix signal number.
#[cfg(unix)]
const SIGINT: i32 = 2;
/// SIGTERM's portable Unix signal number.
#[cfg(unix)]
const SIGTERM: i32 = 15;

static REQUESTED: AtomicBool = AtomicBool::new(false);
static INSTALLED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // The only thing an async-signal-safe handler may do.
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT/SIGTERM handler (idempotent; later calls are
/// no-ops). After this, the first Ctrl-C no longer kills the process —
/// callers take on the duty of polling [`requested`] and exiting.
pub fn install() {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return;
    }
    #[cfg(unix)]
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// True once a SIGINT or SIGTERM has arrived since the last [`reset`].
#[must_use]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Clears the flag (between independent driver phases, or in tests).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigterm_sets_the_flag_instead_of_killing() {
        install();
        install(); // idempotent
        reset();
        assert!(!requested());
        // With the handler installed, raising SIGTERM at ourselves must
        // set the flag and return — an uninstalled handler would kill
        // the whole test process, so surviving this line is the test.
        let rc = unsafe { raise(SIGTERM) };
        assert_eq!(rc, 0);
        assert!(requested());
        reset();
        assert!(!requested());
    }
}
