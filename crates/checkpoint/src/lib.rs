//! Crash-consistent checkpoint/restore for the DDPM simulator.
//!
//! A checkpoint is one file holding the **complete dynamic state** of a
//! run at an event boundary — [`ddpm_sim::SimSnapshot`] as produced by
//! [`ddpm_sim::Simulation::snapshot`] — plus enough metadata to refuse
//! restoration into the wrong world:
//!
//! ```text
//! offset  size  field
//!      0     8  magic  "DDPMCKPT"
//!      8     4  format version (little-endian u32, currently 1)
//!     12     8  scenario fingerprint (FNV-1a of the static description)
//!     20     8  cycle (snapshot.now)
//!     28   4+n  scenario description (length-prefixed UTF-8, may be "")
//!      …   8+m  snapshot payload (length-prefixed, see codec)
//!    end     8  FNV-1a checksum of every preceding byte
//! ```
//!
//! **Write discipline.** [`store`] writes the whole file to a hidden
//! temporary in the same directory, `fsync`s it, renames it into place
//! (`ckpt-<cycle>.ddpm`) and `fsync`s the directory — so a crash at any
//! instant leaves either the complete new checkpoint or no trace of it,
//! never a half-written file under the real name. A torn write that
//! somehow survives (e.g. the temp file renamed by an interfering
//! process) still fails the trailing checksum and is skipped by
//! [`latest`], which falls back to the newest *valid* checkpoint.
//!
//! **Resume contract.** Restoring the decoded snapshot into a freshly
//! built simulation of the same scenario and continuing is bit-identical
//! to the uninterrupted run — same deliveries, drops, violations,
//! statistics, and therefore the same scenario digest. The fingerprint
//! field is what makes "same scenario" checkable: [`latest`] refuses
//! checkpoints whose fingerprint differs from the caller's.

#![warn(missing_docs)]

pub mod codec;
pub mod interrupt;

pub use codec::{decode_snapshot, encode_snapshot, DecodeError};

use ddpm_sim::SimSnapshot;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// File magic: the first eight bytes of every checkpoint.
pub const MAGIC: &[u8; 8] = b"DDPMCKPT";

/// On-disk format version written by this crate.
///
/// * v1 — initial format.
/// * v2 — appends the optional marking-plane adversary state, adds the
///   MarkTamper/AuthReject telemetry tags and the `auth-*` scheme
///   names to the interned vocabulary.
/// * v3 — appends the staged-injection backlog (`pending`,
///   `pending_peak`) and the arena high-water mark
///   (`peak_arena_bytes`), plus the `SimStats` memory-telemetry
///   fields.
pub const FORMAT_VERSION: u32 = 3;

/// Extension (with the `ckpt-` stem prefix) of finished checkpoints.
pub const EXTENSION: &str = "ddpm";

/// The fixed part of the header: magic + version + fingerprint + cycle
/// + the two length prefixes + trailing checksum.
const MIN_FILE_LEN: usize = 8 + 4 + 8 + 8 + 4 + 8 + 8;

/// 64-bit FNV-1a over `bytes` — the same digest family the conformance
/// corpus uses, good enough to detect torn or bit-rotted files (this is
/// an integrity check, not an authenticity one).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of a scenario's static description (any stable string —
/// the drivers use the scenario's canonical debug form). Restoration is
/// refused when fingerprints differ.
#[must_use]
pub fn fingerprint(description: &str) -> u64 {
    fnv64(description.as_bytes())
}

/// A checkpoint as read back from disk.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Fingerprint of the scenario this snapshot belongs to.
    pub fingerprint: u64,
    /// Simulated cycle of the snapshot (`snapshot.now`).
    pub cycle: u64,
    /// The embedded scenario description (empty if the writer had none).
    pub scenario: String,
    /// The complete dynamic simulator state.
    pub snapshot: SimSnapshot,
}

/// Why a checkpoint file was rejected.
#[derive(Debug)]
pub enum CheckpointError {
    /// The file could not be read at all.
    Io(io::Error),
    /// Too short, bad magic, or the trailing checksum failed — a torn
    /// or corrupted file.
    Corrupt(&'static str),
    /// A format version this build does not understand.
    UnsupportedVersion(u32),
    /// The embedded fingerprint does not match the caller's scenario.
    FingerprintMismatch {
        /// Fingerprint the caller expects.
        expected: u64,
        /// Fingerprint the file carries.
        found: u64,
    },
    /// The checksummed payload failed structural validation (only
    /// possible across format-vocabulary skew, never from bit rot).
    Decode(DecodeError),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io: {e}"),
            CheckpointError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint format version {v}")
            }
            CheckpointError::FingerprintMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different scenario \
                 (fingerprint {found:#018x}, expected {expected:#018x})"
            ),
            CheckpointError::Decode(e) => write!(f, "payload decode: {e}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// Serialises one checkpoint to its complete file image.
#[must_use]
fn file_image(fingerprint: u64, scenario: &str, snap: &SimSnapshot) -> Vec<u8> {
    let payload = encode_snapshot(snap);
    let mut out = Vec::with_capacity(MIN_FILE_LEN + scenario.len() + payload.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.extend_from_slice(&snap.now.to_le_bytes());
    out.extend_from_slice(&u32::try_from(scenario.len()).expect("scenario fits").to_le_bytes());
    out.extend_from_slice(scenario.as_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

/// The canonical file name for a checkpoint at `cycle`.
#[must_use]
pub fn file_name(cycle: u64) -> String {
    format!("ckpt-{cycle}.{EXTENSION}")
}

/// Parses a canonical checkpoint file name back into its cycle.
#[must_use]
pub fn parse_cycle(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("ckpt-")?;
    let digits = rest.strip_suffix(&format!(".{EXTENSION}"))?;
    digits.parse().ok()
}

/// Atomically writes a checkpoint of `snap` into `dir` (created if
/// absent), then prunes all but the `keep` most recent checkpoints.
/// Returns the path of the finished file.
///
/// The atomicity discipline: full image to a dot-hidden temporary in
/// the same directory → `fsync` the file → `rename` into place →
/// `fsync` the directory. A crash at any point leaves the previous
/// checkpoints untouched.
///
/// `keep` is clamped to at least 1 (the file just written survives its
/// own retention pass — and keeping ≥2 is what makes a torn *final*
/// write recoverable, which is why [`ddpm_sim::CheckpointConfig`]
/// defaults to 2).
///
/// # Errors
/// Any I/O failure along the way; the directory is left with, at worst,
/// a stale temporary that the next [`store`] overwrites.
pub fn store(
    dir: &Path,
    fingerprint: u64,
    scenario: &str,
    snap: &SimSnapshot,
    keep: usize,
) -> io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let image = file_image(fingerprint, scenario, snap);
    let tmp = dir.join(format!(".ckpt-{}.tmp", snap.now));
    let final_path = dir.join(file_name(snap.now));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&image)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, &final_path)?;
    // Persist the rename itself: fsync the containing directory.
    File::open(dir)?.sync_all()?;
    prune(dir, keep.max(1))?;
    Ok(final_path)
}

/// Deletes all but the `keep` newest (by cycle) checkpoints in `dir`.
fn prune(dir: &Path, keep: usize) -> io::Result<()> {
    let mut cycles = list(dir)?;
    cycles.sort_unstable_by(|a, b| b.cmp(a));
    for &cycle in cycles.iter().skip(keep) {
        // Best-effort: a vanished file is fine, anything else is not.
        match fs::remove_file(dir.join(file_name(cycle))) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => return Err(e),
        }
    }
    Ok(())
}

/// All checkpoint cycles present in `dir` (unsorted). An absent
/// directory reads as empty.
///
/// # Errors
/// Any directory-reading failure other than the directory not existing.
pub fn list(dir: &Path) -> io::Result<Vec<u64>> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e),
    };
    let mut out = Vec::new();
    for entry in entries {
        let entry = entry?;
        if let Some(cycle) = entry.file_name().to_str().and_then(parse_cycle) {
            out.push(cycle);
        }
    }
    Ok(out)
}

/// Reads and fully validates one checkpoint file.
///
/// # Errors
/// A [`CheckpointError`] naming the first failed validation layer:
/// I/O → magic/length/checksum → version → structural decode.
pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
    let bytes = fs::read(path)?;
    if bytes.len() < MIN_FILE_LEN {
        return Err(CheckpointError::Corrupt("file shorter than the fixed header"));
    }
    if &bytes[..8] != MAGIC {
        return Err(CheckpointError::Corrupt("bad magic"));
    }
    let body = &bytes[..bytes.len() - 8];
    let sum = u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().unwrap());
    if fnv64(body) != sum {
        return Err(CheckpointError::Corrupt("checksum mismatch (torn write?)"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(CheckpointError::UnsupportedVersion(version));
    }
    let fingerprint = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    let cycle = u64::from_le_bytes(bytes[20..28].try_into().unwrap());
    let scen_len = u32::from_le_bytes(bytes[28..32].try_into().unwrap()) as usize;
    let scen_end = 32usize
        .checked_add(scen_len)
        .filter(|&e| e + 8 <= body.len())
        .ok_or(CheckpointError::Corrupt("scenario length out of range"))?;
    let scenario = std::str::from_utf8(&bytes[32..scen_end])
        .map_err(|_| CheckpointError::Corrupt("scenario is not UTF-8"))?
        .to_string();
    let payload_len =
        u64::from_le_bytes(bytes[scen_end..scen_end + 8].try_into().unwrap()) as usize;
    let payload_start = scen_end + 8;
    if body.len() - payload_start != payload_len {
        return Err(CheckpointError::Corrupt("payload length out of range"));
    }
    let snapshot =
        decode_snapshot(&body[payload_start..]).map_err(CheckpointError::Decode)?;
    if snapshot.now != cycle {
        return Err(CheckpointError::Corrupt("header cycle != snapshot.now"));
    }
    Ok(Checkpoint {
        fingerprint,
        cycle,
        scenario,
        snapshot,
    })
}

/// Result of scanning a directory for the newest usable checkpoint.
#[derive(Debug)]
pub struct Scan {
    /// The newest checkpoint that loaded and (if requested) matched the
    /// fingerprint, with its path.
    pub best: Option<(PathBuf, Checkpoint)>,
    /// Files that looked like checkpoints but were rejected, newest
    /// first — torn writes, corruption, foreign scenarios. Present so
    /// drivers can warn that they fell back past them.
    pub skipped: Vec<(PathBuf, CheckpointError)>,
}

/// Finds the newest usable checkpoint in `dir`, skipping (and
/// reporting) torn, corrupt, or fingerprint-mismatched files. Pass
/// `expected_fingerprint = None` to accept any scenario (the `resume`
/// driver does this, then rebuilds the world from the embedded
/// scenario description).
///
/// # Errors
/// Only directory-level I/O failures; per-file problems land in
/// [`Scan::skipped`] instead.
pub fn latest(dir: &Path, expected_fingerprint: Option<u64>) -> io::Result<Scan> {
    let mut cycles = list(dir)?;
    cycles.sort_unstable_by(|a, b| b.cmp(a));
    let mut skipped = Vec::new();
    for cycle in cycles {
        let path = dir.join(file_name(cycle));
        match load(&path) {
            Ok(ckpt) => match expected_fingerprint {
                Some(want) if ckpt.fingerprint != want => skipped.push((
                    path,
                    CheckpointError::FingerprintMismatch {
                        expected: want,
                        found: ckpt.fingerprint,
                    },
                )),
                _ => {
                    return Ok(Scan {
                        best: Some((path, ckpt)),
                        skipped,
                    })
                }
            },
            Err(e) => skipped.push((path, e)),
        }
    }
    Ok(Scan {
        best: None,
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_snapshot(now: u64) -> SimSnapshot {
        SimSnapshot {
            now,
            events: Vec::new(),
            queue_seq: 0,
            slots: Vec::new(),
            ports: vec![0; 8],
            stats: ddpm_sim::SimStats::default(),
            delivered: Vec::new(),
            drops: Vec::new(),
            failed_links: Vec::new(),
            failed_switches: Vec::new(),
            degraded_since: None,
            pending_recovery: None,
            live_count: 0,
            injected_total: 0,
            delivered_total: 0,
            dropped_total: 0,
            gone_info: (0, u32::MAX),
            last_progress: 0,
            watchdog_armed: false,
            violations: Vec::new(),
            trace_tail: Vec::new(),
            selftest_fired: false,
            adversary: None,
            pending: Vec::new(),
            pending_peak: 0,
            peak_arena_bytes: 0,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ddpm-ckpt-test-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_load_roundtrip_with_metadata() {
        let dir = tmpdir("roundtrip");
        let fp = fingerprint("scenario: test");
        let path = store(&dir, fp, "{\"name\":\"t\"}", &empty_snapshot(1234), 2).unwrap();
        assert_eq!(path.file_name().unwrap().to_str(), Some("ckpt-1234.ddpm"));
        let ckpt = load(&path).unwrap();
        assert_eq!(ckpt.fingerprint, fp);
        assert_eq!(ckpt.cycle, 1234);
        assert_eq!(ckpt.scenario, "{\"name\":\"t\"}");
        assert_eq!(ckpt.snapshot.now, 1234);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn retention_keeps_newest_k() {
        let dir = tmpdir("retention");
        let fp = 7;
        for cycle in [100, 200, 300, 400] {
            store(&dir, fp, "", &empty_snapshot(cycle), 2).unwrap();
        }
        let mut cycles = list(&dir).unwrap();
        cycles.sort_unstable();
        assert_eq!(cycles, vec![300, 400], "keep=2 retains the newest two");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_predecessor() {
        let dir = tmpdir("torn");
        let fp = 99;
        store(&dir, fp, "", &empty_snapshot(100), 3).unwrap();
        let newest = store(&dir, fp, "", &empty_snapshot(200), 3).unwrap();
        // Tear the newest file mid-payload, as a crash during a
        // non-atomic writer would.
        let bytes = fs::read(&newest).unwrap();
        fs::write(&newest, &bytes[..bytes.len() / 2]).unwrap();
        let scan = latest(&dir, Some(fp)).unwrap();
        let (path, ckpt) = scan.best.expect("predecessor survives");
        assert_eq!(ckpt.cycle, 100);
        assert_eq!(path, dir.join("ckpt-100.ddpm"));
        assert_eq!(scan.skipped.len(), 1, "the torn file is reported");
        assert!(matches!(scan.skipped[0].1, CheckpointError::Corrupt(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bitflip_anywhere_is_detected() {
        let dir = tmpdir("bitflip");
        let path = store(&dir, 1, "s", &empty_snapshot(50), 1).unwrap();
        let clean = fs::read(&path).unwrap();
        for pos in [0, 9, 15, 25, 33, clean.len() / 2, clean.len() - 1] {
            let mut bad = clean.clone();
            bad[pos] ^= 0x40;
            fs::write(&path, &bad).unwrap();
            assert!(
                load(&path).is_err(),
                "flip at byte {pos} must not load cleanly"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fingerprint_mismatch_is_refused() {
        let dir = tmpdir("fp");
        store(&dir, 0xAAAA, "", &empty_snapshot(10), 1).unwrap();
        let scan = latest(&dir, Some(0xBBBB)).unwrap();
        assert!(scan.best.is_none());
        assert!(matches!(
            scan.skipped[0].1,
            CheckpointError::FingerprintMismatch {
                expected: 0xBBBB,
                found: 0xAAAA
            }
        ));
        // …but an unfingerprinted scan accepts it.
        assert!(latest(&dir, None).unwrap().best.is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsupported_version_is_typed() {
        let dir = tmpdir("version");
        let path = store(&dir, 1, "", &empty_snapshot(10), 1).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let future = FORMAT_VERSION + 1;
        bytes[8..12].copy_from_slice(&future.to_le_bytes());
        // Re-seal so only the version check can fire.
        let sum = fnv64(&bytes[..bytes.len() - 8]);
        let n = bytes.len();
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            load(&path),
            Err(CheckpointError::UnsupportedVersion(v)) if v == future
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(parse_cycle(&file_name(0)), Some(0));
        assert_eq!(parse_cycle(&file_name(u64::MAX)), Some(u64::MAX));
        assert_eq!(parse_cycle("ckpt-12.ddpm"), Some(12));
        assert_eq!(parse_cycle(".ckpt-12.tmp"), None);
        assert_eq!(parse_cycle("ckpt-x.ddpm"), None);
        assert_eq!(parse_cycle("other.ddpm"), None);
    }

    #[test]
    fn missing_directory_reads_as_empty() {
        let dir = tmpdir("missing");
        assert!(list(&dir).unwrap().is_empty());
        assert!(latest(&dir, None).unwrap().best.is_none());
    }
}
